//! The grdManager wire protocol: typed request/response messages that
//! serialize to self-contained byte frames.
//!
//! This is the bottom layer of Guardian's RPC stack. Messages carry only
//! plain data — no closures, no reply channels, no shared handles — so a
//! frame produced by [`Request::encode`] could cross a Unix socket or a
//! shared-memory ring unchanged; the in-process transport in
//! [`crate::transport`] is just the cheapest carrier. One connection
//! corresponds to one tenant, so frames do not repeat the client id: the
//! connection *is* the identity, exactly as a per-process socket would be
//! (§4.1 of the paper: applications reach the GPU only through the IPC
//! boundary to the grdManager).
//!
//! Framing is version-prefixed, little-endian, and length-delimited for
//! all variable-size fields. Decoding is total: malformed input yields a
//! [`ProtoError`], never a panic, because the manager must survive a
//! misbehaving tenant (it is the isolation boundary).

use crate::manager::{InterceptionStats, LaunchStats};
use crate::placement::{Affinity, PlacementHint};
use crate::transport::frame::FrameView;
use bytes::BufMut;
use cuda_rt::{CudaError, DevicePtr};
use gpu_sim::LaunchConfig;
use std::fmt;

/// A byte payload inside a decoded [`Request`].
///
/// Backed by a refcounted [`FrameView`]: [`Request::decode_view`] makes
/// payloads *borrow* the receive buffer (zero-copy — a launch's argument
/// bytes are never duplicated between socket and device queue), while
/// plain [`Request::decode`] and the `From<Vec<u8>>` construction path
/// own their bytes through the same representation. Equality is by byte
/// content, so `Request` round-trips compare naturally in tests.
#[derive(Clone, PartialEq, Eq)]
pub struct Payload(FrameView);

impl Payload {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Recover owned bytes (zero-copy when the payload solely owns its
    /// backing block).
    pub fn into_vec(self) -> Vec<u8> {
        self.0.into_vec()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(FrameView::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload(FrameView::from(v.to_vec()))
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

/// A guaranteed-UTF-8 string field inside a decoded [`Request`] (kernel
/// symbol names). Same zero-copy backing as [`Payload`], so decoding a
/// `Launch` frame allocates no `String`; validation happens once at
/// decode time and `Deref<Target = str>` is free thereafter.
#[derive(Clone, PartialEq, Eq)]
pub struct Symbol(FrameView);

impl Symbol {
    /// The symbol text.
    pub fn as_str(&self) -> &str {
        // UTF-8 was validated when the Symbol was constructed.
        unsafe { std::str::from_utf8_unchecked(&self.0) }
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol(FrameView::from(s.as_bytes().to_vec()))
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(FrameView::from(s.into_bytes()))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Wire-format version this build emits. Version 2 added multi-GPU
/// routing: an optional [`PlacementHint`] on `Connect`, a device index in
/// [`ConnectInfo`], and the `DeviceInfo`/`Migrate` messages. Version 3
/// added the node control plane: lease terms in [`ConnectInfo`] and the
/// admin-plane message family ([`AdminRequest`]/[`AdminResponse`])
/// spoken on `guardiand`'s admin socket. Version 4 added the telemetry
/// plane's flight-recorder dump ([`AdminRequest::Trace`] /
/// [`AdminResponse::Trace`]); every pre-v4 frame shape is unchanged.
/// Version 5 added QoS classes: a requested class on `Connect`, the
/// granted class in [`ConnectInfo`], a qos ceiling on
/// [`AdminRequest::LeaseSet`], and class + inflight columns in
/// [`TenantInfo`]; v4 frames decode with best-effort defaults.
pub const PROTO_VERSION: u8 = 5;

/// Oldest wire-format version this build still **decodes**. This is
/// decode-side compatibility only: a v1 frame (single-GPU era —
/// hintless `Connect`, device-less `Connected`) parses with the v1
/// defaults, so recorded traffic and mixed-build test fixtures stay
/// readable. It does *not* make a live v1 peer a valid tenant — this
/// build always encodes (and therefore replies) at [`PROTO_VERSION`],
/// which a v1 decoder rejects as `BadVersion`.
pub const MIN_PROTO_VERSION: u8 = 1;

/// A client-to-manager message (one per CUDA call crossing the boundary).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a tenancy: reserve a partition of at least `mem_requirement`
    /// bytes (§4.2.1 — applications declare memory up front).
    Connect {
        /// Bytes of device memory the tenant requires.
        mem_requirement: u64,
        /// Multi-GPU placement request (v2). `None` — and every v1
        /// frame — routes by the manager's policy.
        hint: Option<PlacementHint>,
        /// Requested scheduling class (v5), wire-encoded per
        /// [`crate::control::QosClass::to_wire`]: 0 = best-effort (the
        /// default, and what every pre-v5 frame decodes as), 1 =
        /// latency — granted only if the tenant's lease permits it.
        qos: u8,
    },
    /// Close the tenancy, releasing the partition. One-way: the client
    /// does not wait for a reply (it may already be tearing down).
    Disconnect,
    /// Register a fatbin; the manager sandboxes and loads every PTX image
    /// inside it (§4.2.3).
    RegisterFatbin {
        /// Raw fatbin container bytes.
        bytes: Payload,
    },
    /// Register one PTX translation unit (`cuModuleLoadData`).
    RegisterPtx {
        /// Module name (diagnostic only).
        name: String,
        /// PTX source text.
        text: String,
    },
    /// Allocate from the tenant's partition heap.
    Malloc {
        /// Requested size in bytes.
        bytes: u64,
    },
    /// Release a partition-heap allocation.
    Free {
        /// Pointer previously returned by `Malloc`.
        ptr: DevicePtr,
    },
    /// Fill `[dst, dst+len)` with `byte`.
    Memset {
        /// Destination device address.
        dst: DevicePtr,
        /// Fill byte.
        byte: u8,
        /// Length in bytes.
        len: u64,
    },
    /// Host-to-device copy (payload travels in the frame).
    MemcpyH2D {
        /// Destination device address.
        dst: DevicePtr,
        /// Bytes to write.
        data: Payload,
    },
    /// Host-to-device copy, **one-way** (v2): no frame comes back. Used
    /// by deferred-launch clients for small payloads so copies batch
    /// with the launches around them; errors stick to the tenant and
    /// surface at the next `Sync`, like a deferred `Launch`'s.
    MemcpyH2DAsync {
        /// Destination device address.
        dst: DevicePtr,
        /// Bytes to write.
        data: Payload,
    },
    /// Device-to-host copy; the payload travels back in the response.
    MemcpyD2H {
        /// Source device address.
        src: DevicePtr,
        /// Length in bytes.
        len: u64,
    },
    /// Device-to-device copy within the tenant's partition.
    MemcpyD2D {
        /// Destination device address.
        dst: DevicePtr,
        /// Source device address.
        src: DevicePtr,
        /// Length in bytes.
        len: u64,
    },
    /// Launch a kernel on the tenant's stream. The manager swaps in the
    /// sandboxed twin and appends the partition bounds (§4.2.3).
    Launch {
        /// Kernel symbol name.
        kernel: Symbol,
        /// Grid/block geometry.
        cfg: LaunchConfig,
        /// Flat argument buffer in driver layout.
        args: Payload,
        /// `true` for `cuLaunchKernel`, `false` for `cudaLaunchKernel`;
        /// the manager accounts the two interception paths separately
        /// (Table 5).
        driver_level: bool,
    },
    /// Drain the device and surface any pending fault or deferred launch
    /// error (`cudaDeviceSynchronize`).
    Sync,
    /// Create a timing event (`cudaEventCreate`).
    EventCreate,
    /// Record an event on the tenant's stream (`cudaEventRecord`).
    EventRecord {
        /// Event id from `EventCreate`.
        event: u32,
    },
    /// Elapsed milliseconds between two recorded events.
    EventElapsed {
        /// Start event id.
        start: u32,
        /// End event id.
        end: u32,
    },
    /// Current device time in cycles (benchmarking; no tenancy needed).
    DeviceNow,
    /// Interception/dispatch statistics (benchmarking; no tenancy needed).
    Stats,
    /// Enumerate the manager's device set: per-GPU pool capacity, load,
    /// and tenant count (v2; no tenancy needed).
    DeviceInfo,
    /// Migrate this tenant's partition to another GPU (v2). The manager
    /// drains the source, copies live allocations offset-stable into a
    /// fresh partition on the destination, rebinds the session, and
    /// replies with a new [`ConnectInfo`] — the tenant translates its
    /// device pointers by `new_base - old_base`.
    Migrate {
        /// Destination device index.
        device: u32,
    },
    /// Re-read this tenant's current binding (v2): device, partition
    /// base/size. A tenant migrated *by the manager* (rebalancing) has a
    /// stale pointer frame until it asks; the reply is the same
    /// [`ConnectInfo`] shape `Connect`/`Migrate` return.
    Binding,
}

/// Connection handshake data returned for [`Request::Connect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectInfo {
    /// The client id the manager assigned to this connection.
    pub client: u32,
    /// Device core clock in GHz (for `cudaGetDeviceProperties`-style use).
    pub clock_ghz: f64,
    /// Absolute base address of the tenant's partition.
    pub partition_base: u64,
    /// Partition size in bytes (power of two).
    pub partition_size: u64,
    /// When `true` the manager runs launches in deferred-ack mode: the
    /// client must not wait for a `Launch` response; launch errors are
    /// sticky and surface at the next `Sync`.
    pub deferred_launch: bool,
    /// Index of the GPU the tenant was placed on (v2; 0 when decoding a
    /// v1 frame — the single-GPU era had exactly one device).
    pub device: u32,
    /// Memory cap of the lease this tenancy was admitted under (v3;
    /// `u64::MAX` — and every pre-v3 frame — means uncapped).
    pub lease_mem: u64,
    /// Wall-clock TTL of the lease in milliseconds (v3; 0 — and every
    /// pre-v3 frame — means the lease never expires).
    pub lease_ttl_ms: u64,
    /// Granted scheduling class (v5), wire-encoded: 0 = best-effort —
    /// and every pre-v5 frame — 1 = latency.
    pub qos: u8,
}

/// One tenant's row in an [`AdminResponse::Tenants`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantInfo {
    /// Client id the manager assigned at connect.
    pub client: u32,
    /// Unix uid of the owning process (`SO_PEERCRED`).
    pub uid: u32,
    /// Device index the tenant is currently bound to.
    pub device: u32,
    /// Partition size in bytes.
    pub partition_size: u64,
    /// Lease memory cap in bytes (`u64::MAX` = uncapped).
    pub lease_mem: u64,
    /// Lease TTL in milliseconds (0 = no expiry).
    pub lease_ttl_ms: u64,
    /// Milliseconds since the lease was granted.
    pub age_ms: u64,
    /// Partition-heap bytes currently held.
    pub bytes_held: u64,
    /// Kernel launches dispatched so far.
    pub launches: u64,
    /// Host/device transfers dispatched so far.
    pub transfers: u64,
    /// Bytes moved by those transfers.
    pub transfer_bytes: u64,
    /// Granted scheduling class (v5), wire-encoded: 0 = best-effort,
    /// 1 = latency.
    pub qos: u8,
    /// Launches admitted but not yet completed (v5) — compared against
    /// the executor's best-effort inflight budget.
    pub inflight: u64,
}

/// One per-uid usage row in an [`AdminResponse::Quota`] answer,
/// aggregated per device and including usage retired by tenants that
/// already disconnected (or were killed).
#[derive(Debug, Clone, PartialEq)]
pub struct UsageInfo {
    /// Unix uid the usage belongs to.
    pub uid: u32,
    /// Device index the usage accrued on.
    pub device: u32,
    /// Tenants of this uid currently live on this device.
    pub live: u32,
    /// Partition-heap bytes currently held by live tenants.
    pub bytes_held: u64,
    /// Kernel launches, live + retired.
    pub launches: u64,
    /// Transfers, live + retired.
    pub transfers: u64,
    /// Transfer bytes, live + retired.
    pub transfer_bytes: u64,
    /// Milliseconds of tenancy occupancy, live + retired.
    pub occupancy_ms: u64,
}

/// One device's row in a [`Response::Devices`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceInfo {
    /// Device index in the manager's set.
    pub index: u32,
    /// GPU model name.
    pub name: String,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Partition-pool capacity on this device, bytes.
    pub pool_bytes: u64,
    /// Pool bytes currently held by partitions.
    pub used_bytes: u64,
    /// Tenants currently bound to this device.
    pub tenants: u32,
}

/// A statistics snapshot returned for [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Per-path launch interception costs (Table 5).
    pub launch: LaunchStats,
    /// High-water mark of data-plane operations executing simultaneously
    /// (1 under serial dispatch; >1 proves cross-tenant overlap).
    pub max_concurrent_data_ops: u32,
}

/// A manager-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with no payload.
    Unit,
    /// Successful `Connect`.
    Connected(ConnectInfo),
    /// A device pointer (`Malloc`).
    Ptr(DevicePtr),
    /// A byte payload (`MemcpyD2H`).
    Data(Vec<u8>),
    /// A new event id (`EventCreate`).
    EventId(u32),
    /// Elapsed milliseconds (`EventElapsed`).
    ElapsedMs(f32),
    /// Device cycles (`DeviceNow`).
    Cycles(u64),
    /// Statistics snapshot (`Stats`).
    Stats(StatsSnapshot),
    /// The manager's device set (`DeviceInfo`, v2).
    Devices(Vec<DeviceInfo>),
    /// The call failed.
    Error(CudaError),
}

/// An operator-to-manager message on the **admin plane** (v3): the
/// separate uds socket `guardiand --admin-socket` binds, spoken by
/// `guardianctl`. Admin frames never travel on tenant connections —
/// the session layer has no decoder for them — so a tenant cannot
/// grant itself a lease.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminRequest {
    /// Enumerate the device set (pool capacity, load, tenant count).
    Devices,
    /// List live tenants with their leases and usage counters.
    Tenants,
    /// Set the lease future connects by `uid` are admitted under.
    LeaseSet {
        /// Unix uid the lease applies to.
        uid: u32,
        /// Memory cap in bytes (`u64::MAX` = uncapped).
        mem_bytes: u64,
        /// Device streams the tenant may hold (0 denies admission).
        streams: u32,
        /// Wall-clock TTL in milliseconds (0 = no expiry).
        ttl_ms: u64,
        /// Highest scheduling class the lease grants (v5), wire-encoded:
        /// 0 = best-effort — and every pre-v5 frame — 1 = latency.
        /// Lowering a live lease to best-effort demotes its tenants in
        /// place.
        qos: u8,
    },
    /// Revoke a live tenancy: drain it, reclaim the partition, and
    /// retire its usage into the uid's quota aggregate.
    LeaseRevoke {
        /// Client id from the tenants table.
        client: u32,
    },
    /// Per-uid usage accounting, aggregated per device; `None` reports
    /// every uid.
    Quota {
        /// Restrict the answer to one uid.
        uid: Option<u32>,
    },
    /// Prometheus-text exposition of every node metric.
    Metrics,
    /// Dump the flight recorders (v4): every live session's ring of
    /// recent trace events; `None` reports every tenant.
    Trace {
        /// Restrict the dump to sessions owned by one uid.
        uid: Option<u32>,
    },
}

/// A manager-to-operator message on the admin plane (v3). Every
/// variant carries the node id so responses stay attributable when a
/// future federation layer fans `guardianctl` out across a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminResponse {
    /// The device set ([`AdminRequest::Devices`]).
    Devices {
        /// Responding node.
        node: String,
        /// One row per GPU.
        devices: Vec<DeviceInfo>,
    },
    /// The live-tenant table ([`AdminRequest::Tenants`]).
    Tenants {
        /// Responding node.
        node: String,
        /// One row per live tenancy.
        tenants: Vec<TenantInfo>,
    },
    /// Success with no payload (lease set / revoke).
    Ok {
        /// Responding node.
        node: String,
    },
    /// Usage accounting ([`AdminRequest::Quota`]).
    Quota {
        /// Responding node.
        node: String,
        /// One row per (uid, device) with any recorded usage.
        entries: Vec<UsageInfo>,
    },
    /// Prometheus-text metrics ([`AdminRequest::Metrics`]).
    Metrics {
        /// Responding node.
        node: String,
        /// The exposition body.
        text: String,
    },
    /// A flight-recorder dump ([`AdminRequest::Trace`], v4).
    Trace {
        /// Responding node.
        node: String,
        /// Trace events across the selected sessions, oldest first.
        events: Vec<crate::telemetry::TraceEvent>,
    },
    /// The admin call failed (unknown client, malformed lease, …).
    Error {
        /// Responding node.
        node: String,
        /// Human-readable failure reason.
        msg: String,
    },
}

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame ended before the message did.
    Truncated,
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown message opcode.
    BadOpcode(u8),
    /// The message decoded but bytes were left over.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => f.write_str("frame truncated"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::BadUtf8 => f.write_str("invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---- request opcodes -------------------------------------------------------

const REQ_CONNECT: u8 = 1;
const REQ_DISCONNECT: u8 = 2;
const REQ_REGISTER_FATBIN: u8 = 3;
const REQ_REGISTER_PTX: u8 = 4;
const REQ_MALLOC: u8 = 5;
const REQ_FREE: u8 = 6;
const REQ_MEMSET: u8 = 7;
const REQ_MEMCPY_H2D: u8 = 8;
const REQ_MEMCPY_D2H: u8 = 9;
const REQ_MEMCPY_D2D: u8 = 10;
const REQ_LAUNCH: u8 = 11;
const REQ_SYNC: u8 = 12;
const REQ_EVENT_CREATE: u8 = 13;
const REQ_EVENT_RECORD: u8 = 14;
const REQ_EVENT_ELAPSED: u8 = 15;
const REQ_DEVICE_NOW: u8 = 16;
const REQ_STATS: u8 = 17;
const REQ_DEVICE_INFO: u8 = 18;
const REQ_MIGRATE: u8 = 19;
const REQ_BINDING: u8 = 20;
const REQ_MEMCPY_H2D_ASYNC: u8 = 21;

// ---- response opcodes ------------------------------------------------------

const RESP_UNIT: u8 = 1;
const RESP_CONNECTED: u8 = 2;
const RESP_PTR: u8 = 3;
const RESP_DATA: u8 = 4;
const RESP_EVENT_ID: u8 = 5;
const RESP_ELAPSED_MS: u8 = 6;
const RESP_CYCLES: u8 = 7;
const RESP_STATS: u8 = 8;
const RESP_ERROR: u8 = 9;
const RESP_DEVICES: u8 = 10;

// ---- admin-plane opcodes (v3; separate message family, own socket) ---------

const ADMIN_REQ_DEVICES: u8 = 1;
const ADMIN_REQ_TENANTS: u8 = 2;
const ADMIN_REQ_LEASE_SET: u8 = 3;
const ADMIN_REQ_LEASE_REVOKE: u8 = 4;
const ADMIN_REQ_QUOTA: u8 = 5;
const ADMIN_REQ_METRICS: u8 = 6;
const ADMIN_REQ_TRACE: u8 = 7;

const ADMIN_RESP_DEVICES: u8 = 1;
const ADMIN_RESP_TENANTS: u8 = 2;
const ADMIN_RESP_OK: u8 = 3;
const ADMIN_RESP_QUOTA: u8 = 4;
const ADMIN_RESP_METRICS: u8 = 5;
const ADMIN_RESP_ERROR: u8 = 6;
const ADMIN_RESP_TRACE: u8 = 7;

// ---- placement-hint affinity codes -----------------------------------------

const AFFINITY_STRICT: u8 = 0;
const AFFINITY_PREFER: u8 = 1;

// ---- error codes -----------------------------------------------------------

const ERR_OOM: u8 = 1;
const ERR_INVALID_VALUE: u8 = 2;
const ERR_INVALID_DEVICE_FUNCTION: u8 = 3;
const ERR_CONTEXT_POISONED: u8 = 4;
const ERR_MODULE_LOAD: u8 = 5;
const ERR_MISSING_EXPORT_TABLE: u8 = 6;
const ERR_REJECTED: u8 = 7;
const ERR_DISCONNECTED: u8 = 8;

// ---- encoding helpers ------------------------------------------------------

fn put_blob(buf: &mut Vec<u8>, data: &[u8]) {
    // 64-bit length prefix: a >= 4 GiB payload (huge H2D copy, fatbin)
    // must not silently truncate the prefix and corrupt the frame.
    buf.put_u64_le(data.len() as u64);
    buf.extend_from_slice(data);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_blob(buf, s.as_bytes());
}

fn put_cfg(buf: &mut Vec<u8>, cfg: &LaunchConfig) {
    for d in [
        cfg.grid.0,
        cfg.grid.1,
        cfg.grid.2,
        cfg.block.0,
        cfg.block.1,
        cfg.block.2,
    ] {
        buf.put_u32_le(d);
    }
}

fn put_istats(buf: &mut Vec<u8>, s: &InterceptionStats) {
    buf.put_u64_le(s.launches);
    buf.put_u64_le(s.lookup_ns);
    buf.put_u64_le(s.augment_ns);
    buf.put_u64_le(s.enqueue_ns);
}

fn put_hint(buf: &mut Vec<u8>, hint: &Option<PlacementHint>) {
    match hint {
        None => buf.put_u8(0),
        Some(h) => {
            buf.put_u8(1);
            match h.device {
                None => buf.put_u8(0),
                Some(d) => {
                    buf.put_u8(1);
                    buf.put_u32_le(d);
                }
            }
            buf.put_u8(match h.affinity {
                Affinity::Strict => AFFINITY_STRICT,
                Affinity::Prefer => AFFINITY_PREFER,
            });
        }
    }
}

fn put_device_info(buf: &mut Vec<u8>, d: &DeviceInfo) {
    buf.put_u32_le(d.index);
    put_str(buf, &d.name);
    buf.put_u64_le(d.clock_ghz.to_bits());
    buf.put_u64_le(d.pool_bytes);
    buf.put_u64_le(d.used_bytes);
    buf.put_u32_le(d.tenants);
}

fn put_tenant_info(buf: &mut Vec<u8>, t: &TenantInfo) {
    buf.put_u32_le(t.client);
    buf.put_u32_le(t.uid);
    buf.put_u32_le(t.device);
    buf.put_u64_le(t.partition_size);
    buf.put_u64_le(t.lease_mem);
    buf.put_u64_le(t.lease_ttl_ms);
    buf.put_u64_le(t.age_ms);
    buf.put_u64_le(t.bytes_held);
    buf.put_u64_le(t.launches);
    buf.put_u64_le(t.transfers);
    buf.put_u64_le(t.transfer_bytes);
    buf.put_u8(t.qos);
    buf.put_u64_le(t.inflight);
}

fn put_usage_info(buf: &mut Vec<u8>, u: &UsageInfo) {
    buf.put_u32_le(u.uid);
    buf.put_u32_le(u.device);
    buf.put_u32_le(u.live);
    buf.put_u64_le(u.bytes_held);
    buf.put_u64_le(u.launches);
    buf.put_u64_le(u.transfers);
    buf.put_u64_le(u.transfer_bytes);
    buf.put_u64_le(u.occupancy_ms);
}

fn put_trace_event(buf: &mut Vec<u8>, e: &crate::telemetry::TraceEvent) {
    buf.put_u64_le(e.seq);
    buf.put_u8(e.op);
    buf.put_u8(e.outcome);
    buf.put_u32_le(e.client);
    buf.put_u32_le(e.uid);
    buf.put_u32_le(e.stream);
    buf.put_u64_le(e.t_decode_ns);
    buf.put_u64_le(e.t_admit_ns);
    buf.put_u64_le(e.t_flush_ns);
    buf.put_u64_le(e.t_enqueue_ns);
    buf.put_u64_le(e.t_complete_ns);
}

fn put_error(buf: &mut Vec<u8>, e: &CudaError) {
    match e {
        CudaError::OutOfMemory => buf.put_u8(ERR_OOM),
        CudaError::InvalidValue => buf.put_u8(ERR_INVALID_VALUE),
        CudaError::InvalidDeviceFunction(s) => {
            buf.put_u8(ERR_INVALID_DEVICE_FUNCTION);
            put_str(buf, s);
        }
        CudaError::ContextPoisoned => buf.put_u8(ERR_CONTEXT_POISONED),
        CudaError::ModuleLoad(s) => {
            buf.put_u8(ERR_MODULE_LOAD);
            put_str(buf, s);
        }
        CudaError::MissingExportTable(id) => {
            buf.put_u8(ERR_MISSING_EXPORT_TABLE);
            buf.put_u32_le(*id);
        }
        CudaError::Rejected(s) => {
            buf.put_u8(ERR_REJECTED);
            put_str(buf, s);
        }
        CudaError::Disconnected => buf.put_u8(ERR_DISCONNECTED),
    }
}

// ---- decoding helpers ------------------------------------------------------

/// Checked little-endian reader over a frame.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn blob(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = usize::try_from(self.u64()?).map_err(|_| ProtoError::Truncated)?;
        Ok(self.take(len)?.to_vec())
    }

    /// The byte span of the next blob within the frame (consuming it).
    fn blob_range(&mut self) -> Result<std::ops::Range<usize>, ProtoError> {
        let len = usize::try_from(self.u64()?).map_err(|_| ProtoError::Truncated)?;
        let start = self.pos;
        self.take(len)?;
        Ok(start..self.pos)
    }

    /// A blob as a [`Payload`]: a zero-copy sub-view when `src` is the
    /// frame's backing view, an owned copy otherwise.
    fn payload(&mut self, src: Option<&FrameView>) -> Result<Payload, ProtoError> {
        let range = self.blob_range()?;
        Ok(Payload(match src {
            Some(view) => view.slice(range),
            None => FrameView::from(self.buf[range].to_vec()),
        }))
    }

    /// A blob as a [`Symbol`]: UTF-8 validated in place, zero-copy when
    /// `src` is the frame's backing view.
    fn symbol(&mut self, src: Option<&FrameView>) -> Result<Symbol, ProtoError> {
        let range = self.blob_range()?;
        std::str::from_utf8(&self.buf[range.clone()]).map_err(|_| ProtoError::BadUtf8)?;
        Ok(Symbol(match src {
            Some(view) => view.slice(range),
            None => FrameView::from(self.buf[range].to_vec()),
        }))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.blob()?).map_err(|_| ProtoError::BadUtf8)
    }

    fn cfg(&mut self) -> Result<LaunchConfig, ProtoError> {
        Ok(LaunchConfig {
            grid: (self.u32()?, self.u32()?, self.u32()?),
            block: (self.u32()?, self.u32()?, self.u32()?),
        })
    }

    fn istats(&mut self) -> Result<InterceptionStats, ProtoError> {
        Ok(InterceptionStats {
            launches: self.u64()?,
            lookup_ns: self.u64()?,
            augment_ns: self.u64()?,
            enqueue_ns: self.u64()?,
        })
    }

    fn hint(&mut self) -> Result<Option<PlacementHint>, ProtoError> {
        if self.u8()? == 0 {
            return Ok(None);
        }
        let device = if self.u8()? == 0 {
            None
        } else {
            Some(self.u32()?)
        };
        let affinity = match self.u8()? {
            AFFINITY_STRICT => Affinity::Strict,
            AFFINITY_PREFER => Affinity::Prefer,
            op => return Err(ProtoError::BadOpcode(op)),
        };
        Ok(Some(PlacementHint { device, affinity }))
    }

    fn device_info(&mut self) -> Result<DeviceInfo, ProtoError> {
        Ok(DeviceInfo {
            index: self.u32()?,
            name: self.string()?,
            clock_ghz: self.f64()?,
            pool_bytes: self.u64()?,
            used_bytes: self.u64()?,
            tenants: self.u32()?,
        })
    }

    fn tenant_info(&mut self, version: u8) -> Result<TenantInfo, ProtoError> {
        Ok(TenantInfo {
            client: self.u32()?,
            uid: self.u32()?,
            device: self.u32()?,
            partition_size: self.u64()?,
            lease_mem: self.u64()?,
            lease_ttl_ms: self.u64()?,
            age_ms: self.u64()?,
            bytes_held: self.u64()?,
            launches: self.u64()?,
            transfers: self.u64()?,
            transfer_bytes: self.u64()?,
            qos: if version >= 5 { self.u8()? } else { 0 },
            inflight: if version >= 5 { self.u64()? } else { 0 },
        })
    }

    fn usage_info(&mut self) -> Result<UsageInfo, ProtoError> {
        Ok(UsageInfo {
            uid: self.u32()?,
            device: self.u32()?,
            live: self.u32()?,
            bytes_held: self.u64()?,
            launches: self.u64()?,
            transfers: self.u64()?,
            transfer_bytes: self.u64()?,
            occupancy_ms: self.u64()?,
        })
    }

    fn trace_event(&mut self) -> Result<crate::telemetry::TraceEvent, ProtoError> {
        Ok(crate::telemetry::TraceEvent {
            seq: self.u64()?,
            op: self.u8()?,
            outcome: self.u8()?,
            client: self.u32()?,
            uid: self.u32()?,
            stream: self.u32()?,
            t_decode_ns: self.u64()?,
            t_admit_ns: self.u64()?,
            t_flush_ns: self.u64()?,
            t_enqueue_ns: self.u64()?,
            t_complete_ns: self.u64()?,
        })
    }

    fn error(&mut self) -> Result<CudaError, ProtoError> {
        Ok(match self.u8()? {
            ERR_OOM => CudaError::OutOfMemory,
            ERR_INVALID_VALUE => CudaError::InvalidValue,
            ERR_INVALID_DEVICE_FUNCTION => CudaError::InvalidDeviceFunction(self.string()?),
            ERR_CONTEXT_POISONED => CudaError::ContextPoisoned,
            ERR_MODULE_LOAD => CudaError::ModuleLoad(self.string()?),
            ERR_MISSING_EXPORT_TABLE => CudaError::MissingExportTable(self.u32()?),
            ERR_REJECTED => CudaError::Rejected(self.string()?),
            ERR_DISCONNECTED => CudaError::Disconnected,
            op => return Err(ProtoError::BadOpcode(op)),
        })
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

fn frame_header(opcode: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    buf.put_u8(PROTO_VERSION);
    buf.put_u8(opcode);
    buf
}

fn open_frame(frame: &[u8]) -> Result<(u8, u8, Reader<'_>), ProtoError> {
    let mut r = Reader::new(frame);
    let version = r.u8()?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let opcode = r.u8()?;
    Ok((version, opcode, r))
}

/// Encode a [`Request::Launch`] frame directly from borrowed fields.
///
/// Hot-path helper for clients: produces exactly the frame
/// `Request::Launch { .. }.encode()` would, without first copying the
/// kernel name and argument buffer into an owned `Request`.
pub fn encode_launch(kernel: &str, cfg: &LaunchConfig, args: &[u8], driver_level: bool) -> Vec<u8> {
    let mut buf = frame_header(REQ_LAUNCH);
    put_str(&mut buf, kernel);
    put_cfg(&mut buf, cfg);
    put_blob(&mut buf, args);
    buf.put_u8(u8::from(driver_level));
    buf
}

/// Encode a [`Request::MemcpyH2D`] frame directly from a borrowed
/// payload (hot-path helper; see [`encode_launch`]).
pub fn encode_memcpy_h2d(dst: DevicePtr, data: &[u8]) -> Vec<u8> {
    let mut buf = frame_header(REQ_MEMCPY_H2D);
    buf.put_u64_le(dst);
    put_blob(&mut buf, data);
    buf
}

/// Encode a [`Request::MemcpyH2DAsync`] frame directly from a borrowed
/// payload (hot-path helper; see [`encode_launch`]).
pub fn encode_memcpy_h2d_async(dst: DevicePtr, data: &[u8]) -> Vec<u8> {
    let mut buf = frame_header(REQ_MEMCPY_H2D_ASYNC);
    buf.put_u64_le(dst);
    put_blob(&mut buf, data);
    buf
}

impl Request {
    /// Serialize to a byte frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Connect {
                mem_requirement,
                hint,
                qos,
            } => {
                let mut buf = frame_header(REQ_CONNECT);
                buf.put_u64_le(*mem_requirement);
                put_hint(&mut buf, hint);
                buf.put_u8(*qos);
                buf
            }
            Request::Disconnect => frame_header(REQ_DISCONNECT),
            Request::RegisterFatbin { bytes } => {
                let mut buf = frame_header(REQ_REGISTER_FATBIN);
                put_blob(&mut buf, bytes);
                buf
            }
            Request::RegisterPtx { name, text } => {
                let mut buf = frame_header(REQ_REGISTER_PTX);
                put_str(&mut buf, name);
                put_str(&mut buf, text);
                buf
            }
            Request::Malloc { bytes } => {
                let mut buf = frame_header(REQ_MALLOC);
                buf.put_u64_le(*bytes);
                buf
            }
            Request::Free { ptr } => {
                let mut buf = frame_header(REQ_FREE);
                buf.put_u64_le(*ptr);
                buf
            }
            Request::Memset { dst, byte, len } => {
                let mut buf = frame_header(REQ_MEMSET);
                buf.put_u64_le(*dst);
                buf.put_u8(*byte);
                buf.put_u64_le(*len);
                buf
            }
            Request::MemcpyH2D { dst, data } => encode_memcpy_h2d(*dst, data),
            Request::MemcpyH2DAsync { dst, data } => encode_memcpy_h2d_async(*dst, data),
            Request::MemcpyD2H { src, len } => {
                let mut buf = frame_header(REQ_MEMCPY_D2H);
                buf.put_u64_le(*src);
                buf.put_u64_le(*len);
                buf
            }
            Request::MemcpyD2D { dst, src, len } => {
                let mut buf = frame_header(REQ_MEMCPY_D2D);
                buf.put_u64_le(*dst);
                buf.put_u64_le(*src);
                buf.put_u64_le(*len);
                buf
            }
            Request::Launch {
                kernel,
                cfg,
                args,
                driver_level,
            } => encode_launch(kernel, cfg, args, *driver_level),
            Request::Sync => frame_header(REQ_SYNC),
            Request::EventCreate => frame_header(REQ_EVENT_CREATE),
            Request::EventRecord { event } => {
                let mut buf = frame_header(REQ_EVENT_RECORD);
                buf.put_u32_le(*event);
                buf
            }
            Request::EventElapsed { start, end } => {
                let mut buf = frame_header(REQ_EVENT_ELAPSED);
                buf.put_u32_le(*start);
                buf.put_u32_le(*end);
                buf
            }
            Request::DeviceNow => frame_header(REQ_DEVICE_NOW),
            Request::Stats => frame_header(REQ_STATS),
            Request::DeviceInfo => frame_header(REQ_DEVICE_INFO),
            Request::Migrate { device } => {
                let mut buf = frame_header(REQ_MIGRATE);
                buf.put_u32_le(*device);
                buf
            }
            Request::Binding => frame_header(REQ_BINDING),
        }
    }

    /// Decode a byte frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation, version/opcode mismatch, bad UTF-8,
    /// or trailing bytes. Never panics on malformed input.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        Self::decode_with(frame, None)
    }

    /// Decode a received [`FrameView`] **zero-copy**: the `bytes`/`data`/
    /// `args`/`kernel` fields of the decoded request are refcounted
    /// sub-views of `frame` — no payload bytes are duplicated. Produces
    /// exactly the value [`Request::decode`] would for the same bytes.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode_view(frame: &FrameView) -> Result<Self, ProtoError> {
        Self::decode_with(frame, Some(frame))
    }

    fn decode_with(frame: &[u8], src: Option<&FrameView>) -> Result<Self, ProtoError> {
        let (version, opcode, mut r) = open_frame(frame)?;
        let req = match opcode {
            REQ_CONNECT => Request::Connect {
                mem_requirement: r.u64()?,
                // v1 peers predate placement hints.
                hint: if version >= 2 { r.hint()? } else { None },
                // Pre-v5 peers request best-effort.
                qos: if version >= 5 { r.u8()? } else { 0 },
            },
            REQ_DISCONNECT => Request::Disconnect,
            REQ_REGISTER_FATBIN => Request::RegisterFatbin {
                bytes: r.payload(src)?,
            },
            REQ_REGISTER_PTX => Request::RegisterPtx {
                name: r.string()?,
                text: r.string()?,
            },
            REQ_MALLOC => Request::Malloc { bytes: r.u64()? },
            REQ_FREE => Request::Free { ptr: r.u64()? },
            REQ_MEMSET => Request::Memset {
                dst: r.u64()?,
                byte: r.u8()?,
                len: r.u64()?,
            },
            REQ_MEMCPY_H2D => Request::MemcpyH2D {
                dst: r.u64()?,
                data: r.payload(src)?,
            },
            REQ_MEMCPY_H2D_ASYNC => Request::MemcpyH2DAsync {
                dst: r.u64()?,
                data: r.payload(src)?,
            },
            REQ_MEMCPY_D2H => Request::MemcpyD2H {
                src: r.u64()?,
                len: r.u64()?,
            },
            REQ_MEMCPY_D2D => Request::MemcpyD2D {
                dst: r.u64()?,
                src: r.u64()?,
                len: r.u64()?,
            },
            REQ_LAUNCH => Request::Launch {
                kernel: r.symbol(src)?,
                cfg: r.cfg()?,
                args: r.payload(src)?,
                driver_level: r.u8()? != 0,
            },
            REQ_SYNC => Request::Sync,
            REQ_EVENT_CREATE => Request::EventCreate,
            REQ_EVENT_RECORD => Request::EventRecord { event: r.u32()? },
            REQ_EVENT_ELAPSED => Request::EventElapsed {
                start: r.u32()?,
                end: r.u32()?,
            },
            REQ_DEVICE_NOW => Request::DeviceNow,
            REQ_STATS => Request::Stats,
            REQ_DEVICE_INFO => Request::DeviceInfo,
            REQ_MIGRATE => Request::Migrate { device: r.u32()? },
            REQ_BINDING => Request::Binding,
            op => return Err(ProtoError::BadOpcode(op)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a byte frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Unit => frame_header(RESP_UNIT),
            Response::Connected(info) => {
                let mut buf = frame_header(RESP_CONNECTED);
                buf.put_u32_le(info.client);
                buf.put_u64_le(info.clock_ghz.to_bits());
                buf.put_u64_le(info.partition_base);
                buf.put_u64_le(info.partition_size);
                buf.put_u8(u8::from(info.deferred_launch));
                buf.put_u32_le(info.device);
                buf.put_u64_le(info.lease_mem);
                buf.put_u64_le(info.lease_ttl_ms);
                buf.put_u8(info.qos);
                buf
            }
            Response::Ptr(p) => {
                let mut buf = frame_header(RESP_PTR);
                buf.put_u64_le(*p);
                buf
            }
            Response::Data(d) => {
                let mut buf = frame_header(RESP_DATA);
                put_blob(&mut buf, d);
                buf
            }
            Response::EventId(id) => {
                let mut buf = frame_header(RESP_EVENT_ID);
                buf.put_u32_le(*id);
                buf
            }
            Response::ElapsedMs(ms) => {
                let mut buf = frame_header(RESP_ELAPSED_MS);
                buf.put_u32_le(ms.to_bits());
                buf
            }
            Response::Cycles(c) => {
                let mut buf = frame_header(RESP_CYCLES);
                buf.put_u64_le(*c);
                buf
            }
            Response::Stats(s) => {
                let mut buf = frame_header(RESP_STATS);
                put_istats(&mut buf, &s.launch.runtime);
                put_istats(&mut buf, &s.launch.driver);
                buf.put_u32_le(s.max_concurrent_data_ops);
                buf
            }
            Response::Devices(devs) => {
                let mut buf = frame_header(RESP_DEVICES);
                buf.put_u32_le(devs.len() as u32);
                for d in devs {
                    put_device_info(&mut buf, d);
                }
                buf
            }
            Response::Error(e) => {
                let mut buf = frame_header(RESP_ERROR);
                put_error(&mut buf, e);
                buf
            }
        }
    }

    /// Decode a byte frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation, version/opcode mismatch, bad UTF-8,
    /// or trailing bytes. Never panics on malformed input.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        let (version, opcode, mut r) = open_frame(frame)?;
        let resp = match opcode {
            RESP_UNIT => Response::Unit,
            RESP_CONNECTED => Response::Connected(ConnectInfo {
                client: r.u32()?,
                clock_ghz: r.f64()?,
                partition_base: r.u64()?,
                partition_size: r.u64()?,
                deferred_launch: r.u8()? != 0,
                // v1 managers had exactly one device.
                device: if version >= 2 { r.u32()? } else { 0 },
                // Pre-v3 managers had no control plane: tenancies were
                // uncapped and never expired.
                lease_mem: if version >= 3 { r.u64()? } else { u64::MAX },
                lease_ttl_ms: if version >= 3 { r.u64()? } else { 0 },
                // Pre-v5 managers had no scheduling classes.
                qos: if version >= 5 { r.u8()? } else { 0 },
            }),
            RESP_PTR => Response::Ptr(r.u64()?),
            RESP_DATA => Response::Data(r.blob()?),
            RESP_EVENT_ID => Response::EventId(r.u32()?),
            RESP_ELAPSED_MS => Response::ElapsedMs(r.f32()?),
            RESP_CYCLES => Response::Cycles(r.u64()?),
            RESP_STATS => Response::Stats(StatsSnapshot {
                launch: LaunchStats {
                    runtime: r.istats()?,
                    driver: r.istats()?,
                },
                max_concurrent_data_ops: r.u32()?,
            }),
            RESP_DEVICES => {
                let n = r.u32()?;
                // Bound preallocation by the frame itself: a hostile
                // length cannot trigger a giant reserve.
                let mut devs = Vec::with_capacity((n as usize).min(64));
                for _ in 0..n {
                    devs.push(r.device_info()?);
                }
                Response::Devices(devs)
            }
            RESP_ERROR => Response::Error(r.error()?),
            op => return Err(ProtoError::BadOpcode(op)),
        };
        r.finish()?;
        Ok(resp)
    }
}

impl AdminRequest {
    /// Serialize to a byte frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AdminRequest::Devices => frame_header(ADMIN_REQ_DEVICES),
            AdminRequest::Tenants => frame_header(ADMIN_REQ_TENANTS),
            AdminRequest::LeaseSet {
                uid,
                mem_bytes,
                streams,
                ttl_ms,
                qos,
            } => {
                let mut buf = frame_header(ADMIN_REQ_LEASE_SET);
                buf.put_u32_le(*uid);
                buf.put_u64_le(*mem_bytes);
                buf.put_u32_le(*streams);
                buf.put_u64_le(*ttl_ms);
                buf.put_u8(*qos);
                buf
            }
            AdminRequest::LeaseRevoke { client } => {
                let mut buf = frame_header(ADMIN_REQ_LEASE_REVOKE);
                buf.put_u32_le(*client);
                buf
            }
            AdminRequest::Quota { uid } => {
                let mut buf = frame_header(ADMIN_REQ_QUOTA);
                match uid {
                    None => buf.put_u8(0),
                    Some(u) => {
                        buf.put_u8(1);
                        buf.put_u32_le(*u);
                    }
                }
                buf
            }
            AdminRequest::Metrics => frame_header(ADMIN_REQ_METRICS),
            AdminRequest::Trace { uid } => {
                let mut buf = frame_header(ADMIN_REQ_TRACE);
                match uid {
                    None => buf.put_u8(0),
                    Some(u) => {
                        buf.put_u8(1);
                        buf.put_u32_le(*u);
                    }
                }
                buf
            }
        }
    }

    /// Decode a byte frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation, version/opcode mismatch, bad UTF-8,
    /// or trailing bytes. Never panics on malformed input — the admin
    /// socket is same-uid by default, but it still faces raw bytes.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        let (version, opcode, mut r) = open_frame(frame)?;
        let req = match opcode {
            ADMIN_REQ_DEVICES => AdminRequest::Devices,
            ADMIN_REQ_TENANTS => AdminRequest::Tenants,
            ADMIN_REQ_LEASE_SET => AdminRequest::LeaseSet {
                uid: r.u32()?,
                mem_bytes: r.u64()?,
                streams: r.u32()?,
                ttl_ms: r.u64()?,
                // A pre-v5 lease-set grants best-effort only.
                qos: if version >= 5 { r.u8()? } else { 0 },
            },
            ADMIN_REQ_LEASE_REVOKE => AdminRequest::LeaseRevoke { client: r.u32()? },
            ADMIN_REQ_QUOTA => AdminRequest::Quota {
                uid: if r.u8()? == 0 { None } else { Some(r.u32()?) },
            },
            ADMIN_REQ_METRICS => AdminRequest::Metrics,
            ADMIN_REQ_TRACE => AdminRequest::Trace {
                uid: if r.u8()? == 0 { None } else { Some(r.u32()?) },
            },
            op => return Err(ProtoError::BadOpcode(op)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl AdminResponse {
    /// Serialize to a byte frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AdminResponse::Devices { node, devices } => {
                let mut buf = frame_header(ADMIN_RESP_DEVICES);
                put_str(&mut buf, node);
                buf.put_u32_le(devices.len() as u32);
                for d in devices {
                    put_device_info(&mut buf, d);
                }
                buf
            }
            AdminResponse::Tenants { node, tenants } => {
                let mut buf = frame_header(ADMIN_RESP_TENANTS);
                put_str(&mut buf, node);
                buf.put_u32_le(tenants.len() as u32);
                for t in tenants {
                    put_tenant_info(&mut buf, t);
                }
                buf
            }
            AdminResponse::Ok { node } => {
                let mut buf = frame_header(ADMIN_RESP_OK);
                put_str(&mut buf, node);
                buf
            }
            AdminResponse::Quota { node, entries } => {
                let mut buf = frame_header(ADMIN_RESP_QUOTA);
                put_str(&mut buf, node);
                buf.put_u32_le(entries.len() as u32);
                for e in entries {
                    put_usage_info(&mut buf, e);
                }
                buf
            }
            AdminResponse::Metrics { node, text } => {
                let mut buf = frame_header(ADMIN_RESP_METRICS);
                put_str(&mut buf, node);
                put_str(&mut buf, text);
                buf
            }
            AdminResponse::Trace { node, events } => {
                let mut buf = frame_header(ADMIN_RESP_TRACE);
                put_str(&mut buf, node);
                buf.put_u32_le(events.len() as u32);
                for e in events {
                    put_trace_event(&mut buf, e);
                }
                buf
            }
            AdminResponse::Error { node, msg } => {
                let mut buf = frame_header(ADMIN_RESP_ERROR);
                put_str(&mut buf, node);
                put_str(&mut buf, msg);
                buf
            }
        }
    }

    /// Decode a byte frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation, version/opcode mismatch, bad UTF-8,
    /// or trailing bytes. Never panics on malformed input.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        let (version, opcode, mut r) = open_frame(frame)?;
        let resp = match opcode {
            ADMIN_RESP_DEVICES => {
                let node = r.string()?;
                let n = r.u32()?;
                let mut devices = Vec::with_capacity((n as usize).min(64));
                for _ in 0..n {
                    devices.push(r.device_info()?);
                }
                AdminResponse::Devices { node, devices }
            }
            ADMIN_RESP_TENANTS => {
                let node = r.string()?;
                let n = r.u32()?;
                // Bound preallocation by the frame itself, as for
                // RESP_DEVICES: a hostile count must not reserve GiBs.
                let mut tenants = Vec::with_capacity((n as usize).min(64));
                for _ in 0..n {
                    tenants.push(r.tenant_info(version)?);
                }
                AdminResponse::Tenants { node, tenants }
            }
            ADMIN_RESP_OK => AdminResponse::Ok { node: r.string()? },
            ADMIN_RESP_QUOTA => {
                let node = r.string()?;
                let n = r.u32()?;
                let mut entries = Vec::with_capacity((n as usize).min(64));
                for _ in 0..n {
                    entries.push(r.usage_info()?);
                }
                AdminResponse::Quota { node, entries }
            }
            ADMIN_RESP_METRICS => AdminResponse::Metrics {
                node: r.string()?,
                text: r.string()?,
            },
            ADMIN_RESP_ERROR => AdminResponse::Error {
                node: r.string()?,
                msg: r.string()?,
            },
            ADMIN_RESP_TRACE => {
                let node = r.string()?;
                let n = r.u32()?;
                let mut events = Vec::with_capacity((n as usize).min(64));
                for _ in 0..n {
                    events.push(r.trace_event()?);
                }
                AdminResponse::Trace { node, events }
            }
            op => return Err(ProtoError::BadOpcode(op)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_edge_values() {
        let cases = vec![
            Request::Connect {
                mem_requirement: u64::MAX,
                hint: None,
                qos: 0,
            },
            Request::Connect {
                mem_requirement: 1 << 20,
                hint: Some(PlacementHint::pin(3)),
                qos: 1,
            },
            Request::Connect {
                mem_requirement: 1 << 20,
                hint: Some(PlacementHint {
                    device: None,
                    affinity: Affinity::Prefer,
                }),
                qos: 0,
            },
            Request::Disconnect,
            Request::RegisterFatbin {
                bytes: vec![].into(),
            },
            Request::RegisterFatbin {
                bytes: vec![0xFF; 1024].into(),
            },
            Request::RegisterPtx {
                name: String::new(),
                text: ".version 7.7\n".into(),
            },
            Request::Malloc { bytes: 0 },
            Request::Free { ptr: 1 << 40 },
            Request::Memset {
                dst: 0,
                byte: 0xAB,
                len: u64::MAX,
            },
            Request::MemcpyH2D {
                dst: 7,
                data: vec![1, 2, 3].into(),
            },
            Request::MemcpyH2DAsync {
                dst: u64::MAX,
                data: vec![].into(),
            },
            Request::MemcpyD2H { src: 9, len: 4096 },
            Request::MemcpyD2D {
                dst: 1,
                src: 2,
                len: 3,
            },
            Request::Launch {
                kernel: "gemm".into(),
                cfg: LaunchConfig {
                    grid: (1, 2, 3),
                    block: (4, 5, 6),
                },
                args: vec![0u8; 64].into(),
                driver_level: true,
            },
            Request::Sync,
            Request::EventCreate,
            Request::EventRecord { event: u32::MAX },
            Request::EventElapsed { start: 1, end: 2 },
            Request::DeviceNow,
            Request::Stats,
            Request::DeviceInfo,
            Request::Migrate { device: u32::MAX },
            Request::Binding,
        ];
        for req in cases {
            let frame = req.encode();
            assert_eq!(Request::decode(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_round_trip_edge_values() {
        let cases = vec![
            Response::Unit,
            Response::Connected(ConnectInfo {
                client: 3,
                clock_ghz: 1.56,
                partition_base: 1 << 40,
                partition_size: 1 << 26,
                deferred_launch: true,
                device: 2,
                lease_mem: 16 << 20,
                lease_ttl_ms: 30_000,
                qos: 1,
            }),
            Response::Devices(vec![]),
            Response::Devices(vec![
                DeviceInfo {
                    index: 0,
                    name: "Quadro RTX A4000".into(),
                    clock_ghz: 1.56,
                    pool_bytes: 8 << 30,
                    used_bytes: 2 << 30,
                    tenants: 3,
                },
                DeviceInfo {
                    index: 1,
                    name: String::new(),
                    clock_ghz: 0.0,
                    pool_bytes: u64::MAX,
                    used_bytes: 0,
                    tenants: u32::MAX,
                },
            ]),
            Response::Ptr(u64::MAX),
            Response::Data(vec![]),
            Response::Data(vec![9; 100]),
            Response::EventId(0),
            Response::ElapsedMs(3.25),
            Response::Cycles(123_456),
            Response::Stats(StatsSnapshot {
                launch: LaunchStats {
                    runtime: InterceptionStats {
                        launches: 1,
                        lookup_ns: 2,
                        augment_ns: 3,
                        enqueue_ns: 4,
                    },
                    driver: InterceptionStats {
                        launches: 5,
                        lookup_ns: 6,
                        augment_ns: 7,
                        enqueue_ns: 8,
                    },
                },
                max_concurrent_data_ops: 11,
            }),
            Response::Error(CudaError::OutOfMemory),
            Response::Error(CudaError::InvalidDeviceFunction("missing".into())),
            Response::Error(CudaError::MissingExportTable(42)),
            Response::Error(CudaError::Rejected("out of partition".into())),
        ];
        for resp in cases {
            let frame = resp.encode();
            assert_eq!(Response::decode(&frame).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn borrowing_encoders_match_owned_encoding() {
        // The hot-path helpers must stay frame-identical to the owned
        // Request encoding (Request::encode delegates, but lock that in).
        let cfg = LaunchConfig {
            grid: (3, 2, 1),
            block: (32, 1, 1),
        };
        let owned = Request::Launch {
            kernel: "gemm".into(),
            cfg,
            args: vec![7u8; 48].into(),
            driver_level: true,
        };
        assert_eq!(
            owned.encode(),
            encode_launch("gemm", &cfg, &[7u8; 48], true)
        );
        let owned = Request::MemcpyH2D {
            dst: 0xABCD,
            data: vec![1, 2, 3].into(),
        };
        assert_eq!(owned.encode(), encode_memcpy_h2d(0xABCD, &[1, 2, 3]));
        let owned = Request::MemcpyH2DAsync {
            dst: 0xABCD,
            data: vec![1, 2, 3].into(),
        };
        assert_eq!(owned.encode(), encode_memcpy_h2d_async(0xABCD, &[1, 2, 3]));
    }

    #[test]
    fn stats_snapshot_split_survives_round_trip() {
        // The driver/runtime split (Table 5) must not collapse on the
        // wire: each path's counters come back in their own slot.
        let snap = StatsSnapshot {
            launch: LaunchStats {
                runtime: InterceptionStats {
                    launches: 10,
                    lookup_ns: 100,
                    augment_ns: 200,
                    enqueue_ns: 300,
                },
                driver: InterceptionStats {
                    launches: 7,
                    lookup_ns: 70,
                    augment_ns: 140,
                    enqueue_ns: 210,
                },
            },
            max_concurrent_data_ops: 4,
        };
        let frame = Response::Stats(snap).encode();
        match Response::decode(&frame).unwrap() {
            Response::Stats(back) => {
                assert_eq!(back.launch.runtime.launches, 10);
                assert_eq!(back.launch.driver.launches, 7);
                assert_eq!(back.launch.combined().launches, 17);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    /// Version-1 frames — the single-GPU wire format — must keep
    /// decoding: a hintless `Connect` ends after `mem_requirement`, and
    /// a `Connected` without the device field means device 0. (Decode
    /// side only; see [`MIN_PROTO_VERSION`] — replies always carry
    /// [`PROTO_VERSION`].)
    #[test]
    fn v1_frames_still_decode() {
        let mut f = vec![1u8, REQ_CONNECT];
        f.extend_from_slice(&(4u64 << 20).to_le_bytes());
        assert_eq!(
            Request::decode(&f).unwrap(),
            Request::Connect {
                mem_requirement: 4 << 20,
                hint: None,
                qos: 0,
            }
        );
        let mut f = vec![1u8, RESP_CONNECTED];
        f.extend_from_slice(&7u32.to_le_bytes());
        f.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        f.extend_from_slice(&(1u64 << 40).to_le_bytes());
        f.extend_from_slice(&(1u64 << 22).to_le_bytes());
        f.push(1);
        match Response::decode(&f).unwrap() {
            Response::Connected(info) => {
                assert_eq!(info.client, 7);
                assert_eq!(info.device, 0, "v1 means the one-and-only device");
                assert!(info.deferred_launch);
                assert_eq!(info.lease_mem, u64::MAX, "v1 tenancies are uncapped");
                assert_eq!(info.lease_ttl_ms, 0, "v1 tenancies never expire");
            }
            other => panic!("decoded {other:?}"),
        }
        // Plain-bodied messages are bit-identical across versions.
        let mut sync_v1 = Request::Sync.encode();
        sync_v1[0] = 1;
        assert_eq!(Request::decode(&sync_v1).unwrap(), Request::Sync);
        // The v2 additions never existed in v1... but decoding them under
        // a v1 version byte is harmless (opcode-gated, not version-gated);
        // what must fail is a *future* version.
        assert_eq!(
            Request::decode(&[PROTO_VERSION + 1, REQ_SYNC]),
            Err(ProtoError::BadVersion(PROTO_VERSION + 1))
        );
    }

    /// Version-2 frames — the multi-GPU, pre-control-plane wire format —
    /// must keep decoding now that v3 appends lease terms: a v2
    /// `Connect` still carries its placement hint, and a v2 `Connected`
    /// ending at the device field means an uncapped, non-expiring
    /// tenancy.
    #[test]
    fn v2_frames_still_decode() {
        // v2 Connect: mem_requirement + encoded hint, nothing after.
        let mut f = vec![2u8, REQ_CONNECT];
        f.extend_from_slice(&(4u64 << 20).to_le_bytes());
        f.extend_from_slice(&[1, 1]); // has_hint, has_device
        f.extend_from_slice(&3u32.to_le_bytes());
        f.push(AFFINITY_STRICT);
        assert_eq!(
            Request::decode(&f).unwrap(),
            Request::Connect {
                mem_requirement: 4 << 20,
                hint: Some(PlacementHint::pin(3)),
                qos: 0,
            }
        );
        // v2 Connected: ends after the device index — no lease fields.
        let mut f = vec![2u8, RESP_CONNECTED];
        f.extend_from_slice(&7u32.to_le_bytes());
        f.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        f.extend_from_slice(&(1u64 << 40).to_le_bytes());
        f.extend_from_slice(&(1u64 << 22).to_le_bytes());
        f.push(1);
        f.extend_from_slice(&2u32.to_le_bytes());
        match Response::decode(&f).unwrap() {
            Response::Connected(info) => {
                assert_eq!(info.client, 7);
                assert_eq!(info.device, 2);
                assert_eq!(info.lease_mem, u64::MAX, "v2 tenancies are uncapped");
                assert_eq!(info.lease_ttl_ms, 0, "v2 tenancies never expire");
            }
            other => panic!("decoded {other:?}"),
        }
        // Plain-bodied messages are bit-identical across versions.
        let mut sync_v2 = Request::Sync.encode();
        sync_v2[0] = 2;
        assert_eq!(Request::decode(&sync_v2).unwrap(), Request::Sync);
        // A v2 Devices answer (unchanged shape in v3) still decodes.
        let mut devs = Response::Devices(vec![DeviceInfo {
            index: 0,
            name: "A4000".into(),
            clock_ghz: 1.56,
            pool_bytes: 8 << 30,
            used_bytes: 1 << 30,
            tenants: 2,
        }])
        .encode();
        devs[0] = 2;
        assert!(matches!(
            Response::decode(&devs).unwrap(),
            Response::Devices(d) if d.len() == 1
        ));
    }

    /// Version-3 frames — the control-plane wire format, before v4 added
    /// the `Trace` admin family — must keep decoding: every v3 frame
    /// shape is unchanged in v4, only new opcodes were appended.
    #[test]
    fn v3_frames_still_decode() {
        // v3 admin request: Quota with a uid filter, byte-for-byte the
        // shape guardianctl 0.3 would emit.
        let mut f = vec![3u8, ADMIN_REQ_QUOTA, 1];
        f.extend_from_slice(&1000u32.to_le_bytes());
        assert_eq!(
            AdminRequest::decode(&f).unwrap(),
            AdminRequest::Quota { uid: Some(1000) }
        );
        // v3 admin response: an Ok under a v3 version byte.
        let mut ok = AdminResponse::Ok {
            node: "node-a".into(),
        }
        .encode();
        ok[0] = 3;
        assert_eq!(
            AdminResponse::decode(&ok).unwrap(),
            AdminResponse::Ok {
                node: "node-a".into()
            }
        );
        // v3 tenant frames: a lease-era Connected (all eight fields,
        // ending at the lease TTL — no v5 qos byte) still decodes.
        let mut conn = vec![3u8, RESP_CONNECTED];
        conn.extend_from_slice(&7u32.to_le_bytes());
        conn.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        conn.extend_from_slice(&(1u64 << 40).to_le_bytes());
        conn.extend_from_slice(&(1u64 << 22).to_le_bytes());
        conn.push(1);
        conn.extend_from_slice(&2u32.to_le_bytes());
        conn.extend_from_slice(&(1u64 << 30).to_le_bytes());
        conn.extend_from_slice(&60_000u64.to_le_bytes());
        match Response::decode(&conn).unwrap() {
            Response::Connected(info) => {
                assert_eq!(info.lease_mem, 1 << 30);
                assert_eq!(info.lease_ttl_ms, 60_000);
            }
            other => panic!("decoded {other:?}"),
        }
        // The v4 additions did not exist in v3, and a v3 peer would
        // reject them — but *this* build must reject only future
        // versions, not v3.
        let mut sync_v3 = Request::Sync.encode();
        sync_v3[0] = 3;
        assert_eq!(Request::decode(&sync_v3).unwrap(), Request::Sync);
    }

    /// Version-4 frames — the telemetry-era wire format, before v5 added
    /// QoS classes — must keep decoding with best-effort defaults: a v4
    /// `Connect` ends after its hint (no requested class), a v4
    /// `Connected` after the lease TTL, a v4 `LeaseSet` after the TTL,
    /// and a v4 tenants row after the transfer bytes.
    #[test]
    fn v4_frames_still_decode() {
        // v4 Connect: mem_requirement + hint byte, no qos byte.
        let mut f = vec![4u8, REQ_CONNECT];
        f.extend_from_slice(&(4u64 << 20).to_le_bytes());
        f.push(0); // no hint
        assert_eq!(
            Request::decode(&f).unwrap(),
            Request::Connect {
                mem_requirement: 4 << 20,
                hint: None,
                qos: 0,
            }
        );
        // v4 Connected: ends at the lease TTL; decodes as best-effort.
        let mut conn = vec![4u8, RESP_CONNECTED];
        conn.extend_from_slice(&7u32.to_le_bytes());
        conn.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        conn.extend_from_slice(&(1u64 << 40).to_le_bytes());
        conn.extend_from_slice(&(1u64 << 22).to_le_bytes());
        conn.push(1);
        conn.extend_from_slice(&2u32.to_le_bytes());
        conn.extend_from_slice(&(1u64 << 30).to_le_bytes());
        conn.extend_from_slice(&60_000u64.to_le_bytes());
        match Response::decode(&conn).unwrap() {
            Response::Connected(info) => {
                assert_eq!(info.lease_mem, 1 << 30);
                assert_eq!(info.qos, 0, "v4 tenancies are best-effort");
            }
            other => panic!("decoded {other:?}"),
        }
        // v4 LeaseSet: ends at the TTL; grants best-effort only.
        let mut ls = vec![4u8, ADMIN_REQ_LEASE_SET];
        ls.extend_from_slice(&1000u32.to_le_bytes());
        ls.extend_from_slice(&(16u64 << 20).to_le_bytes());
        ls.extend_from_slice(&4u32.to_le_bytes());
        ls.extend_from_slice(&30_000u64.to_le_bytes());
        assert_eq!(
            AdminRequest::decode(&ls).unwrap(),
            AdminRequest::LeaseSet {
                uid: 1000,
                mem_bytes: 16 << 20,
                streams: 4,
                ttl_ms: 30_000,
                qos: 0,
            }
        );
        // v4 Tenants answer: each row ends at transfer_bytes.
        let mut t = vec![4u8, ADMIN_RESP_TENANTS];
        put_str(&mut t, "node-a");
        t.extend_from_slice(&1u32.to_le_bytes());
        t.extend_from_slice(&3u32.to_le_bytes()); // client
        t.extend_from_slice(&1000u32.to_le_bytes()); // uid
        t.extend_from_slice(&1u32.to_le_bytes()); // device
        for v in [1u64 << 22, u64::MAX, 0, 1234, 4096, 5, 9, 1 << 40] {
            t.extend_from_slice(&v.to_le_bytes());
        }
        match AdminResponse::decode(&t).unwrap() {
            AdminResponse::Tenants { tenants, .. } => {
                assert_eq!(tenants.len(), 1);
                assert_eq!(tenants[0].qos, 0, "v4 rows are best-effort");
                assert_eq!(tenants[0].inflight, 0);
            }
            other => panic!("decoded {other:?}"),
        }
        // Plain-bodied messages are bit-identical across versions.
        let mut sync_v4 = Request::Sync.encode();
        sync_v4[0] = 4;
        assert_eq!(Request::decode(&sync_v4).unwrap(), Request::Sync);
    }

    #[test]
    fn admin_round_trip_edge_values() {
        let reqs = vec![
            AdminRequest::Devices,
            AdminRequest::Tenants,
            AdminRequest::LeaseSet {
                uid: u32::MAX,
                mem_bytes: u64::MAX,
                streams: 0,
                ttl_ms: 1,
                qos: 1,
            },
            AdminRequest::LeaseRevoke { client: 7 },
            AdminRequest::Quota { uid: None },
            AdminRequest::Quota { uid: Some(1000) },
            AdminRequest::Metrics,
            AdminRequest::Trace { uid: None },
            AdminRequest::Trace {
                uid: Some(u32::MAX),
            },
        ];
        for req in reqs {
            let frame = req.encode();
            assert_eq!(AdminRequest::decode(&frame).unwrap(), req, "{req:?}");
        }
        let resps = vec![
            AdminResponse::Devices {
                node: "node-a".into(),
                devices: vec![DeviceInfo {
                    index: 1,
                    name: "A4000".into(),
                    clock_ghz: 1.56,
                    pool_bytes: 8 << 30,
                    used_bytes: 0,
                    tenants: 0,
                }],
            },
            AdminResponse::Tenants {
                node: String::new(),
                tenants: vec![TenantInfo {
                    client: 3,
                    uid: 1000,
                    device: 1,
                    partition_size: 1 << 22,
                    lease_mem: u64::MAX,
                    lease_ttl_ms: 0,
                    age_ms: 1234,
                    bytes_held: 4096,
                    launches: u64::MAX,
                    transfers: 9,
                    transfer_bytes: 1 << 40,
                    qos: 1,
                    inflight: 17,
                }],
            },
            AdminResponse::Ok {
                node: "node-a".into(),
            },
            AdminResponse::Quota {
                node: "node-a".into(),
                entries: vec![UsageInfo {
                    uid: 0,
                    device: u32::MAX,
                    live: 2,
                    bytes_held: 1,
                    launches: 2,
                    transfers: 3,
                    transfer_bytes: 4,
                    occupancy_ms: 5,
                }],
            },
            AdminResponse::Metrics {
                node: "node-a".into(),
                text: "# HELP guardian_tenants Live tenants.\nguardian_tenants 2\n".into(),
            },
            AdminResponse::Trace {
                node: "node-a".into(),
                events: vec![
                    crate::telemetry::TraceEvent::default(),
                    crate::telemetry::TraceEvent {
                        seq: u64::MAX,
                        op: 4,
                        outcome: 1,
                        client: u32::MAX,
                        uid: 1000,
                        stream: 3,
                        t_decode_ns: 1,
                        t_admit_ns: 2,
                        t_flush_ns: 3,
                        t_enqueue_ns: u64::MAX,
                        t_complete_ns: 5,
                    },
                ],
            },
            AdminResponse::Error {
                node: "node-a".into(),
                msg: "no such client 99".into(),
            },
        ];
        for resp in resps {
            let frame = resp.encode();
            assert_eq!(AdminResponse::decode(&frame).unwrap(), resp, "{resp:?}");
        }
        // Tenant-plane frames are not admin frames: an admin socket fed
        // a tenant Sync (opcode 12) must reject it, not misparse it.
        assert!(AdminRequest::decode(&Request::Sync.encode()).is_err());
    }

    #[test]
    fn malformed_frames_error_without_panic() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            Request::decode(&[9, REQ_SYNC]),
            Err(ProtoError::BadVersion(9))
        );
        // A hint with an unknown affinity discriminant is rejected.
        let mut f = frame_header(REQ_CONNECT);
        f.extend_from_slice(&0u64.to_le_bytes());
        f.extend_from_slice(&[1, 0, 99]); // has_hint, no device, bad affinity
        assert_eq!(Request::decode(&f), Err(ProtoError::BadOpcode(99)));
        assert_eq!(
            Request::decode(&[PROTO_VERSION, 250]),
            Err(ProtoError::BadOpcode(250))
        );
        // Truncated string length prefix.
        assert_eq!(
            Request::decode(&[PROTO_VERSION, REQ_LAUNCH, 0xFF, 0xFF]),
            Err(ProtoError::Truncated)
        );
        // Length prefix larger than the frame.
        let mut f = vec![PROTO_VERSION, REQ_REGISTER_FATBIN];
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&f), Err(ProtoError::Truncated));
        // Trailing garbage.
        let mut f = Request::Sync.encode();
        f.push(0);
        assert_eq!(Request::decode(&f), Err(ProtoError::TrailingBytes(1)));
        // Bad UTF-8 in a string field.
        let mut f = frame_header(REQ_REGISTER_PTX);
        put_blob(&mut f, &[0xFF, 0xFE]);
        put_blob(&mut f, b"");
        assert_eq!(Request::decode(&f), Err(ProtoError::BadUtf8));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;
    use proptest::strategy::BoxedStrategy;

    fn arb_string() -> BoxedStrategy<String> {
        // Printable ASCII is enough to exercise the length-prefixed
        // framing; UTF-8 *rejection* is covered by the unit tests.
        pvec(0x20u8..0x7F, 0..24)
            .prop_map(|b| b.into_iter().map(char::from).collect())
            .boxed()
    }

    fn arb_blob() -> BoxedStrategy<Vec<u8>> {
        pvec(any::<u8>(), 0..200).boxed()
    }

    fn arb_cfg() -> BoxedStrategy<LaunchConfig> {
        (
            (any::<u32>(), any::<u32>(), any::<u32>()),
            (any::<u32>(), any::<u32>(), any::<u32>()),
        )
            .prop_map(|(grid, block)| LaunchConfig { grid, block })
            .boxed()
    }

    fn arb_error() -> BoxedStrategy<CudaError> {
        prop_oneof![
            Just(CudaError::OutOfMemory).boxed(),
            Just(CudaError::InvalidValue).boxed(),
            arb_string()
                .prop_map(CudaError::InvalidDeviceFunction)
                .boxed(),
            Just(CudaError::ContextPoisoned).boxed(),
            arb_string().prop_map(CudaError::ModuleLoad).boxed(),
            any::<u32>().prop_map(CudaError::MissingExportTable).boxed(),
            arb_string().prop_map(CudaError::Rejected).boxed(),
            Just(CudaError::Disconnected).boxed(),
        ]
        .boxed()
    }

    fn arb_hint() -> BoxedStrategy<Option<PlacementHint>> {
        (
            (any::<bool>(), any::<bool>()),
            (any::<u32>(), any::<bool>()),
        )
            .prop_map(|((has_hint, has_device), (device, strict))| {
                has_hint.then(|| PlacementHint {
                    device: has_device.then_some(device),
                    affinity: if strict {
                        Affinity::Strict
                    } else {
                        Affinity::Prefer
                    },
                })
            })
            .boxed()
    }

    /// Every request variant, fields drawn at random.
    fn arb_request() -> BoxedStrategy<Request> {
        prop_oneof![
            (any::<u64>(), arb_hint(), 0u8..2)
                .prop_map(|(mem_requirement, hint, qos)| Request::Connect {
                    mem_requirement,
                    hint,
                    qos,
                })
                .boxed(),
            Just(Request::Disconnect).boxed(),
            arb_blob()
                .prop_map(|bytes: Vec<u8>| Request::RegisterFatbin {
                    bytes: bytes.into()
                })
                .boxed(),
            (arb_string(), arb_string())
                .prop_map(|(name, text)| Request::RegisterPtx { name, text })
                .boxed(),
            any::<u64>()
                .prop_map(|bytes| Request::Malloc { bytes })
                .boxed(),
            any::<u64>().prop_map(|ptr| Request::Free { ptr }).boxed(),
            (any::<u64>(), any::<u8>(), any::<u64>())
                .prop_map(|(dst, byte, len)| Request::Memset { dst, byte, len })
                .boxed(),
            (any::<u64>(), arb_blob())
                .prop_map(|(dst, data): (u64, Vec<u8>)| Request::MemcpyH2D {
                    dst,
                    data: data.into()
                })
                .boxed(),
            (any::<u64>(), arb_blob())
                .prop_map(|(dst, data): (u64, Vec<u8>)| Request::MemcpyH2DAsync {
                    dst,
                    data: data.into()
                })
                .boxed(),
            (any::<u64>(), any::<u64>())
                .prop_map(|(src, len)| Request::MemcpyD2H { src, len })
                .boxed(),
            (any::<u64>(), any::<u64>(), any::<u64>())
                .prop_map(|(dst, src, len)| Request::MemcpyD2D { dst, src, len })
                .boxed(),
            (arb_string(), arb_cfg(), arb_blob(), any::<bool>())
                .prop_map(|(kernel, cfg, args, driver_level)| Request::Launch {
                    kernel: kernel.into(),
                    cfg,
                    args: args.into(),
                    driver_level,
                })
                .boxed(),
            Just(Request::Sync).boxed(),
            Just(Request::EventCreate).boxed(),
            any::<u32>()
                .prop_map(|event| Request::EventRecord { event })
                .boxed(),
            (any::<u32>(), any::<u32>())
                .prop_map(|(start, end)| Request::EventElapsed { start, end })
                .boxed(),
            Just(Request::DeviceNow).boxed(),
            Just(Request::Stats).boxed(),
            Just(Request::DeviceInfo).boxed(),
            any::<u32>()
                .prop_map(|device| Request::Migrate { device })
                .boxed(),
            Just(Request::Binding).boxed(),
        ]
        .boxed()
    }

    fn arb_istats() -> BoxedStrategy<InterceptionStats> {
        ((any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>()))
            .prop_map(
                |((launches, lookup_ns), (augment_ns, enqueue_ns))| InterceptionStats {
                    launches,
                    lookup_ns,
                    augment_ns,
                    enqueue_ns,
                },
            )
            .boxed()
    }

    /// Every response variant, fields drawn at random (floats cover all
    /// bit patterns, NaN included — hence the frame-level equality law).
    fn arb_response() -> BoxedStrategy<Response> {
        prop_oneof![
            Just(Response::Unit).boxed(),
            (
                (any::<u32>(), any::<u64>()),
                (any::<u64>(), any::<u64>()),
                (any::<bool>(), any::<u32>()),
                (any::<u64>(), any::<u64>(), 0u8..2)
            )
                .prop_map(
                    |(
                        (client, ghz_bits),
                        (partition_base, partition_size),
                        (deferred, device),
                        (lease_mem, lease_ttl_ms, qos),
                    )| {
                        Response::Connected(ConnectInfo {
                            client,
                            clock_ghz: f64::from_bits(ghz_bits),
                            partition_base,
                            partition_size,
                            deferred_launch: deferred,
                            device,
                            lease_mem,
                            lease_ttl_ms,
                            qos,
                        })
                    }
                )
                .boxed(),
            pvec(
                (
                    (any::<u32>(), arb_string(), any::<u64>()),
                    (any::<u64>(), any::<u64>(), any::<u32>())
                )
                    .prop_map(
                        |((index, name, ghz_bits), (pool_bytes, used_bytes, tenants))| {
                            DeviceInfo {
                                index,
                                name,
                                clock_ghz: f64::from_bits(ghz_bits),
                                pool_bytes,
                                used_bytes,
                                tenants,
                            }
                        }
                    ),
                0..5
            )
            .prop_map(Response::Devices)
            .boxed(),
            any::<u64>().prop_map(Response::Ptr).boxed(),
            arb_blob().prop_map(Response::Data).boxed(),
            any::<u32>().prop_map(Response::EventId).boxed(),
            any::<u32>()
                .prop_map(|bits| Response::ElapsedMs(f32::from_bits(bits)))
                .boxed(),
            any::<u64>().prop_map(Response::Cycles).boxed(),
            ((arb_istats(), arb_istats()), any::<u32>())
                .prop_map(|((runtime, driver), max_concurrent_data_ops)| {
                    Response::Stats(StatsSnapshot {
                        launch: LaunchStats { runtime, driver },
                        max_concurrent_data_ops,
                    })
                })
                .boxed(),
            arb_error().prop_map(Response::Error).boxed(),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// encode → decode is the identity for every request message.
        #[test]
        fn request_encode_decode_round_trips(req in arb_request()) {
            let frame = req.encode();
            let back = Request::decode(&frame).expect("decode");
            prop_assert_eq!(&back, &req);
            // And re-encoding is byte-stable (canonical encoding).
            prop_assert_eq!(back.encode(), frame);
        }

        /// encode → decode → encode reproduces the exact frame for every
        /// response message. Frame-level equality is NaN-safe: float
        /// fields compare by bit pattern, not by PartialEq.
        #[test]
        fn response_encode_decode_round_trips(resp in arb_response()) {
            let frame = resp.encode();
            let back = Response::decode(&frame).expect("decode");
            prop_assert_eq!(back.encode(), frame);
        }

        /// Decoding arbitrary bytes never panics — the manager must
        /// survive any garbage a hostile tenant sends.
        #[test]
        fn decode_total_on_garbage(frame in pvec(any::<u8>(), 0..64)) {
            let _ = Request::decode(&frame);
            let _ = Response::decode(&frame);
            let _ = AdminRequest::decode(&frame);
            let _ = AdminResponse::decode(&frame);
        }
    }
}
