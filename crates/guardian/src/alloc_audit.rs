//! Heap-allocation auditing for the dispatch hot path.
//!
//! The steady-state launch admission path (decode a `Launch` frame,
//! resolve the kernel through the session cache, push a descriptor into
//! the preallocated batch) is designed to perform **zero** heap
//! allocations. This module lets a test binary prove that: the binary
//! installs a counting `#[global_allocator]` that calls [`note_alloc`]
//! on every `alloc`/`realloc`, arms the audit with [`arm`], and the
//! session then `debug_assert!`s via [`assert_unchanged`] that no
//! allocation happened between the frame's [`mark`] and admission.
//!
//! Outside an armed test binary every call is a no-op (a relaxed load
//! of a false flag), and in release builds the assertion sites compile
//! out entirely.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Global switch; off by default so production paths pay one relaxed
/// load at most.
static ARMED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Allocations observed on this thread since it started.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Snapshot taken at the top of the current frame.
    static MARK: Cell<u64> = const { Cell::new(0) };
}

/// Turn auditing on or off. Only meaningful in binaries whose global
/// allocator reports into [`note_alloc`].
pub fn arm(on: bool) {
    ARMED.store(on, Ordering::SeqCst);
}

/// Whether the audit is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Report one heap allocation on the calling thread. Called by a test
/// binary's counting global allocator; must not itself allocate.
pub fn note_alloc() {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Allocations observed on the calling thread so far.
pub fn count() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Snapshot the allocation counter at the start of a frame.
pub fn mark() {
    if armed() {
        MARK.with(|m| m.set(count()));
    }
}

/// Assert (debug builds, armed binaries only) that no allocation
/// happened since the last [`mark`] on this thread.
pub fn assert_unchanged(what: &str) {
    if armed() {
        let delta = count().wrapping_sub(MARK.with(|m| m.get()));
        debug_assert_eq!(
            delta, 0,
            "{what}: {delta} heap allocation(s) on the hot path"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_inert_and_armed_tracks_marks() {
        // Not armed: mark/assert never fire regardless of counts.
        arm(false);
        note_alloc();
        assert_unchanged("inert");

        arm(true);
        mark();
        assert_unchanged("clean window");
        let before = count();
        note_alloc();
        assert_eq!(count(), before + 1);
        mark();
        assert_unchanged("re-marked window");
        arm(false);
    }
}
