//! Tenant placement across a multi-GPU device set.
//!
//! When the grdManager owns several GPUs (one partition pool per device),
//! every `Connect` must pick a device before a partition can be carved.
//! The policy layer is deliberately pure — it looks at a snapshot of
//! per-device load and an optional tenant-supplied [`PlacementHint`], and
//! returns a device index — so it can be property-tested exhaustively
//! without spinning up managers (the ParvaGPU / MIG-fragmentation line of
//! work in PAPERS.md is all about this decision being the difference
//! between aggregate throughput and stranded capacity).
//!
//! Invariants the proptests pin down:
//!
//! * a returned device can always satisfy the request (no overcommit —
//!   the control plane allocates from exactly the pool the policy chose);
//! * an explicit, satisfiable hint is always honored;
//! * an unsatisfiable strict hint fails *instead of* spilling onto a
//!   device the tenant did not ask for.

use std::fmt;

/// How the manager routes tenants with no (or non-strict) hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Route to the device with the fewest partition-pool bytes in use
    /// that can satisfy the request (ties break to the lowest index).
    #[default]
    LeastLoaded,
    /// Rotate over devices, skipping those that cannot satisfy the
    /// request.
    RoundRobin,
}

/// How binding a hint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Affinity {
    /// The hinted device or failure — never silent spillover (a tenant
    /// pinned for data locality must not land elsewhere).
    #[default]
    Strict,
    /// Prefer the hinted device, fall back to the policy when it cannot
    /// satisfy the request.
    Prefer,
}

/// A tenant's placement request, carried in the `Connect` wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementHint {
    /// Device index to pin to, if any.
    pub device: Option<u32>,
    /// Whether the pin is a requirement or a preference. Ignored when
    /// `device` is `None`.
    pub affinity: Affinity,
}

impl PlacementHint {
    /// Pin to `device`, failing if it cannot host the tenant.
    pub fn pin(device: u32) -> Self {
        PlacementHint {
            device: Some(device),
            affinity: Affinity::Strict,
        }
    }

    /// Prefer `device`, falling back to the policy if it is full.
    pub fn prefer(device: u32) -> Self {
        PlacementHint {
            device: Some(device),
            affinity: Affinity::Prefer,
        }
    }
}

/// A point-in-time view of one device's partition pool, as the control
/// plane sees it at `Connect`.
#[derive(Debug, Clone, Copy)]
pub struct DeviceLoad {
    /// Pool bytes currently held by partitions.
    pub used_bytes: u64,
    /// Whether this device's pool can carve a partition of the requested
    /// size right now (buddy-allocator answer, not just a byte count —
    /// fragmentation matters).
    pub can_fit: bool,
}

/// Why a placement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The hint named a device index outside the device set.
    NoSuchDevice(u32),
    /// No device (or, under a strict hint, not the hinted device) can
    /// satisfy the request.
    NoCapacity,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoSuchDevice(d) => write!(f, "no such device {d}"),
            PlacementError::NoCapacity => f.write_str("no device can satisfy the request"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Pick a device for one connect. `rr_cursor` is the round-robin state:
/// it advances only when the policy (not a hint) makes the choice, so
/// hinted tenants do not skew the rotation.
///
/// # Errors
///
/// [`PlacementError::NoSuchDevice`] for an out-of-range hint;
/// [`PlacementError::NoCapacity`] when nothing (or, strictly, not the
/// hinted device) fits.
pub fn choose_device(
    policy: PlacementPolicy,
    rr_cursor: &mut u32,
    hint: Option<PlacementHint>,
    loads: &[DeviceLoad],
) -> Result<u32, PlacementError> {
    if let Some(hint) = hint {
        if let Some(d) = hint.device {
            let load = loads
                .get(d as usize)
                .ok_or(PlacementError::NoSuchDevice(d))?;
            if load.can_fit {
                return Ok(d);
            }
            if hint.affinity == Affinity::Strict {
                return Err(PlacementError::NoCapacity);
            }
            // Prefer: fall through to the policy.
        }
    }
    match policy {
        PlacementPolicy::LeastLoaded => loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.can_fit)
            .min_by_key(|(i, l)| (l.used_bytes, *i))
            .map(|(i, _)| i as u32)
            .ok_or(PlacementError::NoCapacity),
        PlacementPolicy::RoundRobin => {
            let n = loads.len() as u32;
            if n == 0 {
                return Err(PlacementError::NoCapacity);
            }
            for step in 0..n {
                let d = (*rr_cursor + step) % n;
                if loads[d as usize].can_fit {
                    *rr_cursor = (d + 1) % n;
                    return Ok(d);
                }
            }
            Err(PlacementError::NoCapacity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(used: u64, fit: bool) -> DeviceLoad {
        DeviceLoad {
            used_bytes: used,
            can_fit: fit,
        }
    }

    #[test]
    fn least_loaded_picks_min_bytes_breaking_ties_low() {
        let mut rr = 0;
        let loads = [load(8, true), load(4, true), load(4, true)];
        let d = choose_device(PlacementPolicy::LeastLoaded, &mut rr, None, &loads).unwrap();
        assert_eq!(d, 1);
    }

    #[test]
    fn least_loaded_skips_full_devices() {
        let mut rr = 0;
        let loads = [load(0, false), load(16, true)];
        let d = choose_device(PlacementPolicy::LeastLoaded, &mut rr, None, &loads).unwrap();
        assert_eq!(d, 1);
    }

    #[test]
    fn round_robin_rotates_and_skips() {
        let mut rr = 0;
        let loads = [load(0, true), load(0, false), load(0, true)];
        let picks: Vec<u32> = (0..4)
            .map(|_| choose_device(PlacementPolicy::RoundRobin, &mut rr, None, &loads).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn strict_hint_is_honored_or_fails() {
        let mut rr = 0;
        let loads = [load(0, true), load(0, false)];
        assert_eq!(
            choose_device(
                PlacementPolicy::LeastLoaded,
                &mut rr,
                Some(PlacementHint::pin(0)),
                &loads
            ),
            Ok(0)
        );
        assert_eq!(
            choose_device(
                PlacementPolicy::LeastLoaded,
                &mut rr,
                Some(PlacementHint::pin(1)),
                &loads
            ),
            Err(PlacementError::NoCapacity)
        );
        assert_eq!(
            choose_device(
                PlacementPolicy::LeastLoaded,
                &mut rr,
                Some(PlacementHint::pin(7)),
                &loads
            ),
            Err(PlacementError::NoSuchDevice(7))
        );
    }

    #[test]
    fn prefer_hint_spills_to_policy() {
        let mut rr = 0;
        let loads = [load(9, true), load(0, false)];
        let d = choose_device(
            PlacementPolicy::LeastLoaded,
            &mut rr,
            Some(PlacementHint::prefer(1)),
            &loads,
        )
        .unwrap();
        assert_eq!(d, 0, "preferred device full: spill to least-loaded");
    }

    #[test]
    fn hints_do_not_advance_round_robin() {
        let mut rr = 0;
        let loads = [load(0, true), load(0, true)];
        let _ = choose_device(
            PlacementPolicy::RoundRobin,
            &mut rr,
            Some(PlacementHint::pin(1)),
            &loads,
        )
        .unwrap();
        assert_eq!(rr, 0, "hinted placement must not skew the rotation");
        let d = choose_device(PlacementPolicy::RoundRobin, &mut rr, None, &loads).unwrap();
        assert_eq!(d, 0);
    }
}

#[cfg(test)]
mod proptests {
    //! The placement policy driven against *real* per-device buddy
    //! allocators: arbitrary interleavings of connects (mixed hints,
    //! mixed sizes, both policies) and disconnects must never overcommit
    //! any device's pool and must always honor a satisfiable explicit
    //! hint.

    use super::*;
    use crate::alloc::{PartitionAllocator, MIN_PARTITION};
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// Connect requesting `size_mult` MiB-partitions with a hint.
        Connect {
            size_mult: u64,
            hint_device: Option<u32>,
            strict: bool,
        },
        /// Disconnect the idx-th live tenant (mod live count).
        Disconnect { idx: usize },
    }

    fn arb_connect(devices: u32) -> impl Strategy<Value = Op> {
        (
            1u64..5,
            (any::<bool>(), 0..devices + 1), // +1: out-of-range hints too
            any::<bool>(),
        )
            .prop_map(|(size_mult, (hinted, device), strict)| Op::Connect {
                size_mult,
                hint_device: hinted.then_some(device),
                strict,
            })
    }

    fn arb_op(devices: u32) -> impl Strategy<Value = Op> {
        // Three connect arms to one disconnect keeps pools loaded.
        prop_oneof![
            arb_connect(devices),
            arb_connect(devices),
            arb_connect(devices),
            (0usize..32).prop_map(|idx| Op::Disconnect { idx }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn placement_never_overcommits_and_honors_hints(
            ops in pvec(arb_op(3), 1..60),
            round_robin in any::<bool>(),
        ) {
            const POOL: u64 = 8 * MIN_PARTITION;
            let policy = if round_robin {
                PlacementPolicy::RoundRobin
            } else {
                PlacementPolicy::LeastLoaded
            };
            let mut pools: Vec<PartitionAllocator> = (0..3)
                .map(|i| PartitionAllocator::new((i as u64 + 1) << 40, POOL))
                .collect();
            let mut rr = 0u32;
            // (device, partition base, partition size)
            let mut live: Vec<(u32, u64, u64)> = Vec::new();
            for op in ops {
                match op {
                    Op::Connect { size_mult, hint_device, strict } => {
                        let bytes = size_mult * MIN_PARTITION;
                        let hint = hint_device.map(|d| PlacementHint {
                            device: Some(d),
                            affinity: if strict { Affinity::Strict } else { Affinity::Prefer },
                        });
                        let loads: Vec<DeviceLoad> = pools
                            .iter()
                            .map(|p| DeviceLoad {
                                used_bytes: p.used_bytes(),
                                can_fit: p.can_alloc(bytes),
                            })
                            .collect();
                        match choose_device(policy, &mut rr, hint, &loads) {
                            Ok(d) => {
                                // No overcommit: the chosen pool must
                                // actually carve the partition.
                                let part = pools[d as usize].alloc(bytes);
                                prop_assert!(
                                    part.is_ok(),
                                    "policy chose device {} which could not fit {} bytes",
                                    d, bytes
                                );
                                let part = part.unwrap();
                                // A satisfiable explicit hint is always
                                // honored, strict or not.
                                if let Some(hd) = hint_device {
                                    if (hd as usize) < pools.len() && loads[hd as usize].can_fit {
                                        prop_assert_eq!(
                                            d, hd,
                                            "satisfiable hint for device {} ignored", hd
                                        );
                                    }
                                }
                                live.push((d, part.base, part.size));
                            }
                            Err(PlacementError::NoSuchDevice(d)) => {
                                prop_assert!(d as usize >= pools.len());
                            }
                            Err(PlacementError::NoCapacity) => {
                                match hint_device {
                                    // A strict in-range hint fails iff the
                                    // hinted device cannot fit.
                                    Some(hd) if strict && (hd as usize) < pools.len() => {
                                        prop_assert!(!loads[hd as usize].can_fit);
                                    }
                                    // Otherwise failure means *nothing* fits.
                                    _ => {
                                        for (i, l) in loads.iter().enumerate() {
                                            prop_assert!(
                                                !l.can_fit,
                                                "NoCapacity but device {} fits", i
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        // Per-device pool accounting can never exceed
                        // capacity (the allocator enforces it; assert the
                        // live set agrees).
                        for (i, pool) in pools.iter().enumerate() {
                            let held: u64 = live
                                .iter()
                                .filter(|(d, _, _)| *d as usize == i)
                                .map(|(_, _, s)| s)
                                .sum();
                            prop_assert_eq!(held, pool.used_bytes());
                            prop_assert!(held <= POOL, "device {} overcommitted", i);
                        }
                    }
                    Op::Disconnect { idx } => {
                        if !live.is_empty() {
                            let (d, base, _) = live.swap_remove(idx % live.len());
                            prop_assert!(pools[d as usize].free(base).is_ok());
                        }
                    }
                }
            }
            // Everything freeable; all pools fully restored.
            for (d, base, _) in live.drain(..) {
                prop_assert!(pools[d as usize].free(base).is_ok());
            }
            for pool in &mut pools {
                prop_assert!(pool.alloc(POOL).is_ok());
            }
        }
    }
}
