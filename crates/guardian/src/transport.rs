//! Transport abstraction between `grdLib` and the grdManager.
//!
//! The wire protocol ([`crate::proto`]) produces self-contained byte
//! frames; this module defines how frames travel. Three small traits model
//! a connection-oriented transport the way sockets do:
//!
//! * [`Connection`] — a bidirectional, ordered, reliable frame pipe. One
//!   connection per tenant: the manager derives the client identity from
//!   the connection, not from message contents.
//! * [`Listener`] — the manager side: yields the server half of each new
//!   connection.
//! * [`Dialer`] — the client side: opens new connections.
//!
//! [`channel_transport`] provides the in-process implementation used by
//! this reproduction (two `crossbeam` byte-frame channels per connection).
//! Because nothing above this layer sees anything but byte frames, a Unix
//! domain socket or shared-memory ring implementation could be swapped in
//! without touching `grdLib`, the session layer, or the manager.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::fmt;

/// Transport-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer (or the listener) has gone away.
    Disconnected,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => f.write_str("transport disconnected"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, ordered, reliable byte-frame pipe.
pub trait Connection: Send {
    /// Send one frame to the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Block until the peer's next frame arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the peer is gone and no frames
    /// remain.
    fn recv(&self) -> Result<Vec<u8>, TransportError>;
}

/// The accepting (manager) side of a transport.
pub trait Listener: Send {
    /// Block until a client opens a connection; returns the server half.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] once no dialer can ever connect
    /// again (shutdown).
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError>;
}

/// The connecting (client) side of a transport.
pub trait Dialer: Send + Sync {
    /// Open a new connection to the manager; returns the client half.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the listener is gone.
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError>;
}

/// In-process connection half: a pair of byte-frame channels.
pub struct ChannelConnection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl Connection for ChannelConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.tx
            .send(frame)
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

/// In-process listener: receives server halves from [`ChannelDialer`]s.
pub struct ChannelListener {
    incoming: Receiver<ChannelConnection>,
}

impl Listener for ChannelListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        self.incoming
            .recv()
            .map(|c| Box::new(c) as Box<dyn Connection>)
            .map_err(|_| TransportError::Disconnected)
    }
}

/// In-process dialer: builds a duplex channel pair per connection and
/// hands the server half to the listener.
pub struct ChannelDialer {
    // Mutex so the dialer is Sync regardless of the channel Sender's own
    // Sync-ness (the shim wraps std::sync::mpsc).
    to_listener: Mutex<Sender<ChannelConnection>>,
}

impl Dialer for ChannelDialer {
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError> {
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let server = ChannelConnection {
            tx: s2c_tx,
            rx: c2s_rx,
        };
        let client = ChannelConnection {
            tx: c2s_tx,
            rx: s2c_rx,
        };
        self.to_listener
            .lock()
            .send(server)
            .map_err(|_| TransportError::Disconnected)?;
        Ok(Box::new(client))
    }
}

/// Create a connected in-process listener/dialer pair.
///
/// Dropping the dialer closes the listener (its `accept` starts failing),
/// which is how the manager's acceptor thread learns to shut down.
pub fn channel_transport() -> (ChannelListener, ChannelDialer) {
    let (tx, rx) = unbounded();
    (
        ChannelListener { incoming: rx },
        ChannelDialer {
            to_listener: Mutex::new(tx),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let (listener, dialer) = channel_transport();
        let client = dialer.dial().unwrap();
        let server = listener.accept().unwrap();
        client.send(vec![1]).unwrap();
        client.send(vec![2, 2]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1]);
        assert_eq!(server.recv().unwrap(), vec![2, 2]);
        server.send(vec![3]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![3]);
    }

    #[test]
    fn connections_are_independent() {
        let (listener, dialer) = channel_transport();
        let c1 = dialer.dial().unwrap();
        let c2 = dialer.dial().unwrap();
        let s1 = listener.accept().unwrap();
        let s2 = listener.accept().unwrap();
        c2.send(vec![2]).unwrap();
        c1.send(vec![1]).unwrap();
        assert_eq!(s1.recv().unwrap(), vec![1]);
        assert_eq!(s2.recv().unwrap(), vec![2]);
    }

    #[test]
    fn drop_propagates_as_disconnect() {
        let (listener, dialer) = channel_transport();
        let client = dialer.dial().unwrap();
        let server = listener.accept().unwrap();
        drop(client);
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
        drop(dialer);
        assert!(listener.accept().is_err());
    }
}
