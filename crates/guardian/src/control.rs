//! The node control plane: tenant leases, per-uid quotas, rate-limited
//! admission, and the admin/metrics plane behind `guardianctl`.
//!
//! The data plane ([`crate::manager`] + sessions) shares one GPU set
//! among many tenants; this module is what makes that sharing
//! *operable*. Four pieces, mirroring the lease/ticket model of
//! federated GPU managers (GPUnion) and the admission-above-spatial-
//! sharing argument of large-scale serving systems (ParvaGPU):
//!
//! * [`LeaseSpec`] — the terms a `Connect` is admitted under: a memory
//!   cap, a stream cap, and a wall-clock TTL. The manager enforces the
//!   cap at `malloc`, and its control thread sweeps expired leases,
//!   draining the session through the same barrier + fault-reap path
//!   migration uses, then reclaiming the partition.
//! * [`TenantCounters`] / [`ControlPlane`] — per-tenant usage counters
//!   (bytes held, launches, transfers, frames) rolled up per uid — the
//!   identity the `SO_PEERCRED` gate already established — and per
//!   device, surviving tenant exit in a retired ledger so quota queries
//!   see lifetime usage, not just the current instant.
//! * [`Admission`] — a per-uid token bucket on connects, checked in the
//!   socket accept loops before any protocol byte, so a reconnect storm
//!   cannot starve the accept path for other uids.
//! * [`serve_admin`] / [`serve_http_metrics`] — the admin plane: a
//!   Unix-socket endpoint speaking the [`crate::proto::AdminRequest`]
//!   message family (a separate opcode space — tenant sessions can never
//!   utter it), plus an optional plain-HTTP `/metrics` endpoint serving
//!   the same Prometheus text exposition. Every response carries the
//!   node id so the protocol can later federate a fleet of `guardiand`
//!   nodes.

use crate::proto::{AdminRequest, AdminResponse, DeviceInfo, TenantInfo, UsageInfo};
use crate::telemetry::{
    ExecGauges, HistSnapshot, OpClass, TenantTelemetry, TraceEvent, OP_CLASSES,
};
use crate::transport::BoundTransport;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The scheduling class a tenant runs under.
///
/// `Latency` tenants get priority treatment along the whole launch
/// path: the executor rate-gates best-effort drain rounds while a
/// latency session has pending frames, the session flushes their
/// launches into the device's priority lane (front of the ready
/// queue), and the simulator preempts best-effort kernels for them at
/// the next slice boundary. `BestEffort` tenants backfill whatever the
/// latency class leaves idle. The default is `BestEffort`; the class a
/// tenant may hold is capped by its lease (`qos=latency|besteffort`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum QosClass {
    /// Latency-sensitive: priority dispatch, preempts best-effort
    /// kernel slices, exempt from the inflight-launch budget.
    Latency,
    /// Throughput-oriented backfill: bounded inflight budget, drain
    /// rounds gated while latency work is pending.
    #[default]
    BestEffort,
}

impl QosClass {
    /// Parse a class name as it appears in a lease term.
    ///
    /// # Errors
    ///
    /// A message naming the offending value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "latency" => Ok(QosClass::Latency),
            "besteffort" | "best-effort" => Ok(QosClass::BestEffort),
            other => Err(format!(
                "bad qos class `{other}` (want latency or besteffort)"
            )),
        }
    }

    /// The canonical lease-term spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            QosClass::Latency => "latency",
            QosClass::BestEffort => "besteffort",
        }
    }

    /// Wire form: 1 = latency, 0 = besteffort (the proto-v4 default).
    pub fn to_wire(self) -> u8 {
        match self {
            QosClass::Latency => 1,
            QosClass::BestEffort => 0,
        }
    }

    /// Inverse of [`QosClass::to_wire`]; unknown values decode as
    /// best-effort so an old peer can never grant priority by accident.
    pub fn from_wire(v: u8) -> Self {
        if v == 1 {
            QosClass::Latency
        } else {
            QosClass::BestEffort
        }
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The terms a tenant is admitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseSpec {
    /// Maximum bytes the tenant may hold from its partition heap
    /// (`u64::MAX` = uncapped). The partition itself must also fit
    /// under this cap at connect time.
    pub mem_bytes: u64,
    /// Maximum streams the tenant may use (0 denies admission outright;
    /// the current data plane grants one stream per tenant, so any
    /// value ≥ 1 admits).
    pub streams: u32,
    /// Wall-clock time-to-live; `None` never expires. An expired lease
    /// is revoked by the manager without operator action.
    pub ttl: Option<Duration>,
    /// The highest scheduling class this lease grants. A connect
    /// requesting `latency` is clamped to best-effort unless the lease
    /// says `qos=latency`; lowering a live lease to `besteffort`
    /// demotes its tenants in place.
    pub qos: QosClass,
}

impl LeaseSpec {
    /// The no-op lease: uncapped memory, one stream, no expiry, and
    /// the latency class permitted (callers that never mention QoS
    /// still default-request best-effort at connect).
    pub fn unlimited() -> Self {
        LeaseSpec {
            mem_bytes: u64::MAX,
            streams: u32::MAX,
            ttl: None,
            qos: QosClass::Latency,
        }
    }

    /// Parse a lease from `key=value` pairs separated by commas, e.g.
    /// `mem=16M,streams=4,ttl=30s,qos=latency`. Sizes accept `K`/`M`/`G`
    /// suffixes; TTLs accept `ms`, `s`, or `m` (minutes) suffixes, and
    /// `ttl=0` means no expiry. `qos` is the highest class the lease
    /// grants (`latency` or `besteffort`). Omitted keys keep their
    /// unlimited defaults.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending key and value.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut lease = LeaseSpec::unlimited();
        for pair in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("lease term `{pair}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(format!("lease term `{key}` has an empty value"));
            }
            match key {
                "mem" => lease.mem_bytes = parse_size(value)?,
                "streams" => {
                    lease.streams = value
                        .parse()
                        .map_err(|_| format!("bad stream count `{value}` for `streams`"))?;
                }
                "ttl" => lease.ttl = parse_ttl(value)?,
                "qos" => lease.qos = QosClass::parse(value)?,
                other => {
                    return Err(format!(
                        "unknown lease term `{other}` (want mem, streams, ttl, or qos)"
                    ))
                }
            }
        }
        Ok(lease)
    }

    /// The TTL in wire form: milliseconds, 0 = no expiry.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl.map(|t| t.as_millis() as u64).unwrap_or(0)
    }

    /// Build a lease from wire fields (`u64::MAX` mem = uncapped,
    /// `ttl_ms` 0 = no expiry, `qos` per [`QosClass::from_wire`]).
    /// Inverse of [`LeaseSpec::ttl_ms`] and the `mem_bytes` convention.
    pub fn from_wire(mem_bytes: u64, streams: u32, ttl_ms: u64, qos: u8) -> Self {
        LeaseSpec {
            mem_bytes,
            streams,
            ttl: (ttl_ms > 0).then(|| Duration::from_millis(ttl_ms)),
            qos: QosClass::from_wire(qos),
        }
    }
}

impl Default for LeaseSpec {
    fn default() -> Self {
        LeaseSpec::unlimited()
    }
}

impl fmt::Display for LeaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mem_bytes == u64::MAX {
            f.write_str("mem=unlimited")?;
        } else {
            write!(f, "mem={}", self.mem_bytes)?;
        }
        if self.streams == u32::MAX {
            f.write_str(",streams=unlimited")?;
        } else {
            write!(f, ",streams={}", self.streams)?;
        }
        match self.ttl {
            None => f.write_str(",ttl=none")?,
            Some(t) => write!(f, ",ttl={}ms", t.as_millis())?,
        }
        write!(f, ",qos={}", self.qos)
    }
}

fn parse_size(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1 << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad size `{s}` (want e.g. 4096, 16M, 1G)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("size `{s}` overflows"))
}

fn parse_ttl(s: &str) -> Result<Option<Duration>, String> {
    let bad = || format!("bad ttl `{s}` (want e.g. 500ms, 30s, 5m, 0)");
    let (digits, per) = if let Some(d) = s.strip_suffix("ms") {
        (d, Duration::from_millis(1))
    } else if let Some(d) = s.strip_suffix('s') {
        (d, Duration::from_secs(1))
    } else if let Some(d) = s.strip_suffix('m') {
        (d, Duration::from_secs(60))
    } else {
        (s, Duration::from_secs(1))
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    Ok((n > 0).then(|| per * n as u32))
}

/// Per-tenant usage counters, written lock-free from the data plane
/// (launches from the dispatch path, frames from the executor drain
/// loop) and from the serialized control thread (bytes held), read by
/// the admin plane at scrape time. Relaxed ordering throughout: these
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Partition-heap bytes currently held (maintained by the control
    /// thread on malloc/free, so lease-cap checks and scrapes agree).
    pub bytes_held: AtomicU64,
    /// Kernel launches dispatched.
    pub launches: AtomicU64,
    /// Host/device transfers (h2d, d2h, d2d, memset) dispatched.
    pub transfers: AtomicU64,
    /// Bytes moved by those transfers.
    pub transfer_bytes: AtomicU64,
    /// Wire frames handled for this tenant (bumped in batches by the
    /// executor drain loop — the one seat that sees every frame).
    pub frames: AtomicU64,
    /// Launches admitted but not yet completed (ticked on admission,
    /// drained when the stream synchronizes). The executor compares
    /// this against the best-effort inflight budget before draining
    /// more of the tenant's frames.
    pub inflight: AtomicU64,
}

impl TenantCounters {
    /// Record one transfer of `bytes` (h2d, d2h, d2d, or memset).
    pub fn note_transfer(&self, bytes: u64) {
        self.transfers.fetch_add(1, Relaxed);
        self.transfer_bytes.fetch_add(bytes, Relaxed);
    }
}

/// A live tenancy as the control plane tracks it.
#[derive(Debug, Clone)]
struct TenantEntry {
    uid: u32,
    device: u32,
    partition_size: u64,
    lease: LeaseSpec,
    granted_at: Instant,
    counters: Arc<TenantCounters>,
    /// Latency histograms + flight recorder, shared with the session
    /// (`None` when the manager runs with telemetry disabled).
    telemetry: Option<Arc<TenantTelemetry>>,
}

/// Usage retired when a tenancy ends, keyed per `(uid, device)` so
/// quota queries report lifetime totals.
#[derive(Debug, Default, Clone, Copy)]
struct RetiredUsage {
    launches: u64,
    transfers: u64,
    transfer_bytes: u64,
    frames: u64,
    occupancy_ms: u64,
}

/// The node-level lease/quota registry shared between the manager's
/// control thread (admission, revocation, accounting) and the admin
/// plane (tables, metrics). All methods take `&self`; interior state is
/// behind short-lived mutexes sized for hundreds of tenants.
#[derive(Debug)]
pub struct ControlPlane {
    node: String,
    default_lease: LeaseSpec,
    overrides: Mutex<HashMap<u32, LeaseSpec>>,
    tenants: Mutex<HashMap<u32, TenantEntry>>,
    retired: Mutex<HashMap<(u32, u32), RetiredUsage>>,
    /// Latency histograms of departed tenants, folded in at retire so
    /// per-uid quantiles survive disconnect (mirrors `retired`).
    retired_hists: Mutex<HashMap<u32, [HistSnapshot; OP_CLASSES]>>,
    /// Event-executor health counters, written by the executor threads.
    exec: Arc<ExecGauges>,
    admission: Option<Arc<Admission>>,
    /// Leases revoked by operator request.
    pub revoked_total: AtomicU64,
    /// Leases revoked by TTL expiry.
    pub expired_total: AtomicU64,
}

impl ControlPlane {
    /// A control plane for node `node` admitting unknown uids under
    /// `default_lease`, optionally reporting an [`Admission`] gate's
    /// reject counter in its metrics.
    pub fn new(
        node: impl Into<String>,
        default_lease: LeaseSpec,
        admission: Option<Arc<Admission>>,
    ) -> Self {
        ControlPlane {
            node: node.into(),
            default_lease,
            overrides: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            retired: Mutex::new(HashMap::new()),
            retired_hists: Mutex::new(HashMap::new()),
            exec: Arc::new(ExecGauges::default()),
            admission,
            revoked_total: AtomicU64::new(0),
            expired_total: AtomicU64::new(0),
        }
    }

    /// This node's identity, echoed in every admin response.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The lease terms a connect from `uid` is admitted under: the uid's
    /// override if one was set (`guardianctl lease set`), else the node
    /// default. Live tenancies keep the terms they were granted.
    pub fn lease_for(&self, uid: u32) -> LeaseSpec {
        self.overrides
            .lock()
            .get(&uid)
            .copied()
            .unwrap_or(self.default_lease)
    }

    /// Set (or replace) the lease terms for future connects from `uid`.
    pub fn set_override(&self, uid: u32, lease: LeaseSpec) {
        self.overrides.lock().insert(uid, lease);
    }

    /// Record a granted tenancy. Called by the control thread right
    /// after the partition is carved.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &self,
        client: u32,
        uid: u32,
        device: u32,
        partition_size: u64,
        lease: LeaseSpec,
        counters: Arc<TenantCounters>,
        telemetry: Option<Arc<TenantTelemetry>>,
    ) {
        self.tenants.lock().insert(
            client,
            TenantEntry {
                uid,
                device,
                partition_size,
                lease,
                granted_at: Instant::now(),
                counters,
                telemetry,
            },
        );
    }

    /// The uid a live client connected as, if it is still admitted.
    pub fn uid_of(&self, client: u32) -> Option<u32> {
        self.tenants.lock().get(&client).map(|t| t.uid)
    }

    /// Move a tenancy's accounting to a new device after migration.
    pub fn rebind(&self, client: u32, device: u32) {
        if let Some(t) = self.tenants.lock().get_mut(&client) {
            t.device = device;
        }
    }

    /// Apply a lowered qos ceiling to every live tenancy of `uid`: a
    /// lease revoked down to `besteffort` demotes its latency tenants
    /// in place. Raising the ceiling never promotes live tenants (they
    /// keep what they were granted; a reconnect can request more).
    /// Returns the demoted client ids so the control thread can
    /// re-class the data plane too.
    pub fn reclass(&self, uid: u32, ceiling: QosClass) -> Vec<u32> {
        let mut demoted = Vec::new();
        if ceiling != QosClass::BestEffort {
            return demoted;
        }
        for (&client, t) in self.tenants.lock().iter_mut() {
            if t.uid == uid && t.lease.qos == QosClass::Latency {
                t.lease.qos = QosClass::BestEffort;
                demoted.push(client);
            }
        }
        demoted
    }

    /// The granted class of a live client, if still admitted.
    pub fn qos_of(&self, client: u32) -> Option<QosClass> {
        self.tenants.lock().get(&client).map(|t| t.lease.qos)
    }

    /// End a tenancy (disconnect, crash, revocation, or expiry): fold
    /// its counters and occupancy into the retired per-uid ledger.
    /// Idempotent — unknown clients are a no-op.
    pub fn retire(&self, client: u32) {
        let Some(t) = self.tenants.lock().remove(&client) else {
            return;
        };
        let mut retired = self.retired.lock();
        let r = retired.entry((t.uid, t.device)).or_default();
        r.launches += t.counters.launches.load(Relaxed);
        r.transfers += t.counters.transfers.load(Relaxed);
        r.transfer_bytes += t.counters.transfer_bytes.load(Relaxed);
        r.frames += t.counters.frames.load(Relaxed);
        r.occupancy_ms += t.granted_at.elapsed().as_millis() as u64;
        if let Some(tel) = &t.telemetry {
            let snap = tel.snapshot();
            let mut hists = self.retired_hists.lock();
            let agg = hists
                .entry(t.uid)
                .or_insert_with(|| [HistSnapshot::default(); OP_CLASSES]);
            for (a, s) in agg.iter_mut().zip(snap.iter()) {
                a.merge(s);
            }
        }
    }

    /// The executor gauges this plane exposes in `/metrics`; the
    /// manager hands clones to its executor threads.
    pub fn exec_gauges(&self) -> Arc<ExecGauges> {
        self.exec.clone()
    }

    /// Per-uid latency histograms, live sessions merged with the
    /// retired ledger, sorted by uid.
    pub fn latency_by_uid(&self) -> Vec<(u32, [HistSnapshot; OP_CLASSES])> {
        let mut agg: HashMap<u32, [HistSnapshot; OP_CLASSES]> = HashMap::new();
        for t in self.tenants.lock().values() {
            let Some(tel) = &t.telemetry else { continue };
            let snap = tel.snapshot();
            let e = agg
                .entry(t.uid)
                .or_insert_with(|| [HistSnapshot::default(); OP_CLASSES]);
            for (a, s) in e.iter_mut().zip(snap.iter()) {
                a.merge(s);
            }
        }
        for (&uid, hists) in self.retired_hists.lock().iter() {
            let e = agg
                .entry(uid)
                .or_insert_with(|| [HistSnapshot::default(); OP_CLASSES]);
            for (a, s) in e.iter_mut().zip(hists.iter()) {
                a.merge(s);
            }
        }
        let mut rows: Vec<_> = agg.into_iter().collect();
        rows.sort_by_key(|(uid, _)| *uid);
        rows
    }

    /// Flight-recorder snapshots across live sessions, optionally
    /// filtered to one uid, ordered by decode timestamp so interleaved
    /// tenants read chronologically.
    pub fn trace_snapshot(&self, uid: Option<u32>) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for t in self.tenants.lock().values() {
            if uid.is_some_and(|u| u != t.uid) {
                continue;
            }
            if let Some(tel) = &t.telemetry {
                tel.recorder.snapshot(&mut out);
            }
        }
        out.sort_by_key(|e| e.t_decode_ns);
        out
    }

    /// Client ids whose lease TTL has elapsed — the control thread's
    /// sweep revokes each of these.
    pub fn expired(&self) -> Vec<u32> {
        self.tenants
            .lock()
            .iter()
            .filter(|(_, t)| t.lease.ttl.is_some_and(|ttl| t.granted_at.elapsed() >= ttl))
            .map(|(&c, _)| c)
            .collect()
    }

    /// The live-tenant table, one row per tenancy, sorted by client id.
    pub fn tenants_table(&self) -> Vec<TenantInfo> {
        let mut rows: Vec<TenantInfo> = self
            .tenants
            .lock()
            .iter()
            .map(|(&client, t)| TenantInfo {
                client,
                uid: t.uid,
                device: t.device,
                partition_size: t.partition_size,
                lease_mem: t.lease.mem_bytes,
                lease_ttl_ms: t.lease.ttl_ms(),
                age_ms: t.granted_at.elapsed().as_millis() as u64,
                bytes_held: t.counters.bytes_held.load(Relaxed),
                launches: t.counters.launches.load(Relaxed),
                transfers: t.counters.transfers.load(Relaxed),
                transfer_bytes: t.counters.transfer_bytes.load(Relaxed),
                qos: t.lease.qos.to_wire(),
                inflight: t.counters.inflight.load(Relaxed),
            })
            .collect();
        rows.sort_by_key(|r| r.client);
        rows
    }

    /// Per-`(uid, device)` usage — live tenants plus the retired ledger
    /// — optionally filtered to one uid, sorted by (uid, device).
    pub fn quota_table(&self, uid: Option<u32>) -> Vec<UsageInfo> {
        let mut agg: HashMap<(u32, u32), UsageInfo> = HashMap::new();
        for t in self.tenants.lock().values() {
            let e = agg.entry((t.uid, t.device)).or_insert_with(|| UsageInfo {
                uid: t.uid,
                device: t.device,
                live: 0,
                bytes_held: 0,
                launches: 0,
                transfers: 0,
                transfer_bytes: 0,
                occupancy_ms: 0,
            });
            e.live += 1;
            e.bytes_held += t.counters.bytes_held.load(Relaxed);
            e.launches += t.counters.launches.load(Relaxed);
            e.transfers += t.counters.transfers.load(Relaxed);
            e.transfer_bytes += t.counters.transfer_bytes.load(Relaxed);
            e.occupancy_ms += t.granted_at.elapsed().as_millis() as u64;
        }
        for (&(u, d), r) in self.retired.lock().iter() {
            let e = agg.entry((u, d)).or_insert_with(|| UsageInfo {
                uid: u,
                device: d,
                live: 0,
                bytes_held: 0,
                launches: 0,
                transfers: 0,
                transfer_bytes: 0,
                occupancy_ms: 0,
            });
            e.launches += r.launches;
            e.transfers += r.transfers;
            e.transfer_bytes += r.transfer_bytes;
            e.occupancy_ms += r.occupancy_ms;
        }
        let mut rows: Vec<UsageInfo> = agg
            .into_values()
            .filter(|r| uid.is_none_or(|u| r.uid == u))
            .collect();
        rows.sort_by_key(|r| (r.uid, r.device));
        rows
    }

    /// Render the Prometheus text exposition: device gauges from
    /// `devices` (the manager's live [`DeviceInfo`] probe) plus the
    /// per-uid usage counters and control-plane totals.
    pub fn render_metrics(&self, devices: &[DeviceInfo]) -> String {
        use fmt::Write;
        let mut out = String::with_capacity(1024);
        let node = &self.node;
        let gauge = |o: &mut String, name: &str, help: &str| {
            let _ = writeln!(o, "# HELP {name} {help}\n# TYPE {name} gauge");
        };
        let counter = |o: &mut String, name: &str, help: &str| {
            let _ = writeln!(o, "# HELP {name} {help}\n# TYPE {name} counter");
        };
        gauge(
            &mut out,
            "guardian_device_pool_bytes",
            "Partition-pool capacity per device.",
        );
        for d in devices {
            let _ = writeln!(
                out,
                "guardian_device_pool_bytes{{node=\"{node}\",device=\"{}\"}} {}",
                d.index, d.pool_bytes
            );
        }
        gauge(
            &mut out,
            "guardian_device_used_bytes",
            "Pool bytes held by partitions per device.",
        );
        for d in devices {
            let _ = writeln!(
                out,
                "guardian_device_used_bytes{{node=\"{node}\",device=\"{}\"}} {}",
                d.index, d.used_bytes
            );
        }
        gauge(
            &mut out,
            "guardian_device_tenants",
            "Tenants bound per device.",
        );
        for d in devices {
            let _ = writeln!(
                out,
                "guardian_device_tenants{{node=\"{node}\",device=\"{}\"}} {}",
                d.index, d.tenants
            );
        }
        let usage = self.quota_table(None);
        gauge(
            &mut out,
            "guardian_uid_bytes_held",
            "Heap bytes held by live tenants per uid and device.",
        );
        for u in &usage {
            let _ = writeln!(
                out,
                "guardian_uid_bytes_held{{node=\"{node}\",uid=\"{}\",device=\"{}\"}} {}",
                u.uid, u.device, u.bytes_held
            );
        }
        counter(
            &mut out,
            "guardian_uid_launches_total",
            "Kernel launches per uid and device, live + retired.",
        );
        for u in &usage {
            let _ = writeln!(
                out,
                "guardian_uid_launches_total{{node=\"{node}\",uid=\"{}\",device=\"{}\"}} {}",
                u.uid, u.device, u.launches
            );
        }
        counter(
            &mut out,
            "guardian_uid_transfer_bytes_total",
            "Bytes transferred per uid and device, live + retired.",
        );
        for u in &usage {
            let _ = writeln!(
                out,
                "guardian_uid_transfer_bytes_total{{node=\"{node}\",uid=\"{}\",device=\"{}\"}} {}",
                u.uid, u.device, u.transfer_bytes
            );
        }
        counter(
            &mut out,
            "guardian_uid_occupancy_ms_total",
            "Milliseconds of tenancy occupancy per uid and device.",
        );
        for u in &usage {
            let _ = writeln!(
                out,
                "guardian_uid_occupancy_ms_total{{node=\"{node}\",uid=\"{}\",device=\"{}\"}} {}",
                u.uid, u.device, u.occupancy_ms
            );
        }
        counter(
            &mut out,
            "guardian_leases_revoked_total",
            "Leases ended by operator revocation.",
        );
        let _ = writeln!(
            out,
            "guardian_leases_revoked_total{{node=\"{node}\"}} {}",
            self.revoked_total.load(Relaxed)
        );
        counter(
            &mut out,
            "guardian_leases_expired_total",
            "Leases ended by TTL expiry.",
        );
        let _ = writeln!(
            out,
            "guardian_leases_expired_total{{node=\"{node}\"}} {}",
            self.expired_total.load(Relaxed)
        );
        if let Some(adm) = &self.admission {
            counter(
                &mut out,
                "guardian_admission_rejected_total",
                "Connections dropped by the per-uid admission rate limit.",
            );
            let _ = writeln!(
                out,
                "guardian_admission_rejected_total{{node=\"{node}\"}} {}",
                adm.rejected_total()
            );
        }
        // Telemetry plane: node-wide latency histograms per op class
        // (live + retired tenants merged), per-uid quantile gauges, and
        // the event-executor health counters.
        let by_uid = self.latency_by_uid();
        let _ = writeln!(
            out,
            "# HELP guardian_op_latency_seconds Dispatch-path latency per op class, all tenants.\n\
             # TYPE guardian_op_latency_seconds histogram"
        );
        for op in OpClass::ALL {
            let mut agg = HistSnapshot::default();
            for (_, hists) in &by_uid {
                agg.merge(&hists[op as usize]);
            }
            let top = (0..crate::telemetry::HIST_BUCKETS)
                .rev()
                .find(|&i| agg.buckets[i] > 0)
                .unwrap_or(0);
            let mut cum = 0u64;
            for (i, b) in agg.buckets.iter().enumerate().take(top + 1) {
                cum += b;
                let le = crate::telemetry::bucket_upper_ns(i) as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "guardian_op_latency_seconds_bucket{{node=\"{node}\",op=\"{}\",le=\"{le}\"}} {cum}",
                    op.name()
                );
            }
            let _ = writeln!(
                out,
                "guardian_op_latency_seconds_bucket{{node=\"{node}\",op=\"{}\",le=\"+Inf\"}} {}",
                op.name(),
                agg.count()
            );
            let _ = writeln!(
                out,
                "guardian_op_latency_seconds_sum{{node=\"{node}\",op=\"{}\"}} {}",
                op.name(),
                agg.sum_ns as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "guardian_op_latency_seconds_count{{node=\"{node}\",op=\"{}\"}} {}",
                op.name(),
                agg.count()
            );
        }
        gauge(
            &mut out,
            "guardian_uid_latency_seconds",
            "Estimated latency quantiles per uid and op class, live + retired.",
        );
        for (uid, hists) in &by_uid {
            for op in OpClass::ALL {
                let h = &hists[op as usize];
                if h.count() == 0 {
                    continue;
                }
                for q in [0.5, 0.95, 0.99] {
                    let _ = writeln!(
                        out,
                        "guardian_uid_latency_seconds{{node=\"{node}\",uid=\"{uid}\",op=\"{}\",quantile=\"{q}\"}} {}",
                        op.name(),
                        h.quantile(q) as f64 / 1e9
                    );
                }
            }
        }
        gauge(
            &mut out,
            "guardian_exec_queue_depth",
            "Frames waiting when the executor last drained a session.",
        );
        let _ = writeln!(
            out,
            "guardian_exec_queue_depth{{node=\"{node}\"}} {}",
            self.exec.queue_depth.load(Relaxed)
        );
        counter(
            &mut out,
            "guardian_exec_drain_batches_total",
            "Executor drain batches run.",
        );
        let _ = writeln!(
            out,
            "guardian_exec_drain_batches_total{{node=\"{node}\"}} {}",
            self.exec.drain_batches.load(Relaxed)
        );
        counter(
            &mut out,
            "guardian_exec_drained_frames_total",
            "Frames drained across all executor batches.",
        );
        let _ = writeln!(
            out,
            "guardian_exec_drained_frames_total{{node=\"{node}\"}} {}",
            self.exec.drained_frames.load(Relaxed)
        );
        gauge(
            &mut out,
            "guardian_exec_drain_batch_size",
            "Mean frames per executor drain batch.",
        );
        let batches = self.exec.drain_batches.load(Relaxed);
        let _ = writeln!(
            out,
            "guardian_exec_drain_batch_size{{node=\"{node}\"}} {}",
            if batches == 0 {
                0.0
            } else {
                self.exec.drained_frames.load(Relaxed) as f64 / batches as f64
            }
        );
        counter(
            &mut out,
            "guardian_exec_parks_total",
            "Executor threads parking in epoll_wait.",
        );
        let _ = writeln!(
            out,
            "guardian_exec_parks_total{{node=\"{node}\"}} {}",
            self.exec.parks.load(Relaxed)
        );
        counter(
            &mut out,
            "guardian_exec_wakes_total",
            "Doorbell wakeups delivered to executor threads.",
        );
        let _ = writeln!(
            out,
            "guardian_exec_wakes_total{{node=\"{node}\"}} {}",
            self.exec.wakes.load(Relaxed)
        );
        counter(
            &mut out,
            "guardian_exec_rearms_total",
            "Session doorbell re-arms after a drained batch.",
        );
        let _ = writeln!(
            out,
            "guardian_exec_rearms_total{{node=\"{node}\"}} {}",
            self.exec.rearms.load(Relaxed)
        );
        // QoS plane: per-class tenancy/inflight gauges, the executor's
        // gated-round counter, and per-class latency histograms (live
        // tenants only — the retired ledger is keyed by uid, not class).
        let classes = [QosClass::Latency, QosClass::BestEffort];
        let mut class_tenants = [0u64; 2];
        let mut class_inflight = [0u64; 2];
        let mut class_hists = [[HistSnapshot::default(); OP_CLASSES]; 2];
        for t in self.tenants.lock().values() {
            let c = (t.lease.qos == QosClass::BestEffort) as usize;
            class_tenants[c] += 1;
            class_inflight[c] += t.counters.inflight.load(Relaxed);
            if let Some(tel) = &t.telemetry {
                for (a, s) in class_hists[c].iter_mut().zip(tel.snapshot().iter()) {
                    a.merge(s);
                }
            }
        }
        gauge(
            &mut out,
            "guardian_qos_tenants",
            "Live tenants per scheduling class.",
        );
        for (i, class) in classes.iter().enumerate() {
            let _ = writeln!(
                out,
                "guardian_qos_tenants{{node=\"{node}\",class=\"{class}\"}} {}",
                class_tenants[i]
            );
        }
        gauge(
            &mut out,
            "guardian_qos_inflight_launches",
            "Launches admitted but not yet completed per scheduling class.",
        );
        for (i, class) in classes.iter().enumerate() {
            let _ = writeln!(
                out,
                "guardian_qos_inflight_launches{{node=\"{node}\",class=\"{class}\"}} {}",
                class_inflight[i]
            );
        }
        counter(
            &mut out,
            "guardian_qos_gated_rounds_total",
            "Best-effort work rate-gated: drain rounds capped behind pending latency frames, plus launches throttled at the inflight budget.",
        );
        let _ = writeln!(
            out,
            "guardian_qos_gated_rounds_total{{node=\"{node}\"}} {}",
            self.exec.qos_gated_rounds.load(Relaxed)
        );
        gauge(
            &mut out,
            "guardian_qos_latency_sessions_pending",
            "Latency-class sessions with undrained frames right now.",
        );
        let _ = writeln!(
            out,
            "guardian_qos_latency_sessions_pending{{node=\"{node}\"}} {}",
            self.exec.qos_latency_pending.load(Relaxed)
        );
        gauge(
            &mut out,
            "guardian_qos_latency_sessions",
            "Latency-class sessions connected; while any exist, best-effort drain rounds are paced at the gated cap.",
        );
        let _ = writeln!(
            out,
            "guardian_qos_latency_sessions{{node=\"{node}\"}} {}",
            self.exec.qos_latency_sessions.load(Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP guardian_qos_latency_seconds Dispatch-path latency per scheduling class and op, live tenants.\n\
             # TYPE guardian_qos_latency_seconds histogram"
        );
        for (i, class) in classes.iter().enumerate() {
            for op in OpClass::ALL {
                let h = &class_hists[i][op as usize];
                let top = (0..crate::telemetry::HIST_BUCKETS)
                    .rev()
                    .find(|&j| h.buckets[j] > 0)
                    .unwrap_or(0);
                let mut cum = 0u64;
                for (j, b) in h.buckets.iter().enumerate().take(top + 1) {
                    cum += b;
                    let le = crate::telemetry::bucket_upper_ns(j) as f64 / 1e9;
                    let _ = writeln!(
                        out,
                        "guardian_qos_latency_seconds_bucket{{node=\"{node}\",class=\"{class}\",op=\"{}\",le=\"{le}\"}} {cum}",
                        op.name()
                    );
                }
                let _ = writeln!(
                    out,
                    "guardian_qos_latency_seconds_bucket{{node=\"{node}\",class=\"{class}\",op=\"{}\",le=\"+Inf\"}} {}",
                    op.name(),
                    h.count()
                );
                let _ = writeln!(
                    out,
                    "guardian_qos_latency_seconds_sum{{node=\"{node}\",class=\"{class}\",op=\"{}\"}} {}",
                    op.name(),
                    h.sum_ns as f64 / 1e9
                );
                let _ = writeln!(
                    out,
                    "guardian_qos_latency_seconds_count{{node=\"{node}\",class=\"{class}\",op=\"{}\"}} {}",
                    op.name(),
                    h.count()
                );
            }
        }
        out
    }
}

/// A per-uid token bucket on connection admission, checked in the
/// socket accept loops *before* any protocol byte is read. Each uid
/// starts with `burst` tokens and refills at `rate_per_sec`; a connect
/// with no token available is dropped (the peer observes EOF, exactly
/// like a [`crate::transport::UidPolicy`] rejection), so one uid's
/// reconnect storm cannot starve the accept loop for everyone else.
#[derive(Debug)]
pub struct Admission {
    rate_per_sec: f64,
    burst: f64,
    buckets: Mutex<HashMap<u32, (f64, Instant)>>,
    rejected: AtomicU64,
}

impl Admission {
    /// A bucket admitting `burst` immediate connects per uid, refilling
    /// at `rate_per_sec`.
    pub fn new(rate_per_sec: f64, burst: u32) -> Self {
        Admission {
            rate_per_sec: rate_per_sec.max(0.0),
            burst: f64::from(burst.max(1)),
            buckets: Mutex::new(HashMap::new()),
            rejected: AtomicU64::new(0),
        }
    }

    /// Whether a connect from `uid` is admitted now; a `false` is
    /// counted in [`Admission::rejected_total`].
    pub fn admit(&self, uid: u32) -> bool {
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let (tokens, last) = buckets.entry(uid).or_insert((self.burst, now));
        *tokens =
            (*tokens + now.duration_since(*last).as_secs_f64() * self.rate_per_sec).min(self.burst);
        *last = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            drop(buckets);
            self.rejected.fetch_add(1, Relaxed);
            false
        }
    }

    /// Connections dropped so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Relaxed)
    }
}

/// Handle to a running admin endpoint; dropping it (or calling
/// [`AdminServer::shutdown`]) unblocks the acceptor and joins it.
pub struct AdminServer {
    unblock: Option<crate::transport::UnblockFn>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    // Held so an in-process listener stays dialable; dropping it is what
    // unblocks a channel transport's accept (socket listeners use
    // `unblock` instead).
    dialer: Option<Box<dyn crate::transport::Dialer>>,
}

impl AdminServer {
    /// Unblock the acceptor and join it. In-flight per-connection
    /// handlers finish with their peers.
    pub fn shutdown(&mut self) {
        if let Some(u) = self.unblock.take() {
            u();
        }
        drop(self.dialer.take());
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve the admin message family on `transport`: every accepted
/// connection gets a handler thread looping recv → decode
/// [`AdminRequest`] → `handler` → send [`AdminResponse`]. Undecodable
/// frames end that connection (the admin socket is same-uid by policy;
/// a garbled peer is a bug, not a negotiation).
pub fn serve_admin<F>(transport: BoundTransport, handler: F) -> AdminServer
where
    F: Fn(AdminRequest) -> AdminResponse + Send + Sync + 'static,
{
    let BoundTransport {
        listener,
        dialer,
        unblock,
    } = transport;
    let handler = Arc::new(handler);
    let accept_thread = std::thread::Builder::new()
        .name("grdAdmin".into())
        .spawn(move || {
            while let Ok(conn) = listener.accept() {
                let handler = handler.clone();
                let _ = std::thread::Builder::new()
                    .name("grdAdminConn".into())
                    .spawn(move || {
                        while let Ok(frame) = conn.recv() {
                            let Ok(req) = AdminRequest::decode(&frame) else {
                                break;
                            };
                            if conn.send(handler(req).encode()).is_err() {
                                break;
                            }
                        }
                    });
            }
        })
        .expect("spawn grdAdmin thread");
    AdminServer {
        unblock,
        accept_thread: Some(accept_thread),
        dialer: Some(dialer),
    }
}

/// Handle to a running HTTP metrics endpoint; dropping it stops the
/// acceptor (via a self-connect wake).
pub struct HttpMetricsServer {
    stop: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpMetricsServer {
    /// The bound address (useful when port 0 was requested).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the acceptor.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Relaxed);
        // Wake the blocked accept with a throwaway connection.
        let _ = std::net::TcpStream::connect(self.addr);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpMetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve a minimal plain-HTTP `GET /metrics` endpoint at `addr` (e.g.
/// `127.0.0.1:9115`), rendering `metrics()` per scrape. Anything but
/// `GET /metrics` gets a 404. This is the "optional HTTP" leg of the
/// admin plane — the uds admin socket remains the authoritative API.
///
/// # Errors
///
/// [`std::io::Error`] when the address cannot be bound.
pub fn serve_http_metrics<F>(addr: &str, metrics: F) -> std::io::Result<HttpMetricsServer>
where
    F: Fn() -> String + Send + Sync + 'static,
{
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new()
        .name("grdMetricsHttp".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Relaxed) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let mut line = String::new();
                if BufReader::new(&stream).read_line(&mut line).is_err() {
                    continue;
                }
                let ok = line.starts_with("GET /metrics ");
                let (status, body) = if ok {
                    ("200 OK", metrics())
                } else {
                    ("404 Not Found", String::from("not found\n"))
                };
                let _ = write!(
                    stream,
                    "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
            }
        })
        .expect("spawn grdMetricsHttp thread");
    Ok(HttpMetricsServer {
        stop,
        addr,
        thread: Some(thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_parse_round_trips_terms() {
        let l = LeaseSpec::parse("mem=16M,streams=4,ttl=30s").unwrap();
        assert_eq!(l.mem_bytes, 16 << 20);
        assert_eq!(l.streams, 4);
        assert_eq!(l.ttl, Some(Duration::from_secs(30)));
        assert_eq!(l.ttl_ms(), 30_000);

        let l = LeaseSpec::parse("ttl=500ms").unwrap();
        assert_eq!(l.ttl, Some(Duration::from_millis(500)));
        assert_eq!(l.mem_bytes, u64::MAX, "omitted terms stay unlimited");

        let l = LeaseSpec::parse("mem=1G,ttl=0").unwrap();
        assert_eq!(l.mem_bytes, 1 << 30);
        assert_eq!(l.ttl, None, "ttl=0 means no expiry");

        let l = LeaseSpec::parse("qos=besteffort,mem=4M").unwrap();
        assert_eq!(l.qos, QosClass::BestEffort);
        let l = LeaseSpec::parse("qos=latency").unwrap();
        assert_eq!(l.qos, QosClass::Latency);

        assert_eq!(LeaseSpec::parse("").unwrap(), LeaseSpec::unlimited());

        let wire = LeaseSpec::from_wire(l.mem_bytes, l.streams, l.ttl_ms(), l.qos.to_wire());
        assert_eq!(wire, l);
    }

    /// Every malformed lease form is rejected with a message naming
    /// the offending key or value.
    #[test]
    fn lease_parse_errors_name_the_offender() {
        // Not key=value at all.
        let e = LeaseSpec::parse("mem").unwrap_err();
        assert!(e.contains("`mem`"), "{e}");
        // Unknown key.
        let e = LeaseSpec::parse("cpus=4").unwrap_err();
        assert!(e.contains("`cpus`"), "{e}");
        // Bad size value / unit.
        let e = LeaseSpec::parse("mem=soon").unwrap_err();
        assert!(e.contains("`soon`"), "{e}");
        let e = LeaseSpec::parse("mem=12T").unwrap_err();
        assert!(e.contains("`12T`"), "{e}");
        // Bad stream count.
        let e = LeaseSpec::parse("streams=many").unwrap_err();
        assert!(e.contains("`many`") && e.contains("streams"), "{e}");
        // Bad ttl unit.
        let e = LeaseSpec::parse("ttl=5h").unwrap_err();
        assert!(e.contains("`5h`"), "{e}");
        // Bad qos class.
        let e = LeaseSpec::parse("qos=turbo").unwrap_err();
        assert!(e.contains("`turbo`"), "{e}");
        // Empty values name the key they belong to.
        for key in ["mem", "streams", "ttl", "qos"] {
            let e = LeaseSpec::parse(&format!("{key}=")).unwrap_err();
            assert!(e.contains(&format!("`{key}`")), "{key}: {e}");
            assert!(e.contains("empty"), "{key}: {e}");
        }
    }

    #[test]
    fn qos_class_wire_and_display_round_trip() {
        for class in [QosClass::Latency, QosClass::BestEffort] {
            assert_eq!(QosClass::from_wire(class.to_wire()), class);
            assert_eq!(QosClass::parse(class.as_str()).unwrap(), class);
            assert_eq!(format!("{class}"), class.as_str());
        }
        // Unknown wire bytes degrade to best-effort, never to priority.
        assert_eq!(QosClass::from_wire(7), QosClass::BestEffort);
        // A demoting reclass hits only latency tenants of that uid.
        let plane = ControlPlane::new("n0", LeaseSpec::unlimited(), None);
        let mut lat = LeaseSpec::unlimited();
        lat.qos = QosClass::Latency;
        let mut be = LeaseSpec::unlimited();
        be.qos = QosClass::BestEffort;
        plane.admit(1, 42, 0, 0, lat, Arc::new(TenantCounters::default()), None);
        plane.admit(2, 42, 0, 0, be, Arc::new(TenantCounters::default()), None);
        plane.admit(3, 43, 0, 0, lat, Arc::new(TenantCounters::default()), None);
        assert!(plane.reclass(42, QosClass::Latency).is_empty());
        assert_eq!(plane.reclass(42, QosClass::BestEffort), vec![1]);
        assert_eq!(plane.qos_of(1), Some(QosClass::BestEffort));
        assert_eq!(plane.qos_of(3), Some(QosClass::Latency));
    }

    #[test]
    fn admission_bucket_limits_per_uid() {
        let adm = Admission::new(0.0, 3);
        // uid 1 burns its burst; uid 2 is unaffected.
        assert!(adm.admit(1));
        assert!(adm.admit(1));
        assert!(adm.admit(1));
        assert!(!adm.admit(1));
        assert!(!adm.admit(1));
        assert!(adm.admit(2));
        assert_eq!(adm.rejected_total(), 2);
    }

    #[test]
    fn admission_bucket_refills_over_time() {
        let adm = Admission::new(1000.0, 1);
        assert!(adm.admit(7));
        // At 1000 tokens/s a few milliseconds refill the bucket.
        let deadline = Instant::now() + Duration::from_secs(2);
        while !adm.admit(7) {
            assert!(Instant::now() < deadline, "bucket never refilled");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn control_plane_tracks_lease_lifecycle() {
        let plane = ControlPlane::new("n0", LeaseSpec::unlimited(), None);
        assert_eq!(plane.lease_for(42), LeaseSpec::unlimited());
        let tight = LeaseSpec::parse("mem=2M,ttl=10ms").unwrap();
        plane.set_override(42, tight);
        assert_eq!(plane.lease_for(42), tight);
        assert_eq!(plane.lease_for(43), LeaseSpec::unlimited());

        let counters = Arc::new(TenantCounters::default());
        counters.launches.store(5, Relaxed);
        counters.bytes_held.store(4096, Relaxed);
        let telemetry = TenantTelemetry::new(16);
        telemetry.record(OpClass::LaunchEnqueue, 1_000);
        plane.admit(1, 42, 0, 2 << 20, tight, counters.clone(), Some(telemetry));
        let rows = plane.tenants_table();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].uid, 42);
        assert_eq!(rows[0].lease_mem, 2 << 20);
        assert_eq!(rows[0].launches, 5);

        // The 10ms TTL elapses.
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(plane.expired(), vec![1]);

        // Retiring folds usage into the quota ledger; tables empty out.
        plane.retire(1);
        plane.retire(1); // idempotent
        assert!(plane.tenants_table().is_empty());
        assert!(plane.expired().is_empty());
        let q = plane.quota_table(Some(42));
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].live, 0);
        assert_eq!(q[0].launches, 5);
        assert!(q[0].occupancy_ms >= 10);
        assert_eq!(q[0].bytes_held, 0, "held bytes are not lifetime usage");
        assert!(plane.quota_table(Some(9)).is_empty());
        // The retired ledger kept the latency histograms too.
        let lat = plane.latency_by_uid();
        assert_eq!(lat.len(), 1);
        assert_eq!(lat[0].0, 42);
        assert_eq!(lat[0].1[OpClass::LaunchEnqueue as usize].count(), 1);
    }

    #[test]
    fn metrics_exposition_is_prometheus_text() {
        let adm = Arc::new(Admission::new(0.0, 1));
        assert!(adm.admit(10));
        assert!(!adm.admit(10));
        let plane = ControlPlane::new("nodeA", LeaseSpec::unlimited(), Some(adm));
        let counters = Arc::new(TenantCounters::default());
        counters.launches.store(3, Relaxed);
        let telemetry = TenantTelemetry::new(16);
        for ns in [800, 1_200, 50_000] {
            telemetry.record(OpClass::LaunchEnqueue, ns);
        }
        telemetry.record(OpClass::Sync, 2_000_000);
        plane.admit(
            1,
            10,
            0,
            1 << 20,
            LeaseSpec::unlimited(),
            counters,
            Some(telemetry),
        );
        let devices = [DeviceInfo {
            index: 0,
            name: "TestGPU".into(),
            clock_ghz: 1.0,
            pool_bytes: 32 << 20,
            used_bytes: 1 << 20,
            tenants: 1,
        }];
        let text = plane.render_metrics(&devices);
        assert!(text.contains("# TYPE guardian_device_pool_bytes gauge"));
        assert!(text.contains("guardian_device_pool_bytes{node=\"nodeA\",device=\"0\"} 33554432"));
        assert!(
            text.contains("guardian_uid_launches_total{node=\"nodeA\",uid=\"10\",device=\"0\"} 3")
        );
        assert!(text.contains("guardian_admission_rejected_total{node=\"nodeA\"} 1"));
        // Telemetry families render: a histogram with a +Inf bucket and
        // per-uid quantile gauges.
        assert!(text.contains("# TYPE guardian_op_latency_seconds histogram"));
        assert!(text
            .contains("guardian_op_latency_seconds_bucket{node=\"nodeA\",op=\"launch_enqueue\",le=\"+Inf\"} 3"));
        assert!(text.contains("guardian_op_latency_seconds_count{node=\"nodeA\",op=\"sync\"} 1"));
        assert!(text.contains(
            "guardian_uid_latency_seconds{node=\"nodeA\",uid=\"10\",op=\"launch_enqueue\",quantile=\"0.5\"}"
        ));
        assert!(text.contains("# TYPE guardian_exec_drained_frames_total counter"));
        // QoS families: per-class gauges and histograms are present and
        // labeled by class (the unlimited lease grants latency here).
        assert!(text.contains("# TYPE guardian_qos_tenants gauge"));
        assert!(text.contains("guardian_qos_tenants{node=\"nodeA\",class=\"latency\"} 1"));
        assert!(text.contains("guardian_qos_tenants{node=\"nodeA\",class=\"besteffort\"} 0"));
        assert!(text.contains("# TYPE guardian_qos_gated_rounds_total counter"));
        assert!(text.contains("# TYPE guardian_qos_latency_seconds histogram"));
        assert!(text.contains(
            "guardian_qos_latency_seconds_bucket{node=\"nodeA\",class=\"latency\",op=\"launch_enqueue\",le=\"+Inf\"} 3"
        ));
        // Histogram bucket counts are cumulative, hence monotonic.
        for op in OpClass::ALL {
            let prefix = format!(
                "guardian_op_latency_seconds_bucket{{node=\"nodeA\",op=\"{}\"",
                op.name()
            );
            let mut last = 0u64;
            for line in text.lines().filter(|l| l.starts_with(&prefix)) {
                let count: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(count >= last, "non-monotonic bucket: {line}");
                last = count;
            }
        }
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (metric, value) = line.rsplit_once(' ').expect("metric line");
            assert!(metric.contains("node=\"nodeA\""), "unlabeled: {line}");
            value.parse::<f64>().expect("numeric value");
        }
    }

    #[test]
    fn admin_server_answers_over_a_transport() {
        let plane = Arc::new(ControlPlane::new("n1", LeaseSpec::unlimited(), None));
        let transport = BoundTransport::channel();
        let dialer = transport.dialer.dial();
        let plane2 = plane.clone();
        let mut server = serve_admin(transport, move |req| match req {
            AdminRequest::Tenants => AdminResponse::Tenants {
                node: plane2.node().to_string(),
                tenants: plane2.tenants_table(),
            },
            _ => AdminResponse::Error {
                node: plane2.node().to_string(),
                msg: "unsupported".into(),
            },
        });
        let conn = dialer.unwrap();
        conn.send(AdminRequest::Tenants.encode()).unwrap();
        let resp = AdminResponse::decode(&conn.recv().unwrap()).unwrap();
        match resp {
            AdminResponse::Tenants { node, tenants } => {
                assert_eq!(node, "n1");
                assert!(tenants.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        // A tenant-family frame must not be interpreted: the connection
        // is dropped, not answered.
        conn.send(crate::proto::Request::Sync.encode()).unwrap();
        assert!(conn.recv().is_err());
        server.shutdown();
    }

    #[test]
    fn http_metrics_endpoint_serves_scrapes() {
        use std::io::{Read, Write};
        let server = serve_http_metrics("127.0.0.1:0", || String::from("guardian_up 1\n")).unwrap();
        let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 200 OK"));
        assert!(buf.ends_with("guardian_up 1\n"));

        let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
        write!(s, "GET /other HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 404"));
        drop(server);
    }
}
