//! Zero-allocation telemetry plane: per-tenant latency histograms, span
//! timestamps for the dispatch path, and a per-session flight recorder.
//!
//! Everything here is built once at connect time and then recorded into
//! from the dispatch hot path, so the recording operations obey the same
//! discipline as the hot path itself (see `alloc_audit`): no allocation,
//! no locks — only relaxed atomics. The readers (the admin plane's
//! `/metrics` exposition and `AdminRequest::Trace`) pay all the cost:
//! they snapshot atomics and may allocate freely.
//!
//! Timestamps are nanoseconds on the process-wide monotonic clock
//! [`gpu_sim::mono_ns`] — one clock for the manager's host-side spans and
//! the device engine's completion edges, so cross-layer durations are
//! meaningful.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Nanoseconds on the process-wide monotonic telemetry clock (re-exported
/// from `gpu-sim`, where the device engine stamps completion edges).
#[inline]
pub fn now_ns() -> u64 {
    gpu_sim::mono_ns()
}

// ---- log-bucketed histograms -----------------------------------------------

/// Number of buckets in a [`Histogram`]: one per power of two of
/// nanoseconds, which spans 1 ns to ~292 years in 64 buckets.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a nanosecond sample: bucket 0 holds exactly 0, bucket
/// `i >= 1` holds `[2^(i-1), 2^i)`, and the top bucket absorbs the tail.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in nanoseconds (`u64::MAX` for the
/// top bucket, which is open-ended).
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size log-bucketed latency histogram. Recording is one relaxed
/// `fetch_add` per sample (plus one for the running sum): no allocation,
/// no locks, safe to share across threads behind an `Arc`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
    }

    /// Record `n` samples of the same duration (used when a batch
    /// completion edge closes several launches at once).
    #[inline]
    pub fn record_n(&self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(ns)].fetch_add(n, Relaxed);
        self.sum_ns.fetch_add(ns.saturating_mul(n), Relaxed);
    }

    /// A point-in-time copy of the counts. Concurrent recorders may land
    /// between bucket reads; each bucket is individually exact.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut s = HistSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Relaxed);
        }
        s.sum_ns = self.sum_ns.load(Relaxed);
        s
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s counts.
#[derive(Debug, Clone, Copy)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded samples in nanoseconds.
    pub sum_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum_ns: 0,
        }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fold another snapshot's counts into this one. Bucket-wise addition,
    /// so merging is associative and commutative.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) in nanoseconds: the upper
    /// bound of the bucket holding the sample of that rank, i.e. the
    /// estimate errs by at most one power-of-two bucket width. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(HIST_BUCKETS - 1)
    }
}

// ---- op classes and per-tenant telemetry -----------------------------------

/// The latency classes Guardian distinguishes, one histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Launch admission: frame decode → device-queue enqueue done.
    LaunchEnqueue = 0,
    /// Launch enqueue → device-engine completion edge (closed at sync).
    LaunchComplete = 1,
    /// `Sync` round trip: decode → device drained.
    Sync = 2,
    /// Data-plane transfer or memset: decode → op complete.
    Memcpy = 3,
    /// `Connect` admission: decode → tenancy admitted.
    Connect = 4,
}

/// Number of [`OpClass`] variants.
pub const OP_CLASSES: usize = 5;

impl OpClass {
    /// Every class, for iteration.
    pub const ALL: [OpClass; OP_CLASSES] = [
        OpClass::LaunchEnqueue,
        OpClass::LaunchComplete,
        OpClass::Sync,
        OpClass::Memcpy,
        OpClass::Connect,
    ];

    /// Stable label used in metric and trace output.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::LaunchEnqueue => "launch_enqueue",
            OpClass::LaunchComplete => "launch_complete",
            OpClass::Sync => "sync",
            OpClass::Memcpy => "memcpy",
            OpClass::Connect => "connect",
        }
    }

    /// Inverse of `self as u8` (wire decoding); unknown bytes map to
    /// `None`.
    pub fn from_u8(v: u8) -> Option<OpClass> {
        OpClass::ALL.get(v as usize).copied()
    }
}

/// One tenant's telemetry: a histogram per op class plus the session's
/// flight recorder. Built at connect, shared by `Arc` between the session
/// (writer) and the control plane (reader).
#[derive(Debug)]
pub struct TenantTelemetry {
    hists: [Histogram; OP_CLASSES],
    /// The session's flight recorder.
    pub recorder: FlightRecorder,
}

impl TenantTelemetry {
    /// Build with a flight-recorder ring of `ring` events.
    pub fn new(ring: usize) -> Arc<TenantTelemetry> {
        Arc::new(TenantTelemetry {
            hists: Default::default(),
            recorder: FlightRecorder::new(ring),
        })
    }

    /// The histogram for one op class.
    #[inline]
    pub fn hist(&self, op: OpClass) -> &Histogram {
        &self.hists[op as usize]
    }

    /// Record one sample into the class's histogram.
    #[inline]
    pub fn record(&self, op: OpClass, ns: u64) {
        self.hist(op).record(ns);
    }

    /// Snapshot every class's histogram.
    pub fn snapshot(&self) -> [HistSnapshot; OP_CLASSES] {
        let mut out = [HistSnapshot::default(); OP_CLASSES];
        for (i, h) in self.hists.iter().enumerate() {
            out[i] = h.snapshot();
        }
        out
    }
}

// ---- flight recorder -------------------------------------------------------

/// Default flight-recorder capacity per session, in events.
pub const FLIGHT_RING: usize = 256;

/// One fixed-width trace event: which op, whose, and where in the
/// dispatch path its stage clock stamps landed. Stages a given op class
/// does not pass through stay 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Recorder-local sequence number (monotonic; wraps never in practice).
    pub seq: u64,
    /// [`OpClass`] as `u8`.
    pub op: u8,
    /// 0 = ok, 1 = the op (or its batch) carried an error.
    pub outcome: u8,
    /// Manager-assigned client id.
    pub client: u32,
    /// Unix uid of the tenant.
    pub uid: u32,
    /// Device stream the op ran on (0 for ops with no stream).
    pub stream: u32,
    /// Frame decode stamp ([`now_ns`]).
    pub t_decode_ns: u64,
    /// Session admission stamp (launch buffered / op accepted).
    pub t_admit_ns: u64,
    /// Batch-flush start stamp (deferred launches only).
    pub t_flush_ns: u64,
    /// Device-queue enqueue-complete stamp.
    pub t_enqueue_ns: u64,
    /// Device-engine completion edge (0 until a sync observes it).
    pub t_complete_ns: u64,
}

/// Per-slot word count when an event is packed into atomics: one word of
/// ids (`op`/`outcome`/`stream`), one of `client`/`uid`, the event seq,
/// and five stage stamps.
const SLOT_WORDS: usize = 8;

#[derive(Debug)]
struct Slot {
    /// Seqlock: odd while a writer is mid-update.
    lock: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            lock: AtomicU64::new(0),
            words: Default::default(),
        }
    }

    fn write(&self, ev: &TraceEvent) {
        use std::sync::atomic::Ordering::{Acquire, Release};
        let l = self.lock.load(Acquire);
        self.lock.store(l.wrapping_add(1), Release);
        let words = [
            ev.seq,
            ev.op as u64 | ((ev.outcome as u64) << 8) | ((ev.stream as u64) << 16),
            ev.client as u64 | ((ev.uid as u64) << 32),
            ev.t_decode_ns,
            ev.t_admit_ns,
            ev.t_flush_ns,
            ev.t_enqueue_ns,
            ev.t_complete_ns,
        ];
        for (w, v) in self.words.iter().zip(words) {
            w.store(v, Relaxed);
        }
        self.lock.store(l.wrapping_add(2), Release);
    }

    fn read(&self) -> Option<TraceEvent> {
        use std::sync::atomic::Ordering::Acquire;
        let before = self.lock.load(Acquire);
        if before == 0 {
            return None; // never written
        }
        if before & 1 == 1 {
            return None; // writer mid-update
        }
        let mut words = [0u64; SLOT_WORDS];
        for (v, w) in words.iter_mut().zip(self.words.iter()) {
            *v = w.load(Acquire);
        }
        if self.lock.load(Acquire) != before {
            return None; // torn read
        }
        Some(TraceEvent {
            seq: words[0],
            op: words[1] as u8,
            outcome: (words[1] >> 8) as u8,
            stream: (words[1] >> 16) as u32,
            client: words[2] as u32,
            uid: (words[2] >> 32) as u32,
            t_decode_ns: words[3],
            t_admit_ns: words[4],
            t_flush_ns: words[5],
            t_enqueue_ns: words[6],
            t_complete_ns: words[7],
        })
    }
}

/// A preallocated ring of fixed-width [`TraceEvent`]s that overwrites its
/// oldest entry. Writing is a handful of relaxed stores behind a per-slot
/// seqlock — no allocation, no blocking — and [`snapshot`] reads a
/// consistent copy without stopping writers (a slot being overwritten at
/// that instant is simply skipped).
///
/// [`snapshot`]: FlightRecorder::snapshot
#[derive(Debug)]
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRecorder {
    /// Preallocate a ring of `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (recorded − capacity have been
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Record one event, overwriting the oldest. The event's `seq` field
    /// is assigned here.
    #[inline]
    pub fn record(&self, mut ev: TraceEvent) {
        let seq = self.head.fetch_add(1, Relaxed);
        ev.seq = seq;
        self.slots[(seq % self.slots.len() as u64) as usize].write(&ev);
    }

    /// Append every readable event to `out`, oldest first. Slots being
    /// overwritten during the pass are skipped, not waited for.
    pub fn snapshot(&self, out: &mut Vec<TraceEvent>) {
        let start = out.len();
        for slot in self.slots.iter() {
            if let Some(ev) = slot.read() {
                out.push(ev);
            }
        }
        out[start..].sort_by_key(|e| e.seq);
    }
}

// ---- executor gauges -------------------------------------------------------

/// Event-executor health counters, shared between the executor threads
/// (writers, relaxed atomics) and the metrics exposition (reader).
#[derive(Debug, Default)]
pub struct ExecGauges {
    /// Frames seen by the most recent drain batch (a queue-depth proxy:
    /// how much work was waiting when the executor got to the session).
    pub queue_depth: AtomicU64,
    /// Drain batches executed.
    pub drain_batches: AtomicU64,
    /// Frames drained across all batches (mean batch size is
    /// `drained_frames / drain_batches`).
    pub drained_frames: AtomicU64,
    /// Times an executor thread went to sleep in `epoll_wait`.
    pub parks: AtomicU64,
    /// Doorbell events delivered (ring-buffer wakeups).
    pub wakes: AtomicU64,
    /// Level-to-edge re-arms of session doorbells.
    pub rearms: AtomicU64,
    /// Best-effort work rate-gated: drain rounds capped because a
    /// latency-class session had undrained frames, plus launch
    /// admissions throttled at the per-tenant inflight budget.
    pub qos_gated_rounds: AtomicU64,
    /// Latency-class sessions with undrained frames right now — the
    /// signal the executor consults before giving a best-effort
    /// session a full drain round.
    pub qos_latency_pending: AtomicU64,
    /// Latency-class sessions connected right now. While any exist the
    /// executor paces every best-effort drain round at the gated cap:
    /// a single-core worker only learns a latency frame arrived when
    /// it returns to `epoll_wait`, so it must return often enough —
    /// waiting for `qos_latency_pending` alone would let one storm
    /// clump monopolize the worker for its full drain.
    pub qos_latency_sessions: AtomicU64,
}

impl ExecGauges {
    /// Note one drain batch of `frames` frames.
    #[inline]
    pub fn note_drain(&self, frames: u64) {
        self.queue_depth.store(frames, Relaxed);
        self.drain_batches.fetch_add(1, Relaxed);
        self.drained_frames.fetch_add(frames, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            if i < HIST_BUCKETS - 1 {
                assert_eq!(bucket_of(bucket_upper_ns(i)), i);
            }
        }
    }

    #[test]
    fn histogram_records_and_estimates() {
        let h = Histogram::new();
        for ns in [0u64, 1, 100, 1000, 1000, 1000, 10_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.sum_ns, 13_101);
        // The median sample is 1000; the estimate lands in its bucket.
        assert_eq!(bucket_of(s.quantile(0.5)), bucket_of(1000));
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(bucket_of(s.quantile(1.0)), bucket_of(10_000));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().snapshot().quantile(0.99), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(1 << 20);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.buckets[bucket_of(5)], 2);
        assert_eq!(m.sum_ns, 10 + (1 << 20));
    }

    #[test]
    fn flight_recorder_overwrites_oldest() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(TraceEvent {
                t_decode_ns: i,
                ..TraceEvent::default()
            });
        }
        let mut out = Vec::new();
        r.snapshot(&mut out);
        assert_eq!(out.len(), 4);
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(out[0].t_decode_ns, 6);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn trace_event_round_trips_through_slot() {
        let slot = Slot::new();
        let ev = TraceEvent {
            seq: 42,
            op: OpClass::Sync as u8,
            outcome: 1,
            client: 7,
            uid: 1000,
            stream: 3,
            t_decode_ns: 1,
            t_admit_ns: 2,
            t_flush_ns: 3,
            t_enqueue_ns: 4,
            t_complete_ns: 5,
        };
        slot.write(&ev);
        assert_eq!(slot.read(), Some(ev));
    }

    #[test]
    fn snapshot_skips_unwritten_slots() {
        let r = FlightRecorder::new(8);
        r.record(TraceEvent {
            t_decode_ns: 7,
            ..TraceEvent::default()
        });
        r.record(TraceEvent {
            t_decode_ns: 9,
            ..TraceEvent::default()
        });
        let mut out = Vec::new();
        r.snapshot(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].t_decode_ns, 7);
        assert_eq!(out[1].t_decode_ns, 9);
    }

    #[test]
    fn snapshot_skips_torn_slots() {
        let slot = Slot::new();
        slot.write(&TraceEvent::default());
        // Simulate a writer parked mid-update: odd seqlock.
        slot.lock.store(1, std::sync::atomic::Ordering::Release);
        assert_eq!(slot.read(), None);
    }

    #[test]
    fn op_class_round_trips() {
        for op in OpClass::ALL {
            assert_eq!(OpClass::from_u8(op as u8), Some(op));
        }
        assert_eq!(OpClass::from_u8(200), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The quantile estimate lands in the same log bucket as the true
        /// sample quantile — the bound the struct docs promise (error at
        /// most one power-of-two bucket width, reported as the bucket's
        /// upper edge).
        #[test]
        fn quantile_stays_within_bucket_error(
            mut samples in proptest::collection::vec(0u64..1 << 40, 1..400),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            for q in qs {
                let rank = ((q * samples.len() as f64).ceil() as usize)
                    .clamp(1, samples.len());
                let truth = samples[rank - 1];
                let est = snap.quantile(q);
                prop_assert_eq!(
                    bucket_of(est), bucket_of(truth),
                    "q={} est={} truth={}", q, est, truth
                );
                prop_assert!(est >= truth, "upper edge below the sample");
            }
        }

        /// Merging snapshots is associative and commutative, and the
        /// merged whole equals a histogram that saw every sample: the
        /// per-tenant → node-wide fold order in `render_metrics` cannot
        /// change the exposed series.
        #[test]
        fn merge_is_associative_and_lossless(
            a in proptest::collection::vec(0u64..1 << 48, 0..120),
            b in proptest::collection::vec(0u64..1 << 48, 0..120),
            c in proptest::collection::vec(0u64..1 << 48, 0..120),
        ) {
            let hist = |xs: &[u64]| {
                let h = Histogram::new();
                for &x in xs {
                    h.record(x);
                }
                h.snapshot()
            };
            let (sa, sb, sc) = (hist(&a), hist(&b), hist(&c));
            // (a + b) + c
            let mut left = sa;
            left.merge(&sb);
            left.merge(&sc);
            // a + (b + c), folded in the other order
            let mut right = sc;
            right.merge(&sb);
            right.merge(&hist(&a));
            prop_assert_eq!(left.buckets, right.buckets);
            prop_assert_eq!(left.sum_ns, right.sum_ns);
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            let whole = hist(&all);
            prop_assert_eq!(left.buckets, whole.buckets);
            prop_assert_eq!(left.sum_ns, whole.sum_ns);
        }

        /// Concurrent recorders lose nothing: samples recorded from many
        /// threads into one histogram snapshot to exactly the bucket
        /// counts and sum a serial replay produces.
        #[test]
        fn concurrent_recording_is_lossless(
            per_thread in proptest::collection::vec(
                proptest::collection::vec(0u64..1 << 32, 1..64),
                2..5,
            ),
        ) {
            let h = std::sync::Arc::new(Histogram::new());
            std::thread::scope(|s| {
                for chunk in &per_thread {
                    let h = std::sync::Arc::clone(&h);
                    s.spawn(move || {
                        for &ns in chunk {
                            h.record(ns);
                        }
                    });
                }
            });
            let serial = Histogram::new();
            for chunk in &per_thread {
                for &ns in chunk {
                    serial.record(ns);
                }
            }
            let (par, ser) = (h.snapshot(), serial.snapshot());
            prop_assert_eq!(par.buckets, ser.buckets);
            prop_assert_eq!(par.sum_ns, ser.sum_ns);
        }
    }
}
