//! Peer-credential checks for the Unix-socket listeners (`SO_PEERCRED`).
//!
//! `guardiand`'s sockets are the trust boundary between tenants and the
//! process that owns the GPU; filesystem permissions on the socket path
//! are the first gate, but a world-reachable path (or a lax umask) must
//! not silently widen it. The kernel attaches the connecting process's
//! credentials to every `SOCK_STREAM` Unix connection; [`UidPolicy`]
//! checks the peer's uid against an allowlist at `accept` time, before a
//! single protocol byte is read, and rejected peers are simply dropped —
//! they observe EOF, the accept loop moves on.
//!
//! The container vendors no `libc` crate (same situation as the raw
//! `mmap` in [`super::shm`]); the two syscall wrappers are declared
//! directly against the C runtime every Rust binary links.

use super::TransportError;
use std::io;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;

extern "C" {
    fn getsockopt(
        sockfd: i32,
        level: i32,
        optname: i32,
        optval: *mut core::ffi::c_void,
        optlen: *mut u32,
    ) -> i32;
    fn geteuid() -> u32;
}

const SOL_SOCKET: i32 = 1;
const SO_PEERCRED: i32 = 17;

/// Mirror of the kernel's `struct ucred` (pid, uid, gid — all 32-bit on
/// Linux).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct Ucred {
    pid: i32,
    uid: u32,
    gid: u32,
}

/// The effective uid of this process.
pub fn current_uid() -> u32 {
    unsafe { geteuid() }
}

/// The uid of the process at the other end of a Unix-socket connection.
///
/// # Errors
///
/// [`TransportError::Io`] when the kernel refuses `SO_PEERCRED` (not a
/// `SOCK_STREAM` Unix socket, or the platform lacks it).
pub fn peer_uid(stream: &UnixStream) -> Result<u32, TransportError> {
    let mut cred = Ucred {
        pid: 0,
        uid: u32::MAX,
        gid: u32::MAX,
    };
    let mut len = std::mem::size_of::<Ucred>() as u32;
    let rc = unsafe {
        getsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_PEERCRED,
            (&mut cred as *mut Ucred).cast(),
            &mut len,
        )
    };
    if rc != 0 {
        return Err(TransportError::from_io(
            "peercred",
            &io::Error::last_os_error(),
        ));
    }
    Ok(cred.uid)
}

/// Which peer uids a listener admits.
#[derive(Debug, Clone, Default)]
pub enum UidPolicy {
    /// Admit any uid (the library default — single-user test setups and
    /// the in-process transport need no gate; daemons should tighten).
    #[default]
    AllowAll,
    /// Admit only the listed uids. `guardiand` defaults to
    /// `Allow(vec![current_uid()])` — the uid the daemon runs as.
    Allow(Vec<u32>),
}

impl UidPolicy {
    /// Admit only the daemon's own uid.
    pub fn same_user() -> Self {
        UidPolicy::Allow(vec![current_uid()])
    }

    /// Whether a peer with `uid` may connect.
    pub fn admits(&self, uid: u32) -> bool {
        match self {
            UidPolicy::AllowAll => true,
            UidPolicy::Allow(uids) => uids.contains(&uid),
        }
    }

    /// Check one freshly accepted connection. `Ok(true)` — admit;
    /// `Ok(false)` — reject (caller drops the stream and keeps
    /// accepting). Credential *lookup failures* reject closed: a peer
    /// whose identity cannot be established is not admitted under a
    /// restrictive policy.
    pub fn check(&self, stream: &UnixStream) -> bool {
        match self {
            UidPolicy::AllowAll => true,
            UidPolicy::Allow(_) => match peer_uid(stream) {
                Ok(uid) => self.admits(uid),
                Err(_) => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixListener;

    #[test]
    fn peer_uid_reports_our_own_uid_over_socketpair() {
        let path = crate::fixtures::temp_socket_path("peercred");
        let listener = UnixListener::bind(&path).unwrap();
        let client = UnixStream::connect(&path).unwrap();
        let (server, _) = listener.accept().unwrap();
        // Both ends belong to this process.
        assert_eq!(peer_uid(&server).unwrap(), current_uid());
        assert_eq!(peer_uid(&client).unwrap(), current_uid());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn policies_admit_and_reject() {
        assert!(UidPolicy::AllowAll.admits(0));
        assert!(UidPolicy::AllowAll.admits(u32::MAX));
        let same = UidPolicy::same_user();
        assert!(same.admits(current_uid()));
        assert!(!same.admits(current_uid().wrapping_add(1)));
        let listed = UidPolicy::Allow(vec![1000, 1001]);
        assert!(listed.admits(1001));
        assert!(!listed.admits(0));
    }
}
