//! In-process channel transport: two `crossbeam` byte-frame channels per
//! connection. The cheapest carrier — no copies beyond the frame itself,
//! no syscalls — used by tests, benches, and single-process deployments.

use super::{Connection, Dialer, Listener, TransportError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// In-process connection half: a pair of byte-frame channels.
pub struct ChannelConnection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl Connection for ChannelConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.tx
            .send(frame)
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

/// In-process listener: receives server halves from [`ChannelDialer`]s.
pub struct ChannelListener {
    incoming: Receiver<ChannelConnection>,
}

impl Listener for ChannelListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        self.incoming
            .recv()
            .map(|c| Box::new(c) as Box<dyn Connection>)
            .map_err(|_| TransportError::Disconnected)
    }
}

/// In-process dialer: builds a duplex channel pair per connection and
/// hands the server half to the listener.
pub struct ChannelDialer {
    // Mutex so the dialer is Sync regardless of the channel Sender's own
    // Sync-ness (the shim wraps std::sync::mpsc).
    to_listener: Mutex<Sender<ChannelConnection>>,
}

impl Dialer for ChannelDialer {
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError> {
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let server = ChannelConnection {
            tx: s2c_tx,
            rx: c2s_rx,
        };
        let client = ChannelConnection {
            tx: c2s_tx,
            rx: s2c_rx,
        };
        self.to_listener
            .lock()
            .send(server)
            .map_err(|_| TransportError::Disconnected)?;
        Ok(Box::new(client))
    }
}

/// Create a connected in-process listener/dialer pair.
///
/// Dropping the dialer closes the listener (its `accept` starts failing),
/// which is how the manager's acceptor thread learns to shut down.
pub fn channel_transport() -> (ChannelListener, ChannelDialer) {
    let (tx, rx) = unbounded();
    (
        ChannelListener { incoming: rx },
        ChannelDialer {
            to_listener: Mutex::new(tx),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let (listener, dialer) = channel_transport();
        let client = dialer.dial().unwrap();
        let server = listener.accept().unwrap();
        client.send(vec![1]).unwrap();
        client.send(vec![2, 2]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1]);
        assert_eq!(server.recv().unwrap(), vec![2, 2]);
        server.send(vec![3]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![3]);
    }

    #[test]
    fn connections_are_independent() {
        let (listener, dialer) = channel_transport();
        let c1 = dialer.dial().unwrap();
        let c2 = dialer.dial().unwrap();
        let s1 = listener.accept().unwrap();
        let s2 = listener.accept().unwrap();
        c2.send(vec![2]).unwrap();
        c1.send(vec![1]).unwrap();
        assert_eq!(s1.recv().unwrap(), vec![1]);
        assert_eq!(s2.recv().unwrap(), vec![2]);
    }

    #[test]
    fn drop_propagates_as_disconnect() {
        let (listener, dialer) = channel_transport();
        let client = dialer.dial().unwrap();
        let server = listener.accept().unwrap();
        drop(client);
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
        drop(dialer);
        assert!(listener.accept().is_err());
    }
}
