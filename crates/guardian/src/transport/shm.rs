//! Shared-memory ring transport: syscall-free frame exchange between
//! processes.
//!
//! Each connection is an mmap'd file holding one fixed-capacity SPSC byte
//! ring per direction. Head and tail are monotonically increasing 64-bit
//! byte counters in dedicated cache lines; the producer publishes a frame
//! (4-byte length + payload, wrapping at byte granularity) with a single
//! release store of the tail, the consumer retires it with a release
//! store of the head. A send on the hot path is therefore two bounded
//! `memcpy`s and one atomic store — no syscall, no lock shared with the
//! peer — which is what makes this the transport of choice for the
//! high-rate one-way deferred-launch path.
//!
//! A Unix domain socket carries the connection handshake (the dialer
//! creates the ring file, names it to the listener, and unlinks it once
//! both sides have it mapped) and then serves as the **liveness channel**:
//! neither side writes to it again, so a readable EOF means the peer is
//! gone — including by `SIGKILL`, where the kernel closes the socket for
//! the corpse. Waiting sides park with a spin → yield → sleep ladder and
//! probe the socket only in the sleep phase, so an active ring never pays
//! for liveness checks. The receiver drains frames still in the ring
//! before reporting [`TransportError::Disconnected`] (tail is published
//! only after a frame is fully written, so everything up to tail is
//! intact even after a mid-storm kill).

use super::frame::{self, PREAMBLE};
use super::peercred::UidPolicy;
use super::{Connection, Dialer, Listener, TransportError};
use parking_lot::Mutex;
use std::ffi::c_void;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default per-direction ring capacity (1 MiB: thousands of launch
/// frames in flight before the producer ever waits).
pub const DEFAULT_RING_CAPACITY: u32 = 1 << 20;

/// Bounds on the capacity a dialer may request (validated by the
/// listener before mapping a client-named file).
const MIN_CAPACITY: u32 = 4096;
const MAX_CAPACITY: u32 = 1 << 30;

/// File magic identifying a Guardian ring file.
const SHM_MAGIC: u64 = u64::from_le_bytes(*b"GRDSHMR\x01");

// ---- fixed file layout -----------------------------------------------------
// Heads and tails live 64 bytes apart so the producer's tail line and the
// consumer's head line never false-share.

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_CAPACITY: usize = 12;
const OFF_C2S_TAIL: usize = 64;
const OFF_C2S_HEAD: usize = 128;
const OFF_S2C_TAIL: usize = 192;
const OFF_S2C_HEAD: usize = 256;
const OFF_DATA: usize = 4096;

fn file_len(capacity: u32) -> u64 {
    OFF_DATA as u64 + 2 * capacity as u64
}

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

fn io_err(op: &'static str, e: &std::io::Error) -> TransportError {
    TransportError::from_io(op, e)
}

// ---- raw mapping -----------------------------------------------------------

// The container vendors no `libc` crate, but every Rust binary links the
// C runtime; declare the two symbols we need directly.
extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;

/// An mmap'd shared file. Page-aligned, unmapped on drop.
struct RawMap {
    ptr: *mut u8,
    len: usize,
}

// The map is plain shared memory; all concurrent access goes through the
// atomics at fixed offsets and the SPSC discipline documented above.
unsafe impl Send for RawMap {}
unsafe impl Sync for RawMap {}

impl RawMap {
    fn map(file: &File, len: usize) -> Result<RawMap, TransportError> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(TransportError::Io {
                op: "mmap",
                kind: std::io::ErrorKind::Other,
                detail: format!("mmap of {len} bytes failed"),
            });
        }
        Ok(RawMap {
            ptr: ptr.cast(),
            len,
        })
    }

    /// The atomic u64 at byte offset `off` (offsets are 8-byte aligned by
    /// construction; the mapping itself is page-aligned).
    fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off.is_multiple_of(8) && off + 8 <= self.len);
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off.is_multiple_of(4) && off + 4 <= self.len);
        unsafe { &*(self.ptr.add(off) as *const AtomicU32) }
    }
}

impl Drop for RawMap {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr.cast(), self.len);
        }
    }
}

/// One direction of the ring: where its data lives and which counters
/// belong to it. `head`/`tail` are byte offsets into the header area.
#[derive(Clone, Copy)]
struct RingRef {
    data: usize,
    cap: u64,
    head: usize,
    tail: usize,
}

/// Copy `bytes` into the ring at logical position `pos`, wrapping.
fn ring_write(map: &RawMap, r: RingRef, pos: u64, bytes: &[u8]) {
    let idx = (pos & (r.cap - 1)) as usize;
    let first = bytes.len().min(r.cap as usize - idx);
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), map.ptr.add(r.data + idx), first);
        if first < bytes.len() {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr().add(first),
                map.ptr.add(r.data),
                bytes.len() - first,
            );
        }
    }
}

/// Copy from the ring at logical position `pos` into `out`, wrapping.
fn ring_read(map: &RawMap, r: RingRef, pos: u64, out: &mut [u8]) {
    let idx = (pos & (r.cap - 1)) as usize;
    let first = out.len().min(r.cap as usize - idx);
    unsafe {
        std::ptr::copy_nonoverlapping(map.ptr.add(r.data + idx), out.as_mut_ptr(), first);
        if first < out.len() {
            std::ptr::copy_nonoverlapping(
                map.ptr.add(r.data),
                out.as_mut_ptr().add(first),
                out.len() - first,
            );
        }
    }
}

// ---- parking ---------------------------------------------------------------

/// Spin → yield → sleep ladder. Returns `true` when the caller should
/// probe peer liveness (only in the sleep phase, so an active ring pays
/// zero syscalls for liveness). The sleep escalates from 50 µs toward
/// 2 ms, so a manager session parked on an *idle* tenant costs a few
/// hundred wakeups per second instead of tens of thousands, while a
/// ring that just went quiet is still re-checked within microseconds
/// (the ladder resets on every wait).
struct Backoff {
    steps: u32,
    sleep_us: u64,
}

impl Backoff {
    fn new() -> Self {
        Backoff {
            steps: 0,
            sleep_us: 50,
        }
    }

    fn snooze(&mut self) -> bool {
        self.steps = self.steps.saturating_add(1);
        if self.steps < 512 {
            std::hint::spin_loop();
            false
        } else if self.steps < 2048 {
            std::thread::yield_now();
            false
        } else {
            std::thread::sleep(Duration::from_micros(self.sleep_us));
            self.sleep_us = (self.sleep_us * 2).min(2000);
            true
        }
    }
}

/// Probe the liveness socket: EOF means the peer is gone (exited,
/// crashed, or SIGKILLed — the kernel closes its end either way).
fn peer_gone(sock: &UnixStream) -> bool {
    let mut probe = [0u8; 8];
    match (&*sock).read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false, // stray bytes: peer still holds the socket
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    }
}

// ---- connection ------------------------------------------------------------

/// Which half of the ring file this endpoint is.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Client,
    Server,
}

/// One shared-memory connection endpoint.
pub struct ShmConnection {
    map: RawMap,
    sock: UnixStream,
    send_ring: RingRef,
    recv_ring: RingRef,
    /// Serializes local senders (the ring is SPSC per direction; the
    /// lock makes one endpoint's concurrent callers look like the single
    /// producer the ring requires).
    send_lock: Mutex<()>,
    /// Serializes local receivers, likewise.
    recv_lock: Mutex<()>,
    /// Server side only: the listener's exclusive claim on the ring
    /// file, released on drop.
    _claim: Option<RingClaim>,
}

impl ShmConnection {
    fn new(
        map: RawMap,
        sock: UnixStream,
        capacity: u32,
        side: Side,
        claim: Option<RingClaim>,
    ) -> Self {
        let cap = capacity as u64;
        let c2s = RingRef {
            data: OFF_DATA,
            cap,
            head: OFF_C2S_HEAD,
            tail: OFF_C2S_TAIL,
        };
        let s2c = RingRef {
            data: OFF_DATA + capacity as usize,
            cap,
            head: OFF_S2C_HEAD,
            tail: OFF_S2C_TAIL,
        };
        let (send_ring, recv_ring) = match side {
            Side::Client => (c2s, s2c),
            Side::Server => (s2c, c2s),
        };
        ShmConnection {
            map,
            sock,
            send_ring,
            recv_ring,
            send_lock: Mutex::new(()),
            recv_lock: Mutex::new(()),
            _claim: claim,
        }
    }
}

impl Connection for ShmConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        let r = self.send_ring;
        let need = frame.len() as u64 + 4;
        if need > r.cap {
            return Err(TransportError::FrameTooLarge {
                len: frame.len() as u64,
                max: r.cap - 4,
            });
        }
        let _guard = self.send_lock.lock();
        let tail_a = self.map.atomic_u64(r.tail);
        let head_a = self.map.atomic_u64(r.head);
        // Sole producer under the lock: our own tail is stable.
        let tail = tail_a.load(Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            // The consumer's head counter lives in memory the peer can
            // scribble on; treat it as untrusted input, exactly like the
            // recv path treats the producer's counters. A head "ahead"
            // of our tail can only mean a hostile or corrupted peer —
            // fail the connection instead of underflowing.
            let head = head_a.load(Ordering::Acquire);
            let used = tail.wrapping_sub(head);
            if used > r.cap {
                return Err(TransportError::Io {
                    op: "send",
                    kind: std::io::ErrorKind::InvalidData,
                    detail: format!("ring consumer head {head} ahead of producer tail {tail}"),
                });
            }
            if r.cap - used >= need {
                break;
            }
            if backoff.snooze() && peer_gone(&self.sock) {
                return Err(TransportError::Disconnected);
            }
        }
        ring_write(&self.map, r, tail, &(frame.len() as u32).to_le_bytes());
        ring_write(&self.map, r, tail + 4, &frame);
        // Publish: the consumer's acquire load of tail sees the frame
        // bytes fully written.
        tail_a.store(tail + need, Ordering::Release);
        Ok(())
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        let r = self.recv_ring;
        let _guard = self.recv_lock.lock();
        let tail_a = self.map.atomic_u64(r.tail);
        let head_a = self.map.atomic_u64(r.head);
        let head = head_a.load(Ordering::Relaxed);
        let mut backoff = Backoff::new();
        let tail = loop {
            let tail = tail_a.load(Ordering::Acquire);
            if tail != head {
                break tail;
            }
            // Ring drained: only now may a dead peer end the stream —
            // frames written before the peer died are still delivered.
            if backoff.snooze() && peer_gone(&self.sock) {
                return Err(TransportError::Disconnected);
            }
        };
        // The producer's tail is peer-writable memory: untrusted. A tail
        // "behind" our head (published > cap after wrapping) means a
        // hostile or corrupted producer.
        let published = tail.wrapping_sub(head);
        let mut len_bytes = [0u8; 4];
        ring_read(&self.map, r, head, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as u64;
        if published > r.cap || len + 4 > published {
            // Only a corrupted (or hostile) producer can publish a length
            // beyond its own published bytes; don't trust the stream.
            return Err(TransportError::Io {
                op: "recv",
                kind: std::io::ErrorKind::InvalidData,
                detail: format!("ring frame length {len} exceeds published bytes"),
            });
        }
        let mut payload = vec![0u8; len as usize];
        ring_read(&self.map, r, head + 4, &mut payload);
        head_a.store(head + 4 + len, Ordering::Release);
        Ok(payload)
    }
}

// ---- handshake -------------------------------------------------------------

/// Client half of the handshake: name the ring file and its capacity.
fn send_hello(sock: &UnixStream, path: &Path, capacity: u32) -> Result<(), TransportError> {
    let bytes = path.as_os_str().as_encoded_bytes();
    let mut msg = Vec::with_capacity(12 + bytes.len());
    msg.extend_from_slice(&PREAMBLE);
    msg.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    msg.extend_from_slice(bytes);
    msg.extend_from_slice(&capacity.to_le_bytes());
    (&*sock)
        .write_all(&msg)
        .map_err(|e| io_err("handshake", &e))
}

/// Server half: read the hello, validate, map the ring file.
fn read_hello(sock: &UnixStream) -> Result<(PathBuf, u32), TransportError> {
    let mut preamble = [0u8; 4];
    (&*sock)
        .read_exact(&mut preamble)
        .map_err(|e| io_err("handshake", &e))?;
    frame::check_preamble(&preamble)?;
    let mut len_bytes = [0u8; 4];
    (&*sock)
        .read_exact(&mut len_bytes)
        .map_err(|e| io_err("handshake", &e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > 4096 {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring path length {len} out of range"),
        });
    }
    let mut path_bytes = vec![0u8; len];
    (&*sock)
        .read_exact(&mut path_bytes)
        .map_err(|e| io_err("handshake", &e))?;
    let mut cap_bytes = [0u8; 4];
    (&*sock)
        .read_exact(&mut cap_bytes)
        .map_err(|e| io_err("handshake", &e))?;
    let capacity = u32::from_le_bytes(cap_bytes);
    if !capacity.is_power_of_two() || !(MIN_CAPACITY..=MAX_CAPACITY).contains(&capacity) {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring capacity {capacity} invalid"),
        });
    }
    // Lossless round trip: the bytes came from as_encoded_bytes on the
    // client; treat them as a platform path verbatim.
    let path =
        PathBuf::from(unsafe { std::ffi::OsString::from_encoded_bytes_unchecked(path_bytes) });
    Ok((path, capacity))
}

fn validate_header(map: &RawMap, capacity: u32) -> Result<(), TransportError> {
    let magic = map.atomic_u64(OFF_MAGIC).load(Ordering::Acquire);
    if magic != SHM_MAGIC {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring file magic {magic:#x} != {SHM_MAGIC:#x}"),
        });
    }
    let version = map.atomic_u32(OFF_VERSION).load(Ordering::Acquire);
    if version != frame::TRANSPORT_VERSION as u32 {
        return Err(TransportError::VersionMismatch {
            got: version as u8,
            want: frame::TRANSPORT_VERSION,
        });
    }
    let cap = map.atomic_u32(OFF_CAPACITY).load(Ordering::Acquire);
    if cap != capacity {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring header capacity {cap} != hello capacity {capacity}"),
        });
    }
    Ok(())
}

// ---- listener / dialer -----------------------------------------------------

/// Identity of a mapped ring file: `(device, inode)`. The SPSC ring
/// discipline tolerates exactly one server-side endpoint per file; the
/// listener tracks live claims so a hostile client cannot alias one
/// ring file into two connections (two server producers on one ring
/// would race inside the trusted manager).
type RingFileId = (u64, u64);

/// Registry entry held by a server-side connection; frees the ring-file
/// claim when the connection drops.
struct RingClaim {
    id: RingFileId,
    registry: Arc<Mutex<std::collections::HashSet<RingFileId>>>,
}

impl Drop for RingClaim {
    fn drop(&mut self) {
        self.registry.lock().remove(&self.id);
    }
}

/// Server side: accepts shared-memory connections handshaken over a Unix
/// socket at a well-known path.
pub struct ShmListener {
    listener: UnixListener,
    path: PathBuf,
    stop: Arc<AtomicBool>,
    policy: UidPolicy,
    /// Ring files currently mapped by live server connections.
    mapped: Arc<Mutex<std::collections::HashSet<RingFileId>>>,
}

impl ShmListener {
    /// Bind the handshake socket at `path` (replacing any stale file).
    /// Returns the listener and an `unblock` closure for shutdown, as
    /// [`UdsListener::bind`](super::uds::UdsListener::bind) does.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when binding fails.
    pub fn bind(path: &Path) -> Result<(Self, super::UnblockFn), TransportError> {
        Self::bind_with_policy(path, UidPolicy::AllowAll)
    }

    /// [`ShmListener::bind`] with an `SO_PEERCRED` uid policy on the
    /// handshake socket — the ring file is only ever opened for peers
    /// the policy admits.
    ///
    /// # Errors
    ///
    /// As [`ShmListener::bind`].
    pub fn bind_with_policy(
        path: &Path,
        policy: UidPolicy,
    ) -> Result<(Self, super::UnblockFn), TransportError> {
        if path.exists() {
            std::fs::remove_file(path).map_err(|e| io_err("bind", &e))?;
        }
        let listener = UnixListener::bind(path).map_err(|e| io_err("bind", &e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let unblock = {
            let stop = stop.clone();
            let path = path.to_path_buf();
            Box::new(move || {
                stop.store(true, Ordering::SeqCst);
                let _ = UnixStream::connect(&path);
            })
        };
        Ok((
            ShmListener {
                listener,
                path: path.to_path_buf(),
                stop,
                policy,
                mapped: Arc::new(Mutex::new(std::collections::HashSet::new())),
            },
            unblock,
        ))
    }
}

/// Server half of the hello: validate, open, claim, and map the ring
/// file the client named. Runs on the accepted connection's own session
/// thread (see [`PendingShmConnection`]), never on the accept loop.
fn complete_server_handshake(
    sock: &UnixStream,
    mapped: &Arc<Mutex<std::collections::HashSet<RingFileId>>>,
) -> Result<(RawMap, u32, RingClaim), TransportError> {
    use std::os::unix::fs::{MetadataExt, OpenOptionsExt};

    sock.set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| io_err("handshake", &e))?;
    let (ring_path, capacity) = read_hello(sock)?;
    // O_NOFOLLOW | O_NONBLOCK (asm-generic Linux values, shared by
    // x86_64 and aarch64): the path is attacker-controlled, so refuse
    // symlinks outright and never block inside open(2) on a smuggled
    // FIFO. O_NONBLOCK on a regular file is a no-op for mmap/IO here.
    const O_NONBLOCK: i32 = 0o4000;
    const O_NOFOLLOW: i32 = 0o400000;
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .custom_flags(O_NOFOLLOW | O_NONBLOCK)
        .open(&ring_path)
        .map_err(|e| io_err("handshake", &e))?;
    let meta = file.metadata().map_err(|e| io_err("handshake", &e))?;
    // Only plain files are mappable ring backings; a FIFO, device
    // node, or socket smuggled in by path is an attack, not a ring.
    if !meta.file_type().is_file() {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring path {} is not a regular file", ring_path.display()),
        });
    }
    let need = file_len(capacity);
    let have = meta.len();
    if have < need {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring file is {have} bytes, need {need}"),
        });
    }
    // Claim the file by (device, inode): one server endpoint per
    // ring, or the SPSC invariant the unsafe ring code relies on is
    // gone. The claim is released when the connection drops.
    let id: RingFileId = (meta.dev(), meta.ino());
    if !mapped.lock().insert(id) {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::AlreadyExists,
            detail: "ring file already serves another live connection".into(),
        });
    }
    let claim = RingClaim {
        id,
        registry: mapped.clone(),
    };
    let map = RawMap::map(&file, need as usize)?;
    validate_header(&map, capacity)?;
    // Ready byte: the client may unlink the file once we have it
    // mapped (the mapping outlives the directory entry).
    (&*sock)
        .write_all(&[1])
        .map_err(|e| io_err("handshake", &e))?;
    sock.set_nonblocking(true)
        .map_err(|e| io_err("handshake", &e))?;
    Ok((map, capacity, claim))
}

/// A freshly accepted server half whose hello has not been read yet.
/// The handshake runs on the first send/recv — in the manager, that is
/// the connection's own session thread — so a client that connects and
/// stalls wedges only itself, never the accept loop.
struct PendingShmConnection {
    state: Mutex<ShmServerState>,
}

enum ShmServerState {
    Pending {
        sock: UnixStream,
        mapped: Arc<Mutex<std::collections::HashSet<RingFileId>>>,
    },
    Ready(ShmConnection),
    /// Handshake failed; every subsequent op repeats the refusal.
    Failed,
}

impl PendingShmConnection {
    /// Run the handshake if it hasn't happened, then apply `f` to the
    /// live connection. The state lock is held across `f`; server-side
    /// connections are driven by a single session thread, so this
    /// serializes nothing that was concurrent before.
    fn with_ready<R>(
        &self,
        f: impl FnOnce(&ShmConnection) -> Result<R, TransportError>,
    ) -> Result<R, TransportError> {
        let mut state = self.state.lock();
        if let ShmServerState::Pending { sock, mapped } = &*state {
            match complete_server_handshake(sock, mapped) {
                Ok((map, capacity, claim)) => {
                    // The socket moves into the connection; replace the
                    // state wholesale.
                    let old = std::mem::replace(&mut *state, ShmServerState::Failed);
                    let ShmServerState::Pending { sock, .. } = old else {
                        unreachable!("state checked above");
                    };
                    *state = ShmServerState::Ready(ShmConnection::new(
                        map,
                        sock,
                        capacity,
                        Side::Server,
                        Some(claim),
                    ));
                }
                Err(e) => {
                    *state = ShmServerState::Failed;
                    return Err(e);
                }
            }
        }
        match &*state {
            ShmServerState::Ready(conn) => f(conn),
            ShmServerState::Failed => Err(TransportError::Disconnected),
            ShmServerState::Pending { .. } => unreachable!("handshake just ran"),
        }
    }
}

impl Connection for PendingShmConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.with_ready(|c| c.send(frame))
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.with_ready(|c| c.recv())
    }
}

impl Listener for ShmListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        loop {
            let (sock, _) = self.listener.accept().map_err(|e| io_err("accept", &e))?;
            if self.stop.load(Ordering::SeqCst) {
                return Err(TransportError::Disconnected);
            }
            // Credential gate: a peer the uid policy rejects is dropped
            // before the hello — its ring file is never opened or
            // mapped.
            if !self.policy.check(&sock) {
                drop(sock);
                continue;
            }
            // The hello is deferred to the connection's first send/recv
            // (its session thread), keeping the accept loop un-wedgeable.
            return Ok(Box::new(PendingShmConnection {
                state: Mutex::new(ShmServerState::Pending {
                    sock,
                    mapped: self.mapped.clone(),
                }),
            }));
        }
    }
}

impl Drop for ShmListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Client side: creates a ring file per connection and hands it to the
/// listener over the handshake socket.
pub struct ShmDialer {
    path: PathBuf,
    capacity: u32,
}

static RING_SEQ: AtomicU64 = AtomicU64::new(0);

impl ShmDialer {
    /// A dialer for the handshake socket at `path` with the default ring
    /// capacity.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self::with_capacity(path, DEFAULT_RING_CAPACITY)
    }

    /// A dialer creating rings of `capacity` bytes per direction
    /// (power of two, 4 KiB – 1 GiB).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range capacity — a build-time configuration
    /// error, not a runtime condition.
    pub fn with_capacity(path: impl AsRef<Path>, capacity: u32) -> Self {
        assert!(
            capacity.is_power_of_two() && (MIN_CAPACITY..=MAX_CAPACITY).contains(&capacity),
            "ring capacity {capacity} must be a power of two in [{MIN_CAPACITY}, {MAX_CAPACITY}]"
        );
        ShmDialer {
            path: path.as_ref().to_path_buf(),
            capacity,
        }
    }
}

impl Dialer for ShmDialer {
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError> {
        // Create and initialize the ring file.
        let seq = RING_SEQ.fetch_add(1, Ordering::Relaxed);
        let ring_path =
            std::env::temp_dir().join(format!("grd-ring-{}-{seq}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .map_err(|e| io_err("dial", &e))?;
        // Best-effort unlink on any early-exit path below.
        struct UnlinkGuard<'a>(Option<&'a Path>);
        impl Drop for UnlinkGuard<'_> {
            fn drop(&mut self) {
                if let Some(p) = self.0 {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
        let mut guard = UnlinkGuard(Some(&ring_path));
        file.set_len(file_len(self.capacity))
            .map_err(|e| io_err("dial", &e))?;
        let map = RawMap::map(&file, file_len(self.capacity) as usize)?;
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(self.capacity, Ordering::Release);
        // Magic last: a file without it is never a valid ring.
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);

        // Handshake over the socket.
        let sock = UnixStream::connect(&self.path).map_err(|e| io_err("dial", &e))?;
        sock.set_read_timeout(Some(HANDSHAKE_TIMEOUT))
            .map_err(|e| io_err("handshake", &e))?;
        send_hello(&sock, &ring_path, self.capacity)?;
        let mut ready = [0u8; 1];
        (&sock)
            .read_exact(&mut ready)
            .map_err(|e| io_err("handshake", &e))?;
        if ready[0] != 1 {
            return Err(TransportError::Io {
                op: "handshake",
                kind: std::io::ErrorKind::InvalidData,
                detail: format!("listener rejected ring (ready byte {})", ready[0]),
            });
        }
        sock.set_nonblocking(true)
            .map_err(|e| io_err("handshake", &e))?;
        // Both sides hold the mapping; the directory entry can go. After
        // this point even SIGKILL leaks nothing on disk.
        let _ = std::fs::remove_file(&ring_path);
        guard.0 = None;
        Ok(Box::new(ShmConnection::new(
            map,
            sock,
            self.capacity,
            Side::Client,
            None,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sock(tag: &str) -> PathBuf {
        crate::fixtures::temp_socket_path(&format!("shm-test-{tag}"))
    }

    #[test]
    fn frames_round_trip_through_the_ring() {
        let path = temp_sock("rt");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let dialer = ShmDialer::with_capacity(&path, 4096);
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            for _ in 0..3 {
                let f = server.recv().unwrap();
                server.send(f.iter().rev().copied().collect()).unwrap();
            }
            server
        });
        let client = dialer.dial().unwrap();
        for len in [0usize, 5, 1000] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            client.send(payload.clone()).unwrap();
            let mut expect = payload;
            expect.reverse();
            assert_eq!(client.recv().unwrap(), expect);
        }
        drop(client);
        let server = server_thread.join().unwrap();
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn wraparound_and_backpressure() {
        // Ring holds 4096 bytes/direction; push far more than a ring's
        // worth of frames with a slow consumer so the producer both wraps
        // and waits.
        let path = temp_sock("wrap");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let dialer = ShmDialer::with_capacity(&path, 4096);
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            let mut total = 0u64;
            for i in 0..200u32 {
                let f = server.recv().unwrap();
                assert_eq!(f.len(), 300);
                assert!(f.iter().all(|&b| b == i as u8), "frame {i} corrupted");
                total += f.len() as u64;
                if i % 16 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            total
        });
        let client = dialer.dial().unwrap();
        for i in 0..200u32 {
            client.send(vec![i as u8; 300]).unwrap();
        }
        assert_eq!(server_thread.join().unwrap(), 200 * 300);
        drop(client);
    }

    #[test]
    fn oversized_frame_fails_locally() {
        let path = temp_sock("big");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        // The server half completes the deferred handshake via its first
        // op (in the manager this is the session thread's first recv).
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(Vec::new()).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        assert!(matches!(
            client.send(vec![0u8; 5000]),
            Err(TransportError::FrameTooLarge { len: 5000, .. })
        ));
        drop(client);
        drop(accept_thread.join().unwrap());
    }

    #[test]
    fn frames_survive_peer_death_until_drained() {
        // The producer writes frames then vanishes (drop = socket EOF);
        // the consumer must still drain every published frame before
        // reporting Disconnected.
        let path = temp_sock("drain");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        // First server op completes the deferred handshake so the dial
        // below can return; the marker frame is never read by anyone.
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(vec![0xFE]).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 65536).dial().unwrap();
        for i in 0..10u8 {
            client.send(vec![i; 64]).unwrap();
        }
        drop(client);
        let server = accept_thread.join().unwrap();
        for i in 0..10u8 {
            assert_eq!(server.recv().unwrap(), vec![i; 64]);
        }
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn ring_file_is_unlinked_after_handshake() {
        let path = temp_sock("unlink");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(Vec::new()).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        let _server = accept_thread.join().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!("grd-ring-{}-", std::process::id())))
            .collect();
        assert!(leftovers.is_empty(), "ring files leaked: {leftovers:?}");
        drop(client);
    }

    /// Peer-writable counters are untrusted input: a consumer head
    /// stored "ahead" of the producer's tail must fail the send with a
    /// protocol error, not underflow the free-space computation. The
    /// hostile client here never builds a `ShmConnection` at all — it
    /// holds its own raw mapping of the ring file, exactly as a
    /// malicious tenant would.
    #[test]
    fn hostile_head_counter_fails_send_without_panic() {
        let path = temp_sock("hostile");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            // First op runs the deferred handshake (unblocking the
            // client's wait for the ready byte) and proves a clean send.
            c.send(vec![9]).unwrap();
            c
        });
        // Hand-rolled hostile client: create + map the ring, handshake.
        let capacity = 4096u32;
        let ring_path =
            std::env::temp_dir().join(format!("grd-hostile-ring-{}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .unwrap();
        file.set_len(file_len(capacity)).unwrap();
        let map = RawMap::map(&file, file_len(capacity) as usize).unwrap();
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(capacity, Ordering::Release);
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);
        let sock = UnixStream::connect(&path).unwrap();
        send_hello(&sock, &ring_path, capacity).unwrap();
        let mut ready = [0u8; 1];
        (&sock).read_exact(&mut ready).unwrap();
        assert_eq!(ready[0], 1);
        let _ = std::fs::remove_file(&ring_path);
        let server = accept_thread.join().unwrap();
        // The attack: publish an impossible s2c consumer head.
        map.atomic_u64(OFF_S2C_HEAD)
            .store(u64::MAX / 2, Ordering::Release);
        match server.send(vec![1, 2, 3]) {
            Err(TransportError::Io { op: "send", .. }) => {}
            other => panic!("hostile head produced {other:?}"),
        }
    }

    /// One ring file, one connection: a client replaying the same ring
    /// path in a second handshake is rejected, because two server-side
    /// producers on one ring would break the SPSC discipline.
    #[test]
    fn aliased_ring_file_is_rejected() {
        let path = temp_sock("alias");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let first = listener.accept().unwrap();
            let r1 = first.send(Vec::new());
            let second = listener.accept().unwrap();
            let r2 = second.send(Vec::new());
            (first, r1, r2)
        });
        // Legitimate dial, but capture the ring path before it is
        // unlinked by racing the dialer: hand-roll the handshake twice
        // with one file instead.
        let capacity = 4096u32;
        let ring_path =
            std::env::temp_dir().join(format!("grd-alias-ring-{}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .unwrap();
        file.set_len(file_len(capacity)).unwrap();
        let map = RawMap::map(&file, file_len(capacity) as usize).unwrap();
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(capacity, Ordering::Release);
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);

        let dial_once = || -> std::io::Result<u8> {
            let sock = UnixStream::connect(&path)?;
            send_hello(&sock, &ring_path, capacity).map_err(std::io::Error::other)?;
            let mut ready = [0u8; 1];
            (&sock).read_exact(&mut ready)?;
            // Leak the socket so the first connection stays alive for
            // the duration of the test.
            std::mem::forget(sock);
            Ok(ready[0])
        };
        assert_eq!(dial_once().unwrap(), 1, "first handshake accepted");
        // Second handshake naming the same file: the claim conflict
        // fails that connection (we observe EOF instead of a ready
        // byte), while the first connection stays healthy.
        let r = dial_once();
        assert!(
            r.is_err(),
            "aliased ring handshake must be rejected, got {r:?}"
        );
        let (_first, r1, r2) = accept_thread.join().unwrap();
        assert!(r1.is_ok(), "first connection must serve: {r1:?}");
        assert!(
            matches!(
                r2,
                Err(TransportError::Io {
                    op: "handshake",
                    kind: std::io::ErrorKind::AlreadyExists,
                    ..
                })
            ),
            "aliased claim produced {r2:?}"
        );
        let _ = std::fs::remove_file(&ring_path);
    }
}
