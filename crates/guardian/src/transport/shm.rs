//! Shared-memory ring transport: syscall-free frame exchange between
//! processes.
//!
//! Each connection is an mmap'd file holding one fixed-capacity SPSC byte
//! ring per direction. Head and tail are monotonically increasing 64-bit
//! byte counters in dedicated cache lines; the producer publishes a frame
//! (4-byte length + payload, wrapping at byte granularity) with a single
//! release store of the tail, the consumer retires it with a release
//! store of the head. A send on the hot path is therefore two bounded
//! `memcpy`s and one atomic store — no syscall, no lock shared with the
//! peer — which is what makes this the transport of choice for the
//! high-rate one-way deferred-launch path.
//!
//! A Unix domain socket carries the connection handshake (the dialer
//! creates the ring file, names it to the listener, and unlinks it once
//! both sides have it mapped) and then serves as the **liveness channel**:
//! neither side writes to it again, so a readable EOF means the peer is
//! gone — including by `SIGKILL`, where the kernel closes the socket for
//! the corpse. The receiver drains frames still in the ring before
//! reporting [`TransportError::Disconnected`] (tail is published only
//! after a frame is fully written, so everything up to tail is intact
//! even after a mid-storm kill).
//!
//! **Parking is eventfd-driven.** The dialer creates one eventfd
//! *doorbell* per side and passes both to the listener with the
//! handshake (`SCM_RIGHTS` on the hello's preamble byte). A waiter —
//! consumer out of frames, or producer out of ring space — publishes a
//! *parked* flag in the ring header, re-checks the counters (Dekker
//! style, with seq-cst fences on both sides), and then sleeps in
//! `poll(2)` on its doorbell **and** the liveness socket. The peer rings
//! the doorbell only when the parked flag is set, so the hot path stays
//! syscall-free, and a parked side wakes instantly on either new
//! data/space or peer death (socket EOF) — no sleep ladder, no liveness
//! probe cadence. Peers that skip the doorbell exchange (legacy or
//! hand-rolled hellos) fall back to a short spin followed by a 1 ms
//! `poll` on the socket alone: still wakeup-driven for death detection,
//! just periodic for data.

use super::frame::{self, BufPool, FrameView, BATCH_FLAG, PREAMBLE};
use super::peercred::UidPolicy;
use super::{sys, Connection, Dialer, Listener, TransportError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ffi::c_void;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default per-direction ring capacity (1 MiB: thousands of launch
/// frames in flight before the producer ever waits).
pub const DEFAULT_RING_CAPACITY: u32 = 1 << 20;

/// Bounds on the capacity a dialer may request (validated by the
/// listener before mapping a client-named file).
const MIN_CAPACITY: u32 = 4096;
const MAX_CAPACITY: u32 = 1 << 30;

/// File magic identifying a Guardian ring file.
const SHM_MAGIC: u64 = u64::from_le_bytes(*b"GRDSHMR\x01");

// ---- fixed file layout -----------------------------------------------------
// Heads and tails live 64 bytes apart so the producer's tail line and the
// consumer's head line never false-share.

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_CAPACITY: usize = 12;
const OFF_C2S_TAIL: usize = 64;
const OFF_C2S_HEAD: usize = 128;
const OFF_S2C_TAIL: usize = 192;
const OFF_S2C_HEAD: usize = 256;
/// Parked flags (u32, 0|1): set by a side before it sleeps in `poll` on
/// its doorbell, checked by the peer after publishing — the peer only
/// pays the `write(eventfd)` syscall when someone is actually asleep.
const OFF_CLIENT_PARKED: usize = 320;
const OFF_SERVER_PARKED: usize = 384;
const OFF_DATA: usize = 4096;

fn file_len(capacity: u32) -> u64 {
    OFF_DATA as u64 + 2 * capacity as u64
}

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

fn io_err(op: &'static str, e: &std::io::Error) -> TransportError {
    TransportError::from_io(op, e)
}

// ---- raw mapping -----------------------------------------------------------

// The container vendors no `libc` crate, but every Rust binary links the
// C runtime; declare the two symbols we need directly.
extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;

/// An mmap'd shared file. Page-aligned, unmapped on drop.
struct RawMap {
    ptr: *mut u8,
    len: usize,
}

// The map is plain shared memory; all concurrent access goes through the
// atomics at fixed offsets and the SPSC discipline documented above.
unsafe impl Send for RawMap {}
unsafe impl Sync for RawMap {}

impl RawMap {
    fn map(file: &File, len: usize) -> Result<RawMap, TransportError> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(TransportError::Io {
                op: "mmap",
                kind: std::io::ErrorKind::Other,
                detail: format!("mmap of {len} bytes failed"),
            });
        }
        Ok(RawMap {
            ptr: ptr.cast(),
            len,
        })
    }

    /// The atomic u64 at byte offset `off` (offsets are 8-byte aligned by
    /// construction; the mapping itself is page-aligned).
    fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off.is_multiple_of(8) && off + 8 <= self.len);
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off.is_multiple_of(4) && off + 4 <= self.len);
        unsafe { &*(self.ptr.add(off) as *const AtomicU32) }
    }
}

impl Drop for RawMap {
    fn drop(&mut self) {
        unsafe {
            munmap(self.ptr.cast(), self.len);
        }
    }
}

/// One direction of the ring: where its data lives and which counters
/// belong to it. `head`/`tail` are byte offsets into the header area.
#[derive(Clone, Copy)]
struct RingRef {
    data: usize,
    cap: u64,
    head: usize,
    tail: usize,
}

/// Copy `bytes` into the ring at logical position `pos`, wrapping.
fn ring_write(map: &RawMap, r: RingRef, pos: u64, bytes: &[u8]) {
    let idx = (pos & (r.cap - 1)) as usize;
    let first = bytes.len().min(r.cap as usize - idx);
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), map.ptr.add(r.data + idx), first);
        if first < bytes.len() {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr().add(first),
                map.ptr.add(r.data),
                bytes.len() - first,
            );
        }
    }
}

/// Copy from the ring at logical position `pos` into `out`, wrapping.
fn ring_read(map: &RawMap, r: RingRef, pos: u64, out: &mut [u8]) {
    let idx = (pos & (r.cap - 1)) as usize;
    let first = out.len().min(r.cap as usize - idx);
    unsafe {
        std::ptr::copy_nonoverlapping(map.ptr.add(r.data + idx), out.as_mut_ptr(), first);
        if first < out.len() {
            std::ptr::copy_nonoverlapping(
                map.ptr.add(r.data),
                out.as_mut_ptr().add(first),
                out.len() - first,
            );
        }
    }
}

// ---- parking ---------------------------------------------------------------

/// Iterations of `spin_loop`/`yield_now` before a waiter parks for real.
/// Short: the doorbell wake costs ~a microsecond, so burning long spin
/// phases per idle tenant is exactly what this transport no longer does.
const SPIN_ITERS: u32 = 128;
const YIELD_ITERS: u32 = 32;

/// Safety-net timeout for a doorbell park. The Dekker protocol makes a
/// lost wakeup impossible in theory; the bound makes a latent bug cost
/// 100 ms instead of a hang (and re-checks liveness on the way out).
const PARK_TIMEOUT_MS: i32 = 100;

/// Park interval for connections without doorbells (legacy or
/// hand-rolled peers that skipped the fd exchange): poll the liveness
/// socket — waking instantly on peer death — and re-check the ring every
/// millisecond.
const FALLBACK_PARK_MS: i32 = 1;

/// The eventfd pair wired up by the handshake: the peer rings `mine`
/// when we are parked; we ring `peers` when they are.
struct Doorbells {
    mine: sys::OwnedFd,
    peers: sys::OwnedFd,
}

/// Probe the liveness socket: EOF means the peer is gone (exited,
/// crashed, or SIGKILLed — the kernel closes its end either way).
fn peer_gone(sock: &UnixStream) -> bool {
    let mut probe = [0u8; 8];
    match (&*sock).read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false, // stray bytes: peer still holds the socket
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    }
}

// ---- connection ------------------------------------------------------------

/// Which half of the ring file this endpoint is.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Client,
    Server,
}

/// One shared-memory connection endpoint.
pub struct ShmConnection {
    map: RawMap,
    sock: UnixStream,
    send_ring: RingRef,
    recv_ring: RingRef,
    /// Serializes local senders (the ring is SPSC per direction; the
    /// lock makes one endpoint's concurrent callers look like the single
    /// producer the ring requires).
    send_lock: Mutex<()>,
    /// Serializes local receivers; also queues the tail of a decoded
    /// batch frame so every `recv`/`try_recv` returns one payload.
    recv_lock: Mutex<VecDeque<FrameView>>,
    /// Recycles the receive-copy buffers frames are lifted into off the
    /// ring, so a steady-state receiver allocates nothing per frame.
    recv_pool: Arc<BufPool>,
    /// Eventfd pair from the handshake; `None` for peers that skipped
    /// the fd exchange (fallback parking applies).
    doorbells: Option<Doorbells>,
    /// Header offset of *our* parked flag (set before we sleep).
    my_parked: usize,
    /// Header offset of the *peer's* parked flag (checked after we
    /// publish).
    peer_parked: usize,
    /// Server side only: the listener's exclusive claim on the ring
    /// file, released on drop.
    _claim: Option<RingClaim>,
}

impl ShmConnection {
    fn new(
        map: RawMap,
        sock: UnixStream,
        capacity: u32,
        side: Side,
        doorbells: Option<Doorbells>,
        claim: Option<RingClaim>,
    ) -> Self {
        let cap = capacity as u64;
        let c2s = RingRef {
            data: OFF_DATA,
            cap,
            head: OFF_C2S_HEAD,
            tail: OFF_C2S_TAIL,
        };
        let s2c = RingRef {
            data: OFF_DATA + capacity as usize,
            cap,
            head: OFF_S2C_HEAD,
            tail: OFF_S2C_TAIL,
        };
        let (send_ring, recv_ring, my_parked, peer_parked) = match side {
            Side::Client => (c2s, s2c, OFF_CLIENT_PARKED, OFF_SERVER_PARKED),
            Side::Server => (s2c, c2s, OFF_SERVER_PARKED, OFF_CLIENT_PARKED),
        };
        ShmConnection {
            map,
            sock,
            send_ring,
            recv_ring,
            send_lock: Mutex::new(()),
            recv_lock: Mutex::new(VecDeque::new()),
            recv_pool: BufPool::new(),
            doorbells,
            my_parked,
            peer_parked,
            _claim: claim,
        }
    }

    /// After publishing (tail advance) or retiring (head advance): ring
    /// the peer's doorbell iff it declared itself parked. The seq-cst
    /// fence pairs with the one in [`ShmConnection::park`] — either we
    /// see their parked flag, or they see our counter update.
    fn wake_peer_if_parked(&self) {
        fence(Ordering::SeqCst);
        if let Some(db) = &self.doorbells {
            if self.map.atomic_u32(self.peer_parked).load(Ordering::SeqCst) == 1 {
                sys::eventfd_signal(db.peers.raw());
            }
        }
    }

    /// Park until the doorbell rings, the peer dies, or `ready()` turns
    /// true. Returns `Err(Disconnected)` only on peer death with
    /// `ready()` still false (so a receiver drains the ring first).
    ///
    /// One endpoint can have a sender (out of space) and a receiver (out
    /// of frames) parked at once sharing one doorbell; a wake meant for
    /// one may be consumed by the other. The bounded park makes that a
    /// latency blip, not a hang.
    fn park(&self, ready: impl Fn() -> bool) -> Result<(), TransportError> {
        match &self.doorbells {
            Some(db) => {
                let parked = self.map.atomic_u32(self.my_parked);
                parked.store(1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if ready() {
                    parked.store(0, Ordering::SeqCst);
                    return Ok(());
                }
                if peer_gone(&self.sock) {
                    parked.store(0, Ordering::SeqCst);
                    return Err(TransportError::Disconnected);
                }
                sys::poll_fds(
                    &[
                        (db.mine.raw(), sys::POLLIN),
                        (self.sock.as_raw_fd(), sys::POLLIN),
                    ],
                    PARK_TIMEOUT_MS,
                );
                sys::eventfd_drain(db.mine.raw());
                parked.store(0, Ordering::SeqCst);
                if !ready() && peer_gone(&self.sock) {
                    return Err(TransportError::Disconnected);
                }
                Ok(())
            }
            None => {
                // No doorbell: poll the liveness socket alone. Peer
                // death still wakes us instantly; fresh data is picked
                // up on the next 1 ms tick.
                sys::poll_fds(&[(self.sock.as_raw_fd(), sys::POLLIN)], FALLBACK_PARK_MS);
                if !ready() && peer_gone(&self.sock) {
                    return Err(TransportError::Disconnected);
                }
                Ok(())
            }
        }
    }

    /// Spin briefly, then park until `ready()`. The caller re-derives
    /// whatever state it needs after this returns.
    fn wait_until(&self, ready: impl Fn() -> bool) -> Result<(), TransportError> {
        loop {
            for _ in 0..SPIN_ITERS {
                if ready() {
                    return Ok(());
                }
                std::hint::spin_loop();
            }
            for _ in 0..YIELD_ITERS {
                if ready() {
                    return Ok(());
                }
                std::thread::yield_now();
            }
            self.park(&ready)?;
            if ready() {
                return Ok(());
            }
        }
    }

    /// Sole producer (send lock held): write `word` (length prefix,
    /// possibly batch-flagged) + `body`, waiting for ring space.
    fn raw_send(&self, word: u32, body: &[u8]) -> Result<(), TransportError> {
        let r = self.send_ring;
        let need = body.len() as u64 + 4;
        debug_assert!(need <= r.cap, "caller checks capacity");
        let tail_a = self.map.atomic_u64(r.tail);
        let head_a = self.map.atomic_u64(r.head);
        // Sole producer under the lock: our own tail is stable.
        let tail = tail_a.load(Ordering::Relaxed);
        let hostile = std::cell::Cell::new(false);
        self.wait_until(|| {
            // The consumer's head counter lives in memory the peer can
            // scribble on; treat it as untrusted input, exactly like the
            // recv path treats the producer's counters. A head "ahead"
            // of our tail can only mean a hostile or corrupted peer.
            let head = head_a.load(Ordering::Acquire);
            let used = tail.wrapping_sub(head);
            if used > r.cap {
                hostile.set(true);
                return true;
            }
            r.cap - used >= need
        })?;
        if hostile.get() {
            let head = head_a.load(Ordering::Acquire);
            return Err(TransportError::Io {
                op: "send",
                kind: std::io::ErrorKind::InvalidData,
                detail: format!("ring consumer head {head} ahead of producer tail {tail}"),
            });
        }
        ring_write(&self.map, r, tail, &word.to_le_bytes());
        ring_write(&self.map, r, tail + 4, body);
        // Publish: the consumer's acquire load of tail sees the frame
        // bytes fully written.
        tail_a.store(tail + need, Ordering::Release);
        self.wake_peer_if_parked();
        Ok(())
    }

    /// With the recv lock held and the ring non-empty at `(head, tail)`:
    /// consume one wire frame, pushing its payload(s) onto `pending`
    /// (one for a plain frame, each sub-frame for a batch).
    fn consume_wire_frame(
        &self,
        pending: &mut VecDeque<FrameView>,
        head: u64,
        tail: u64,
    ) -> Result<(), TransportError> {
        let r = self.recv_ring;
        // The producer's tail is peer-writable memory: untrusted. A tail
        // "behind" our head (published > cap after wrapping) means a
        // hostile or corrupted producer.
        let published = tail.wrapping_sub(head);
        let mut len_bytes = [0u8; 4];
        ring_read(&self.map, r, head, &mut len_bytes);
        let word = u32::from_le_bytes(len_bytes);
        let len = (word & !BATCH_FLAG) as u64;
        if published > r.cap || len + 4 > published {
            // Only a corrupted (or hostile) producer can publish a length
            // beyond its own published bytes; don't trust the stream.
            return Err(TransportError::Io {
                op: "recv",
                kind: std::io::ErrorKind::InvalidData,
                detail: format!("ring frame length {len} exceeds published bytes"),
            });
        }
        // Lift the payload off the ring into a pooled buffer: the one
        // unavoidable copy (ring slots recycle under the producer), but
        // the buffer itself is reused across frames.
        let mut payload = self.recv_pool.take();
        payload.resize(len as usize, 0);
        ring_read(&self.map, r, head + 4, &mut payload);
        self.map
            .atomic_u64(r.head)
            .store(head + 4 + len, Ordering::Release);
        // A producer parked on backpressure wants to know space opened.
        self.wake_peer_if_parked();
        let view = FrameView::pooled(payload, &self.recv_pool);
        if word & BATCH_FLAG == 0 {
            pending.push_back(view);
        } else {
            // Sub-frames are bounded by the batch body, which the check
            // above already bounded by the ring capacity. Each sub-frame
            // is a zero-copy sub-view of the shared body block.
            frame::split_batch_views(&view, r.cap.min(u32::MAX as u64) as u32, pending)?;
        }
        Ok(())
    }
}

impl Connection for ShmConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        let r = self.send_ring;
        let need = frame.len() as u64 + 4;
        if need > r.cap {
            return Err(TransportError::FrameTooLarge {
                len: frame.len() as u64,
                max: r.cap - 4,
            });
        }
        let _guard = self.send_lock.lock();
        self.raw_send(frame.len() as u32, &frame)
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        let r = self.recv_ring;
        let mut pending = self.recv_lock.lock();
        loop {
            if let Some(f) = pending.pop_front() {
                return Ok(f.into_vec());
            }
            let tail_a = self.map.atomic_u64(r.tail);
            let head_a = self.map.atomic_u64(r.head);
            let head = head_a.load(Ordering::Relaxed);
            // Ring drained: only a dead peer may end the stream — frames
            // written before the peer died are still delivered.
            self.wait_until(|| tail_a.load(Ordering::Acquire) != head)?;
            let tail = tail_a.load(Ordering::Acquire);
            self.consume_wire_frame(&mut pending, head, tail)?;
        }
    }

    fn send_batch(&self, frames: Vec<Vec<u8>>) -> Result<(), TransportError> {
        if frames.len() <= 1 {
            return match frames.into_iter().next() {
                Some(f) => self.send(f),
                None => Ok(()),
            };
        }
        let r = self.send_ring;
        let body = frame::batch_body(&frames);
        if body.len() as u64 + 4 > r.cap {
            // Run too large for one publish: send frame-by-frame under
            // one producer lock so the run stays contiguous.
            let _guard = self.send_lock.lock();
            for f in frames {
                let need = f.len() as u64 + 4;
                if need > r.cap {
                    return Err(TransportError::FrameTooLarge {
                        len: f.len() as u64,
                        max: r.cap - 4,
                    });
                }
                self.raw_send(f.len() as u32, &f)?;
            }
            return Ok(());
        }
        let _guard = self.send_lock.lock();
        self.raw_send(body.len() as u32 | BATCH_FLAG, &body)
    }

    fn try_recv(&self) -> Result<Option<FrameView>, TransportError> {
        let r = self.recv_ring;
        let mut pending = self.recv_lock.lock();
        // Reset park state from a previous None: drain the doorbell and
        // clear the flag so producers go back to syscall-free publishes.
        if let Some(db) = &self.doorbells {
            self.map
                .atomic_u32(self.my_parked)
                .store(0, Ordering::SeqCst);
            sys::eventfd_drain(db.mine.raw());
        }
        loop {
            if let Some(f) = pending.pop_front() {
                return Ok(Some(f));
            }
            let tail_a = self.map.atomic_u64(r.tail);
            let head_a = self.map.atomic_u64(r.head);
            let head = head_a.load(Ordering::Relaxed);
            let tail = tail_a.load(Ordering::Acquire);
            if tail != head {
                self.consume_wire_frame(&mut pending, head, tail)?;
                continue;
            }
            // Empty. Declare ourselves parked *before* the final check —
            // the Dekker handshake with the producer's publish path —
            // so the executor's next poll cannot miss a frame published
            // in between.
            if let Some(_db) = &self.doorbells {
                self.map
                    .atomic_u32(self.my_parked)
                    .store(1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if tail_a.load(Ordering::SeqCst) != head {
                    self.map
                        .atomic_u32(self.my_parked)
                        .store(0, Ordering::SeqCst);
                    continue;
                }
            }
            if peer_gone(&self.sock) {
                return Err(TransportError::Disconnected);
            }
            return Ok(None);
        }
    }

    fn enter_event_mode(&self) -> bool {
        // Event mode needs the doorbell: ring traffic never touches a
        // pollable fd otherwise. Doorbell-less peers keep a dedicated
        // blocking thread.
        self.doorbells.is_some()
    }

    fn event_fds(&self) -> Vec<i32> {
        match &self.doorbells {
            Some(db) => vec![db.mine.raw(), self.sock.as_raw_fd()],
            None => Vec::new(),
        }
    }
}

// ---- handshake -------------------------------------------------------------

/// Client half of the handshake: name the ring file and its capacity.
/// This is the doorbell-less legacy form (kept as the wire baseline —
/// and as the hand-rolled-hostile-client path the tests exercise);
/// [`send_hello_with_bells`] is what the dialer actually uses.
#[cfg_attr(not(test), allow(dead_code))]
fn send_hello(sock: &UnixStream, path: &Path, capacity: u32) -> Result<(), TransportError> {
    let bytes = path.as_os_str().as_encoded_bytes();
    let mut msg = Vec::with_capacity(12 + bytes.len());
    msg.extend_from_slice(&PREAMBLE);
    msg.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    msg.extend_from_slice(bytes);
    msg.extend_from_slice(&capacity.to_le_bytes());
    (&*sock)
        .write_all(&msg)
        .map_err(|e| io_err("handshake", &e))
}

/// [`send_hello`] with the two doorbell eventfds riding `SCM_RIGHTS` on
/// the preamble bytes (`[client's bell, server's bell]`). The rest of
/// the hello travels as plain stream bytes, so a server reads it
/// identically either way.
fn send_hello_with_bells(
    sock: &UnixStream,
    path: &Path,
    capacity: u32,
    client_bell: &sys::OwnedFd,
    server_bell: &sys::OwnedFd,
) -> Result<(), TransportError> {
    let sent = sys::send_with_fds(
        sock.as_raw_fd(),
        &PREAMBLE,
        &[client_bell.raw(), server_bell.raw()],
    )
    .map_err(|e| io_err("handshake", &e))?;
    if sent != PREAMBLE.len() {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::WriteZero,
            detail: format!("short preamble sendmsg ({sent} of 4 bytes)"),
        });
    }
    let bytes = path.as_os_str().as_encoded_bytes();
    let mut msg = Vec::with_capacity(8 + bytes.len());
    msg.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    msg.extend_from_slice(bytes);
    msg.extend_from_slice(&capacity.to_le_bytes());
    (&*sock)
        .write_all(&msg)
        .map_err(|e| io_err("handshake", &e))
}

/// Server half: read the hello, validate, map the ring file. Collects
/// the doorbell fds if the client attached them (`None` otherwise —
/// the connection then uses fallback parking).
fn read_hello(sock: &UnixStream) -> Result<(PathBuf, u32, Option<Doorbells>), TransportError> {
    // The preamble comes via recvmsg so an attached SCM_RIGHTS payload
    // is collected; a plain-write legacy hello yields the same bytes
    // with no fds. Loop in case the kernel splits the 4 bytes.
    let mut preamble = [0u8; 4];
    let mut got = 0usize;
    let mut fds = Vec::new();
    while got < 4 {
        let (n, mut newfds) = sys::recv_with_fds(sock.as_raw_fd(), &mut preamble[got..], 2)
            .map_err(|e| io_err("handshake", &e))?;
        if n == 0 {
            return Err(TransportError::Disconnected);
        }
        got += n;
        fds.append(&mut newfds);
    }
    frame::check_preamble(&preamble)?;
    // Exactly two fds form a doorbell pair (ours is the second); any
    // other count is a peer playing games — ignore the fds, keep the
    // connection on fallback parking.
    let doorbells = if fds.len() == 2 {
        let server_bell = fds.pop().expect("two fds");
        let client_bell = fds.pop().expect("two fds");
        Some(Doorbells {
            mine: server_bell,
            peers: client_bell,
        })
    } else {
        None
    };
    let mut len_bytes = [0u8; 4];
    (&*sock)
        .read_exact(&mut len_bytes)
        .map_err(|e| io_err("handshake", &e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > 4096 {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring path length {len} out of range"),
        });
    }
    let mut path_bytes = vec![0u8; len];
    (&*sock)
        .read_exact(&mut path_bytes)
        .map_err(|e| io_err("handshake", &e))?;
    let mut cap_bytes = [0u8; 4];
    (&*sock)
        .read_exact(&mut cap_bytes)
        .map_err(|e| io_err("handshake", &e))?;
    let capacity = u32::from_le_bytes(cap_bytes);
    if !capacity.is_power_of_two() || !(MIN_CAPACITY..=MAX_CAPACITY).contains(&capacity) {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring capacity {capacity} invalid"),
        });
    }
    // Lossless round trip: the bytes came from as_encoded_bytes on the
    // client; treat them as a platform path verbatim.
    let path =
        PathBuf::from(unsafe { std::ffi::OsString::from_encoded_bytes_unchecked(path_bytes) });
    Ok((path, capacity, doorbells))
}

fn validate_header(map: &RawMap, capacity: u32) -> Result<(), TransportError> {
    let magic = map.atomic_u64(OFF_MAGIC).load(Ordering::Acquire);
    if magic != SHM_MAGIC {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring file magic {magic:#x} != {SHM_MAGIC:#x}"),
        });
    }
    let version = map.atomic_u32(OFF_VERSION).load(Ordering::Acquire);
    if version != frame::TRANSPORT_VERSION as u32 {
        return Err(TransportError::VersionMismatch {
            got: version as u8,
            want: frame::TRANSPORT_VERSION,
        });
    }
    let cap = map.atomic_u32(OFF_CAPACITY).load(Ordering::Acquire);
    if cap != capacity {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring header capacity {cap} != hello capacity {capacity}"),
        });
    }
    Ok(())
}

// ---- listener / dialer -----------------------------------------------------

/// Identity of a mapped ring file: `(device, inode)`. The SPSC ring
/// discipline tolerates exactly one server-side endpoint per file; the
/// listener tracks live claims so a hostile client cannot alias one
/// ring file into two connections (two server producers on one ring
/// would race inside the trusted manager).
type RingFileId = (u64, u64);

/// Registry entry held by a server-side connection; frees the ring-file
/// claim when the connection drops.
struct RingClaim {
    id: RingFileId,
    registry: Arc<Mutex<std::collections::HashSet<RingFileId>>>,
}

impl Drop for RingClaim {
    fn drop(&mut self) {
        self.registry.lock().remove(&self.id);
    }
}

/// Server side: accepts shared-memory connections handshaken over a Unix
/// socket at a well-known path.
pub struct ShmListener {
    listener: UnixListener,
    path: PathBuf,
    stop: Arc<AtomicBool>,
    policy: UidPolicy,
    /// Optional per-uid connect-rate gate on the handshake socket.
    admission: Option<Arc<crate::control::Admission>>,
    /// Ring files currently mapped by live server connections.
    mapped: Arc<Mutex<std::collections::HashSet<RingFileId>>>,
}

impl ShmListener {
    /// Bind the handshake socket at `path` (replacing any stale file).
    /// Returns the listener and an `unblock` closure for shutdown, as
    /// [`UdsListener::bind`](super::uds::UdsListener::bind) does.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when binding fails.
    pub fn bind(path: &Path) -> Result<(Self, super::UnblockFn), TransportError> {
        Self::bind_with_policy(path, UidPolicy::AllowAll)
    }

    /// [`ShmListener::bind`] with an `SO_PEERCRED` uid policy on the
    /// handshake socket — the ring file is only ever opened for peers
    /// the policy admits.
    ///
    /// # Errors
    ///
    /// As [`ShmListener::bind`].
    pub fn bind_with_policy(
        path: &Path,
        policy: UidPolicy,
    ) -> Result<(Self, super::UnblockFn), TransportError> {
        Self::bind_gated(path, policy, None)
    }

    /// [`ShmListener::bind_with_policy`] with an optional per-uid
    /// connect-rate gate ([`Admission`](crate::control::Admission)) on
    /// the handshake socket: over-rate peers are dropped before their
    /// hello is read (their ring file is never opened).
    ///
    /// # Errors
    ///
    /// As [`ShmListener::bind`].
    pub fn bind_gated(
        path: &Path,
        policy: UidPolicy,
        admission: Option<Arc<crate::control::Admission>>,
    ) -> Result<(Self, super::UnblockFn), TransportError> {
        if path.exists() {
            std::fs::remove_file(path).map_err(|e| io_err("bind", &e))?;
        }
        let listener = UnixListener::bind(path).map_err(|e| io_err("bind", &e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let unblock = {
            let stop = stop.clone();
            let path = path.to_path_buf();
            Box::new(move || {
                stop.store(true, Ordering::SeqCst);
                let _ = UnixStream::connect(&path);
            })
        };
        Ok((
            ShmListener {
                listener,
                path: path.to_path_buf(),
                stop,
                policy,
                admission,
                mapped: Arc::new(Mutex::new(std::collections::HashSet::new())),
            },
            unblock,
        ))
    }
}

/// Server half of the hello: validate, open, claim, and map the ring
/// file the client named. Runs on the accepted connection's own session
/// thread (see [`PendingShmConnection`]), never on the accept loop.
fn complete_server_handshake(
    sock: &UnixStream,
    mapped: &Arc<Mutex<std::collections::HashSet<RingFileId>>>,
) -> Result<(RawMap, u32, Option<Doorbells>, RingClaim), TransportError> {
    use std::os::unix::fs::{MetadataExt, OpenOptionsExt};

    sock.set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| io_err("handshake", &e))?;
    let (ring_path, capacity, doorbells) = read_hello(sock)?;
    // O_NOFOLLOW | O_NONBLOCK (asm-generic Linux values, shared by
    // x86_64 and aarch64): the path is attacker-controlled, so refuse
    // symlinks outright and never block inside open(2) on a smuggled
    // FIFO. O_NONBLOCK on a regular file is a no-op for mmap/IO here.
    const O_NONBLOCK: i32 = 0o4000;
    const O_NOFOLLOW: i32 = 0o400000;
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .custom_flags(O_NOFOLLOW | O_NONBLOCK)
        .open(&ring_path)
        .map_err(|e| io_err("handshake", &e))?;
    let meta = file.metadata().map_err(|e| io_err("handshake", &e))?;
    // Only plain files are mappable ring backings; a FIFO, device
    // node, or socket smuggled in by path is an attack, not a ring.
    if !meta.file_type().is_file() {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring path {} is not a regular file", ring_path.display()),
        });
    }
    let need = file_len(capacity);
    let have = meta.len();
    if have < need {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("ring file is {have} bytes, need {need}"),
        });
    }
    // Claim the file by (device, inode): one server endpoint per
    // ring, or the SPSC invariant the unsafe ring code relies on is
    // gone. The claim is released when the connection drops.
    let id: RingFileId = (meta.dev(), meta.ino());
    if !mapped.lock().insert(id) {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::AlreadyExists,
            detail: "ring file already serves another live connection".into(),
        });
    }
    let claim = RingClaim {
        id,
        registry: mapped.clone(),
    };
    let map = RawMap::map(&file, need as usize)?;
    validate_header(&map, capacity)?;
    // Ready byte: the client may unlink the file once we have it
    // mapped (the mapping outlives the directory entry).
    (&*sock)
        .write_all(&[1])
        .map_err(|e| io_err("handshake", &e))?;
    sock.set_nonblocking(true)
        .map_err(|e| io_err("handshake", &e))?;
    Ok((map, capacity, doorbells, claim))
}

/// A freshly accepted server half whose hello has not been read yet.
/// The handshake runs on the first send/recv — in the manager, that is
/// the connection's own session thread — so a client that connects and
/// stalls wedges only itself, never the accept loop.
struct PendingShmConnection {
    state: Mutex<ShmServerState>,
    /// `SO_PEERCRED` uid captured from the handshake socket at accept.
    peer_uid: Option<u32>,
}

enum ShmServerState {
    Pending {
        sock: UnixStream,
        mapped: Arc<Mutex<std::collections::HashSet<RingFileId>>>,
    },
    Ready(ShmConnection),
    /// Handshake failed; every subsequent op repeats the refusal.
    Failed,
}

impl PendingShmConnection {
    /// Run the handshake if it hasn't happened, then apply `f` to the
    /// live connection. The state lock is held across `f`; server-side
    /// connections are driven by a single session thread, so this
    /// serializes nothing that was concurrent before.
    fn with_ready<R>(
        &self,
        f: impl FnOnce(&ShmConnection) -> Result<R, TransportError>,
    ) -> Result<R, TransportError> {
        let mut state = self.state.lock();
        if let ShmServerState::Pending { sock, mapped } = &*state {
            match complete_server_handshake(sock, mapped) {
                Ok((map, capacity, doorbells, claim)) => {
                    // The socket moves into the connection; replace the
                    // state wholesale.
                    let old = std::mem::replace(&mut *state, ShmServerState::Failed);
                    let ShmServerState::Pending { sock, .. } = old else {
                        unreachable!("state checked above");
                    };
                    *state = ShmServerState::Ready(ShmConnection::new(
                        map,
                        sock,
                        capacity,
                        Side::Server,
                        doorbells,
                        Some(claim),
                    ));
                }
                Err(e) => {
                    *state = ShmServerState::Failed;
                    return Err(e);
                }
            }
        }
        match &*state {
            ShmServerState::Ready(conn) => f(conn),
            ShmServerState::Failed => Err(TransportError::Disconnected),
            ShmServerState::Pending { .. } => unreachable!("handshake just ran"),
        }
    }
}

impl Connection for PendingShmConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.with_ready(|c| c.send(frame))
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.with_ready(|c| c.recv())
    }

    fn send_batch(&self, frames: Vec<Vec<u8>>) -> Result<(), TransportError> {
        self.with_ready(|c| c.send_batch(frames))
    }

    fn try_recv(&self) -> Result<Option<FrameView>, TransportError> {
        // The first call runs the deferred handshake (bounded by
        // HANDSHAKE_TIMEOUT) on the executor worker that saw the hello
        // bytes arrive.
        self.with_ready(|c| c.try_recv())
    }

    fn enter_event_mode(&self) -> bool {
        // Adoptable: before the handshake the hello's arrival is itself
        // a socket-readable event. Whether the *ring* can be event-driven
        // is only known post-handshake — the executor re-queries
        // `event_fds` after each drain and demotes to a dedicated thread
        // if the client sent no doorbells.
        true
    }

    fn event_fds(&self) -> Vec<i32> {
        match &*self.state.lock() {
            ShmServerState::Pending { sock, .. } => vec![sock.as_raw_fd()],
            ShmServerState::Ready(c) => c.event_fds(),
            ShmServerState::Failed => Vec::new(),
        }
    }

    fn peer_uid(&self) -> Option<u32> {
        self.peer_uid
    }
}

impl Listener for ShmListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        loop {
            let (sock, _) = self.listener.accept().map_err(|e| io_err("accept", &e))?;
            if self.stop.load(Ordering::SeqCst) {
                return Err(TransportError::Disconnected);
            }
            // Credential gate: a peer the uid policy rejects is dropped
            // before the hello — its ring file is never opened or
            // mapped.
            if !self.policy.check(&sock) {
                drop(sock);
                continue;
            }
            let uid = super::peercred::peer_uid(&sock).ok();
            // Rate gate next: an over-rate uid is dropped before its
            // hello is read, and the loop moves on.
            if let (Some(adm), Some(uid)) = (&self.admission, uid) {
                if !adm.admit(uid) {
                    drop(sock);
                    continue;
                }
            }
            // The hello is deferred to the connection's first send/recv
            // (its session thread), keeping the accept loop un-wedgeable.
            return Ok(Box::new(PendingShmConnection {
                state: Mutex::new(ShmServerState::Pending {
                    sock,
                    mapped: self.mapped.clone(),
                }),
                peer_uid: uid,
            }));
        }
    }
}

impl Drop for ShmListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Client side: creates a ring file per connection and hands it to the
/// listener over the handshake socket.
pub struct ShmDialer {
    path: PathBuf,
    capacity: u32,
}

static RING_SEQ: AtomicU64 = AtomicU64::new(0);

impl ShmDialer {
    /// A dialer for the handshake socket at `path` with the default ring
    /// capacity.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self::with_capacity(path, DEFAULT_RING_CAPACITY)
    }

    /// A dialer creating rings of `capacity` bytes per direction
    /// (power of two, 4 KiB – 1 GiB).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range capacity — a build-time configuration
    /// error, not a runtime condition.
    pub fn with_capacity(path: impl AsRef<Path>, capacity: u32) -> Self {
        assert!(
            capacity.is_power_of_two() && (MIN_CAPACITY..=MAX_CAPACITY).contains(&capacity),
            "ring capacity {capacity} must be a power of two in [{MIN_CAPACITY}, {MAX_CAPACITY}]"
        );
        ShmDialer {
            path: path.as_ref().to_path_buf(),
            capacity,
        }
    }
}

impl Dialer for ShmDialer {
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError> {
        // Create and initialize the ring file.
        let seq = RING_SEQ.fetch_add(1, Ordering::Relaxed);
        let ring_path =
            std::env::temp_dir().join(format!("grd-ring-{}-{seq}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .map_err(|e| io_err("dial", &e))?;
        // Best-effort unlink on any early-exit path below.
        struct UnlinkGuard<'a>(Option<&'a Path>);
        impl Drop for UnlinkGuard<'_> {
            fn drop(&mut self) {
                if let Some(p) = self.0 {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
        let mut guard = UnlinkGuard(Some(&ring_path));
        file.set_len(file_len(self.capacity))
            .map_err(|e| io_err("dial", &e))?;
        let map = RawMap::map(&file, file_len(self.capacity) as usize)?;
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(self.capacity, Ordering::Release);
        // Magic last: a file without it is never a valid ring.
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);

        // Handshake over the socket, doorbell eventfds attached: the
        // client keeps the originals, the server gets kernel-duplicated
        // descriptors of the same eventfd objects.
        let client_bell = sys::eventfd_new().map_err(|e| io_err("dial", &e))?;
        let server_bell = sys::eventfd_new().map_err(|e| io_err("dial", &e))?;
        let sock = UnixStream::connect(&self.path).map_err(|e| io_err("dial", &e))?;
        sock.set_read_timeout(Some(HANDSHAKE_TIMEOUT))
            .map_err(|e| io_err("handshake", &e))?;
        send_hello_with_bells(&sock, &ring_path, self.capacity, &client_bell, &server_bell)?;
        let mut ready = [0u8; 1];
        (&sock)
            .read_exact(&mut ready)
            .map_err(|e| io_err("handshake", &e))?;
        if ready[0] != 1 {
            return Err(TransportError::Io {
                op: "handshake",
                kind: std::io::ErrorKind::InvalidData,
                detail: format!("listener rejected ring (ready byte {})", ready[0]),
            });
        }
        sock.set_nonblocking(true)
            .map_err(|e| io_err("handshake", &e))?;
        // Both sides hold the mapping; the directory entry can go. After
        // this point even SIGKILL leaks nothing on disk.
        let _ = std::fs::remove_file(&ring_path);
        guard.0 = None;
        Ok(Box::new(ShmConnection::new(
            map,
            sock,
            self.capacity,
            Side::Client,
            Some(Doorbells {
                mine: client_bell,
                peers: server_bell,
            }),
            None,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn temp_sock(tag: &str) -> PathBuf {
        crate::fixtures::temp_socket_path(&format!("shm-test-{tag}"))
    }

    #[test]
    fn frames_round_trip_through_the_ring() {
        let path = temp_sock("rt");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let dialer = ShmDialer::with_capacity(&path, 4096);
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            for _ in 0..3 {
                let f = server.recv().unwrap();
                server.send(f.iter().rev().copied().collect()).unwrap();
            }
            server
        });
        let client = dialer.dial().unwrap();
        for len in [0usize, 5, 1000] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            client.send(payload.clone()).unwrap();
            let mut expect = payload;
            expect.reverse();
            assert_eq!(client.recv().unwrap(), expect);
        }
        drop(client);
        let server = server_thread.join().unwrap();
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn wraparound_and_backpressure() {
        // Ring holds 4096 bytes/direction; push far more than a ring's
        // worth of frames with a slow consumer so the producer both wraps
        // and waits.
        let path = temp_sock("wrap");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let dialer = ShmDialer::with_capacity(&path, 4096);
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            let mut total = 0u64;
            for i in 0..200u32 {
                let f = server.recv().unwrap();
                assert_eq!(f.len(), 300);
                assert!(f.iter().all(|&b| b == i as u8), "frame {i} corrupted");
                total += f.len() as u64;
                if i % 16 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            total
        });
        let client = dialer.dial().unwrap();
        for i in 0..200u32 {
            client.send(vec![i as u8; 300]).unwrap();
        }
        assert_eq!(server_thread.join().unwrap(), 200 * 300);
        drop(client);
    }

    #[test]
    fn oversized_frame_fails_locally() {
        let path = temp_sock("big");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        // The server half completes the deferred handshake via its first
        // op (in the manager this is the session thread's first recv).
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(Vec::new()).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        assert!(matches!(
            client.send(vec![0u8; 5000]),
            Err(TransportError::FrameTooLarge { len: 5000, .. })
        ));
        drop(client);
        drop(accept_thread.join().unwrap());
    }

    #[test]
    fn frames_survive_peer_death_until_drained() {
        // The producer writes frames then vanishes (drop = socket EOF);
        // the consumer must still drain every published frame before
        // reporting Disconnected.
        let path = temp_sock("drain");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        // First server op completes the deferred handshake so the dial
        // below can return; the marker frame is never read by anyone.
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(vec![0xFE]).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 65536).dial().unwrap();
        for i in 0..10u8 {
            client.send(vec![i; 64]).unwrap();
        }
        drop(client);
        let server = accept_thread.join().unwrap();
        for i in 0..10u8 {
            assert_eq!(server.recv().unwrap(), vec![i; 64]);
        }
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn ring_file_is_unlinked_after_handshake() {
        let path = temp_sock("unlink");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(Vec::new()).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        let _server = accept_thread.join().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!("grd-ring-{}-", std::process::id())))
            .collect();
        assert!(leftovers.is_empty(), "ring files leaked: {leftovers:?}");
        drop(client);
    }

    /// Peer-writable counters are untrusted input: a consumer head
    /// stored "ahead" of the producer's tail must fail the send with a
    /// protocol error, not underflow the free-space computation. The
    /// hostile client here never builds a `ShmConnection` at all — it
    /// holds its own raw mapping of the ring file, exactly as a
    /// malicious tenant would.
    #[test]
    fn hostile_head_counter_fails_send_without_panic() {
        let path = temp_sock("hostile");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            // First op runs the deferred handshake (unblocking the
            // client's wait for the ready byte) and proves a clean send.
            c.send(vec![9]).unwrap();
            c
        });
        // Hand-rolled hostile client: create + map the ring, handshake.
        let capacity = 4096u32;
        let ring_path =
            std::env::temp_dir().join(format!("grd-hostile-ring-{}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .unwrap();
        file.set_len(file_len(capacity)).unwrap();
        let map = RawMap::map(&file, file_len(capacity) as usize).unwrap();
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(capacity, Ordering::Release);
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);
        let sock = UnixStream::connect(&path).unwrap();
        send_hello(&sock, &ring_path, capacity).unwrap();
        let mut ready = [0u8; 1];
        (&sock).read_exact(&mut ready).unwrap();
        assert_eq!(ready[0], 1);
        let _ = std::fs::remove_file(&ring_path);
        let server = accept_thread.join().unwrap();
        // The attack: publish an impossible s2c consumer head.
        map.atomic_u64(OFF_S2C_HEAD)
            .store(u64::MAX / 2, Ordering::Release);
        match server.send(vec![1, 2, 3]) {
            Err(TransportError::Io { op: "send", .. }) => {}
            other => panic!("hostile head produced {other:?}"),
        }
    }

    /// One ring file, one connection: a client replaying the same ring
    /// path in a second handshake is rejected, because two server-side
    /// producers on one ring would break the SPSC discipline.
    #[test]
    fn aliased_ring_file_is_rejected() {
        let path = temp_sock("alias");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let first = listener.accept().unwrap();
            let r1 = first.send(Vec::new());
            let second = listener.accept().unwrap();
            let r2 = second.send(Vec::new());
            (first, r1, r2)
        });
        // Legitimate dial, but capture the ring path before it is
        // unlinked by racing the dialer: hand-roll the handshake twice
        // with one file instead.
        let capacity = 4096u32;
        let ring_path =
            std::env::temp_dir().join(format!("grd-alias-ring-{}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .unwrap();
        file.set_len(file_len(capacity)).unwrap();
        let map = RawMap::map(&file, file_len(capacity) as usize).unwrap();
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(capacity, Ordering::Release);
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);

        let dial_once = || -> std::io::Result<u8> {
            let sock = UnixStream::connect(&path)?;
            send_hello(&sock, &ring_path, capacity).map_err(std::io::Error::other)?;
            let mut ready = [0u8; 1];
            (&sock).read_exact(&mut ready)?;
            // Leak the socket so the first connection stays alive for
            // the duration of the test.
            std::mem::forget(sock);
            Ok(ready[0])
        };
        assert_eq!(dial_once().unwrap(), 1, "first handshake accepted");
        // Second handshake naming the same file: the claim conflict
        // fails that connection (we observe EOF instead of a ready
        // byte), while the first connection stays healthy.
        let r = dial_once();
        assert!(
            r.is_err(),
            "aliased ring handshake must be rejected, got {r:?}"
        );
        let (_first, r1, r2) = accept_thread.join().unwrap();
        assert!(r1.is_ok(), "first connection must serve: {r1:?}");
        assert!(
            matches!(
                r2,
                Err(TransportError::Io {
                    op: "handshake",
                    kind: std::io::ErrorKind::AlreadyExists,
                    ..
                })
            ),
            "aliased claim produced {r2:?}"
        );
        let _ = std::fs::remove_file(&ring_path);
    }

    /// Regression gate for the satellite: a SIGKILLed (here: dropped —
    /// the kernel closes the socket either way) peer must be detected in
    /// well under 100 ms by a receiver that is idle-parked on its
    /// doorbell, because the park multiplexes the eventfd *and* the
    /// socket fd in one poll. The old spin→yield→sleep ladder only
    /// probed the socket once per wakeup, so a sleeping receiver could
    /// lag a full sleep quantum behind the death.
    #[test]
    fn dead_peer_is_detected_quickly_from_an_idle_park() {
        let path = temp_sock("deadpeer");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(Vec::new()).unwrap(); // completes the deferred handshake
            let start = Instant::now();
            let r = c.recv();
            (r, start.elapsed())
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        assert!(client.enter_event_mode(), "dialer must negotiate bells");
        // Give the server time to pass the spin/yield phases and park.
        std::thread::sleep(Duration::from_millis(50));
        drop(client);
        let (r, elapsed) = accept_thread.join().unwrap();
        assert_eq!(r, Err(TransportError::Disconnected));
        assert!(
            elapsed < Duration::from_millis(100),
            "parked receiver took {elapsed:?} to notice the dead peer"
        );
    }

    /// A batched send must arrive as the individual frames, in order,
    /// and the doorbell wakes the parked receiver for it.
    #[test]
    fn batch_round_trips_through_the_ring() {
        let path = temp_sock("batch");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            let mut got = Vec::new();
            for _ in 0..4 {
                got.push(server.recv().unwrap());
            }
            server
                .send_batch(vec![vec![7; 9], vec![], vec![8]])
                .unwrap();
            got
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        let frames = vec![vec![1u8, 2, 3], Vec::new(), vec![4u8; 500], vec![5u8]];
        client.send_batch(frames.clone()).unwrap();
        for expect in [vec![7u8; 9], Vec::new(), vec![8u8]] {
            assert_eq!(client.recv().unwrap(), expect);
        }
        assert_eq!(server_thread.join().unwrap(), frames);
    }

    /// A batch whose combined body exceeds the ring capacity degrades
    /// to sequential plain sends instead of failing.
    #[test]
    fn oversized_batch_degrades_to_sequential_sends() {
        let path = temp_sock("bigbatch");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            (0..4)
                .map(|_| server.recv().unwrap().len())
                .collect::<Vec<_>>()
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        // 4 × 1500 B > 4096 B ring: the combined body can never fit in
        // one wire frame, but each member fits on its own.
        client.send_batch(vec![vec![0u8; 1500]; 4]).unwrap();
        assert_eq!(server_thread.join().unwrap(), vec![1500; 4]);
        drop(client);
    }

    /// Event-mode contract: `try_recv` never blocks, returns queued
    /// frames in order, and reports `Disconnected` once the peer is
    /// gone and the ring is drained.
    #[test]
    fn try_recv_is_nonblocking_and_drains_before_disconnect() {
        let path = temp_sock("tryrecv");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            c.send(Vec::new()).unwrap();
            c
        });
        let client = ShmDialer::with_capacity(&path, 4096).dial().unwrap();
        let server = accept_thread.join().unwrap();
        assert!(server.enter_event_mode());
        assert_eq!(server.event_fds().len(), 2, "doorbell + socket");
        assert_eq!(server.try_recv().unwrap(), None);
        client.send_batch(vec![vec![1], vec![2, 2]]).unwrap();
        client.send(vec![3, 3, 3]).unwrap();
        // The frames are already published when the sends return; no
        // polling loop is needed on the consumer side.
        assert_eq!(
            server.try_recv().unwrap().map(|f| f.into_vec()),
            Some(vec![1])
        );
        assert_eq!(
            server.try_recv().unwrap().map(|f| f.into_vec()),
            Some(vec![2, 2])
        );
        assert_eq!(
            server.try_recv().unwrap().map(|f| f.into_vec()),
            Some(vec![3, 3, 3])
        );
        drop(client);
        // Drained + dead peer → Disconnected (possibly after the close
        // propagates through the socket).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match server.try_recv() {
                Err(TransportError::Disconnected) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                other => panic!("expected eventual Disconnected, got {other:?}"),
            }
        }
    }

    /// A legacy hello (no SCM_RIGHTS doorbells) still yields a working
    /// connection: the server falls back to the poll-based park.
    #[test]
    fn doorbell_less_hello_falls_back_cleanly() {
        let path = temp_sock("legacyhello");
        let (listener, _unblock) = ShmListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || {
            let c = listener.accept().unwrap();
            let f = c.recv().unwrap();
            c.send(f).unwrap();
            let start = Instant::now();
            let r = c.recv();
            (r, start.elapsed())
        });
        // Hand-rolled legacy client: create + map the ring, plain hello.
        let capacity = 4096u32;
        let ring_path =
            std::env::temp_dir().join(format!("grd-legacy-ring-{}.shm", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&ring_path)
            .unwrap();
        file.set_len(file_len(capacity)).unwrap();
        let map = RawMap::map(&file, file_len(capacity) as usize).unwrap();
        map.atomic_u32(OFF_VERSION)
            .store(frame::TRANSPORT_VERSION as u32, Ordering::Release);
        map.atomic_u32(OFF_CAPACITY)
            .store(capacity, Ordering::Release);
        map.atomic_u64(OFF_MAGIC)
            .store(SHM_MAGIC, Ordering::Release);
        let sock = UnixStream::connect(&path).unwrap();
        send_hello(&sock, &ring_path, capacity).unwrap();
        let mut ready = [0u8; 1];
        (&sock).read_exact(&mut ready).unwrap();
        assert_eq!(ready[0], 1);
        let _ = std::fs::remove_file(&ring_path);
        let client = ShmConnection::new(map, sock, capacity, Side::Client, None, None);
        client.send(vec![42; 10]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![42; 10]);
        // Death detection also works without bells (1 ms fallback poll).
        drop(client);
        let (r, elapsed) = accept_thread.join().unwrap();
        assert_eq!(r, Err(TransportError::Disconnected));
        assert!(
            elapsed < Duration::from_millis(100),
            "fallback park took {elapsed:?} to notice the dead peer"
        );
    }
}
