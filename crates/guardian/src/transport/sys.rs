//! Minimal raw-syscall surface for the event-driven data plane.
//!
//! The workspace deliberately carries no `libc` crate; like the `mmap`
//! externs in [`super::shm`], this module declares exactly the handful of
//! Linux calls the executor and the ring doorbells need — `eventfd` for
//! wakeups, `epoll` for readiness, `poll` for single-connection parking,
//! and `sendmsg`/`recvmsg` with `SCM_RIGHTS` to pass the doorbell fds
//! across the handshake socket. Everything is wrapped in safe helpers
//! returning `io::Result`, so the transports above never touch a raw
//! pointer.

use std::io;
use std::os::unix::io::RawFd;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;
#[allow(non_camel_case_types)]
type c_void = std::ffi::c_void;

extern "C" {
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn sendmsg(fd: c_int, msg: *const MsgHdr, flags: c_int) -> isize;
    fn recvmsg(fd: c_int, msg: *mut MsgHdr, flags: c_int) -> isize;
}

// asm-generic flag values (x86_64/aarch64 Linux).
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// Readability.
pub const EPOLLIN: u32 = 0x1;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// One-shot delivery: the fd is disarmed after each event and must be
/// rearmed with [`epoll_rearm`] — the executor's single-drainer
/// exclusivity lever.
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// `poll(2)` readability.
pub const POLLIN: i16 = 0x1;
/// `poll(2)` writability.
pub const POLLOUT: i16 = 0x4;

const SOL_SOCKET: c_int = 1;
const SCM_RIGHTS: c_int = 1;
const MSG_CMSG_CLOEXEC: c_int = 0x4000_0000;

/// `struct epoll_event`. Packed on x86_64 (the kernel ABI), natural
/// alignment elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Event mask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller cookie, returned verbatim by `epoll_wait`.
    pub data: u64,
}

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// Descriptor to poll.
    pub fd: RawFd,
    /// Requested events.
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

#[repr(C)]
struct IoVec {
    base: *mut c_void,
    len: usize,
}

// 64-bit Linux msghdr layout (int msg_flags padded to the end).
#[repr(C)]
struct MsgHdr {
    msg_name: *mut c_void,
    msg_namelen: u32,
    msg_iov: *mut IoVec,
    msg_iovlen: usize,
    msg_control: *mut c_void,
    msg_controllen: usize,
    msg_flags: c_int,
}

// 64-bit cmsghdr: size_t len, int level, int type — 16 bytes, data
// follows at the next usize boundary (i.e. immediately).
const CMSG_HDR: usize = 16;
const fn cmsg_align(n: usize) -> usize {
    (n + 7) & !7
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// An owned file descriptor closed on drop.
#[derive(Debug)]
pub struct OwnedFd(RawFd);

impl OwnedFd {
    /// The raw descriptor (still owned by `self`).
    pub fn raw(&self) -> RawFd {
        self.0
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe {
            close(self.0);
        }
    }
}

/// A fresh non-blocking, close-on-exec eventfd at count 0.
pub fn eventfd_new() -> io::Result<OwnedFd> {
    let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
    if fd < 0 {
        return Err(last_os_error());
    }
    Ok(OwnedFd(fd))
}

/// Ring the doorbell: add 1 to the eventfd counter. Never blocks (the
/// counter saturating at `u64::MAX - 1` would return `EAGAIN`, which is
/// fine — the peer is already signalled).
pub fn eventfd_signal(fd: RawFd) {
    let one = 1u64.to_ne_bytes();
    unsafe {
        write(fd, one.as_ptr() as *const c_void, 8);
    }
}

/// Drain a non-blocking eventfd back to 0. Returns `true` when a signal
/// had been pending.
pub fn eventfd_drain(fd: RawFd) -> bool {
    let mut buf = [0u8; 8];
    unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, 8) == 8 }
}

/// `poll(2)` the given (fd, events) pairs. Returns the revents of each
/// entry (0 = not ready); all-zero means the timeout elapsed. EINTR is
/// treated as a timeout — callers loop anyway.
pub fn poll_fds(entries: &[(RawFd, i16)], timeout_ms: i32) -> Vec<i16> {
    let mut fds: Vec<PollFd> = entries
        .iter()
        .map(|&(fd, events)| PollFd {
            fd,
            events,
            revents: 0,
        })
        .collect();
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if n <= 0 {
        return vec![0; entries.len()];
    }
    fds.iter().map(|p| p.revents).collect()
}

/// An owned epoll instance.
pub struct Epoll(OwnedFd);

impl Epoll {
    /// A fresh close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(Epoll(OwnedFd(fd)))
    }

    /// Register `fd` with `events` and the caller cookie `data`.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Rearm a one-shot registration (EPOLL_CTL_MOD).
    pub fn rearm(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregister `fd`. Errors are ignored — the fd may already be
    /// closed, which deregisters implicitly.
    pub fn del(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait up to `timeout_ms` (-1 = forever) for events. EINTR yields
    /// an empty set.
    pub fn wait(&self, max_events: usize, timeout_ms: i32) -> Vec<(u32, u64)> {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; max_events.max(1)];
        let n = unsafe {
            epoll_wait(
                self.0.raw(),
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n <= 0 {
            return Vec::new();
        }
        events[..n as usize]
            .iter()
            .map(|e| {
                let ev = *e;
                (ev.events, ev.data)
            })
            .collect()
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let rc = unsafe { epoll_ctl(self.0.raw(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }
}

/// `sendmsg` `bytes` on `sock` with `fds` attached as one `SCM_RIGHTS`
/// control message. Returns the number of payload bytes sent.
pub fn send_with_fds(sock: RawFd, bytes: &[u8], fds: &[RawFd]) -> io::Result<usize> {
    let mut iov = IoVec {
        base: bytes.as_ptr() as *mut c_void,
        len: bytes.len(),
    };
    let space = CMSG_HDR + cmsg_align(fds.len() * 4);
    // u64 storage guarantees the kernel's cmsg alignment.
    let mut control = vec![0u64; space.div_ceil(8)];
    {
        let ctrl = control.as_mut_ptr() as *mut u8;
        let len_field = (CMSG_HDR + fds.len() * 4) as u64;
        unsafe {
            std::ptr::copy_nonoverlapping(len_field.to_ne_bytes().as_ptr(), ctrl, 8);
            std::ptr::copy_nonoverlapping(SOL_SOCKET.to_ne_bytes().as_ptr(), ctrl.add(8), 4);
            std::ptr::copy_nonoverlapping(SCM_RIGHTS.to_ne_bytes().as_ptr(), ctrl.add(12), 4);
            for (i, fd) in fds.iter().enumerate() {
                std::ptr::copy_nonoverlapping(
                    fd.to_ne_bytes().as_ptr(),
                    ctrl.add(CMSG_HDR + i * 4),
                    4,
                );
            }
        }
    }
    let msg = MsgHdr {
        msg_name: std::ptr::null_mut(),
        msg_namelen: 0,
        msg_iov: &mut iov,
        msg_iovlen: 1,
        msg_control: if fds.is_empty() {
            std::ptr::null_mut()
        } else {
            control.as_mut_ptr() as *mut c_void
        },
        msg_controllen: if fds.is_empty() { 0 } else { space },
        msg_flags: 0,
    };
    let n = unsafe { sendmsg(sock, &msg, 0) };
    if n < 0 {
        return Err(last_os_error());
    }
    Ok(n as usize)
}

/// `recvmsg` into `buf`, collecting up to `max_fds` descriptors from an
/// attached `SCM_RIGHTS` control message (close-on-exec). Returns the
/// payload byte count and the received fds (owned — unclaimed fds are
/// closed when the vec drops).
pub fn recv_with_fds(
    sock: RawFd,
    buf: &mut [u8],
    max_fds: usize,
) -> io::Result<(usize, Vec<OwnedFd>)> {
    let mut iov = IoVec {
        base: buf.as_mut_ptr() as *mut c_void,
        len: buf.len(),
    };
    let space = CMSG_HDR + cmsg_align(max_fds * 4);
    let mut control = vec![0u64; space.div_ceil(8)];
    let mut msg = MsgHdr {
        msg_name: std::ptr::null_mut(),
        msg_namelen: 0,
        msg_iov: &mut iov,
        msg_iovlen: 1,
        msg_control: control.as_mut_ptr() as *mut c_void,
        msg_controllen: space,
        msg_flags: 0,
    };
    let n = unsafe { recvmsg(sock, &mut msg, MSG_CMSG_CLOEXEC) };
    if n < 0 {
        return Err(last_os_error());
    }
    let mut fds = Vec::new();
    if msg.msg_controllen >= CMSG_HDR {
        let ctrl = control.as_ptr() as *const u8;
        let mut len_bytes = [0u8; 8];
        let mut level_bytes = [0u8; 4];
        let mut ty_bytes = [0u8; 4];
        unsafe {
            std::ptr::copy_nonoverlapping(ctrl, len_bytes.as_mut_ptr(), 8);
            std::ptr::copy_nonoverlapping(ctrl.add(8), level_bytes.as_mut_ptr(), 4);
            std::ptr::copy_nonoverlapping(ctrl.add(12), ty_bytes.as_mut_ptr(), 4);
        }
        let cmsg_len = u64::from_ne_bytes(len_bytes) as usize;
        let level = c_int::from_ne_bytes(level_bytes);
        let ty = c_int::from_ne_bytes(ty_bytes);
        if level == SOL_SOCKET && ty == SCM_RIGHTS && cmsg_len > CMSG_HDR {
            let count = ((cmsg_len - CMSG_HDR) / 4).min(max_fds);
            for i in 0..count {
                let mut fd_bytes = [0u8; 4];
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        ctrl.add(CMSG_HDR + i * 4),
                        fd_bytes.as_mut_ptr(),
                        4,
                    );
                }
                fds.push(OwnedFd(RawFd::from_ne_bytes(fd_bytes)));
            }
        }
    }
    Ok((n as usize, fds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn eventfd_signal_drain_round_trip() {
        let efd = eventfd_new().unwrap();
        assert!(!eventfd_drain(efd.raw()), "fresh eventfd has no signal");
        eventfd_signal(efd.raw());
        eventfd_signal(efd.raw());
        assert!(eventfd_drain(efd.raw()), "signalled eventfd drains");
        assert!(!eventfd_drain(efd.raw()), "drain resets the counter");
    }

    #[test]
    fn poll_sees_eventfd_readability() {
        let efd = eventfd_new().unwrap();
        let idle = poll_fds(&[(efd.raw(), POLLIN)], 0);
        assert_eq!(idle[0] & POLLIN, 0);
        eventfd_signal(efd.raw());
        let ready = poll_fds(&[(efd.raw(), POLLIN)], 1000);
        assert_ne!(ready[0] & POLLIN, 0);
    }

    #[test]
    fn epoll_oneshot_delivers_then_disarms_then_rearms() {
        let ep = Epoll::new().unwrap();
        let efd = eventfd_new().unwrap();
        ep.add(efd.raw(), EPOLLIN | EPOLLONESHOT, 42).unwrap();
        eventfd_signal(efd.raw());
        let evs = ep.wait(8, 1000);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].1, 42);
        // One-shot: without a rearm the (still readable) fd stays quiet.
        assert!(ep.wait(8, 50).is_empty());
        ep.rearm(efd.raw(), EPOLLIN | EPOLLONESHOT, 42).unwrap();
        assert_eq!(ep.wait(8, 1000).len(), 1);
        ep.del(efd.raw());
    }

    #[test]
    fn scm_rights_passes_eventfds_across_a_socket() {
        let (a, b) = UnixStream::pair().unwrap();
        let e1 = eventfd_new().unwrap();
        let e2 = eventfd_new().unwrap();
        eventfd_signal(e1.raw());
        let sent = send_with_fds(a.as_raw_fd(), b"hi", &[e1.raw(), e2.raw()]).unwrap();
        assert_eq!(sent, 2);
        let mut buf = [0u8; 2];
        let (n, fds) = recv_with_fds(b.as_raw_fd(), &mut buf, 2).unwrap();
        assert_eq!((n, &buf), (2, b"hi"));
        assert_eq!(fds.len(), 2);
        // The duplicated descriptor shares the eventfd object: the signal
        // written before the transfer is visible through the new fd.
        assert!(eventfd_drain(fds[0].raw()));
        assert!(!eventfd_drain(fds[1].raw()));
    }

    #[test]
    fn plain_stream_bytes_carry_no_fds() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let mut a2 = a.try_clone().unwrap();
        a2.write_all(b"xyz").unwrap();
        let mut buf = [0u8; 3];
        let (n, fds) = recv_with_fds(b.as_raw_fd(), &mut buf, 2).unwrap();
        assert_eq!((n, &buf), (3, b"xyz"));
        assert!(fds.is_empty());
        // And the reverse interleaving: recvmsg'd bytes then plain read.
        send_with_fds(a.as_raw_fd(), b"pq", &[]).unwrap();
        let mut rest = [0u8; 2];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(&rest, b"pq");
    }
}
