//! Unix-domain-socket transport: tenants as real OS processes.
//!
//! Frames travel length-prefixed over `std::os::unix::net` streams (the
//! [`super::frame`] codec handles partial-read reassembly, so however the
//! kernel splits a write, the receiver sees whole frames). EOF — a tenant
//! that exited, crashed, or was `SIGKILL`ed — surfaces as
//! [`TransportError::Disconnected`], which is exactly what the session
//! layer treats as an implicit disconnect: the partition is drained and
//! freed through the same path a polite `Disconnect` frame takes.
//!
//! Each direction of a fresh connection opens with the 4-byte
//! [`frame::PREAMBLE`] so version skew fails the handshake instead of
//! corrupting mid-session frames.

use super::frame::{self, FrameDecoder, FrameView, BATCH_FLAG, MAX_FRAME, PREAMBLE};
use super::peercred::UidPolicy;
use super::{sys, Connection, Dialer, Listener, TransportError};
use parking_lot::Mutex;
use std::io::{IoSlice, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a freshly accepted peer may take to complete the preamble
/// exchange before its session gives up on it. The handshake runs on
/// the connection's own session thread (never the accept loop), so this
/// bounds how long a wedged client can pin one thread, not the daemon.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

fn io_err(op: &'static str, e: &std::io::Error) -> TransportError {
    TransportError::from_io(op, e)
}

/// Exchange preambles on a fresh stream: write ours, read and validate
/// the peer's. Order is safe because both sides write first — 4 bytes
/// always fit in the socket buffer.
fn handshake(stream: &UnixStream) -> Result<(), TransportError> {
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| io_err("handshake", &e))?;
    (&*stream)
        .write_all(&PREAMBLE)
        .map_err(|e| io_err("handshake", &e))?;
    let mut got = [0u8; 4];
    (&*stream)
        .read_exact(&mut got)
        .map_err(|e| io_err("handshake", &e))?;
    frame::check_preamble(&got)?;
    stream
        .set_read_timeout(None)
        .map_err(|e| io_err("handshake", &e))?;
    Ok(())
}

/// Per-connection send state: the writer lock plus a reusable scratch
/// buffer holding the length prefixes for vectored writes, so a
/// steady-state sender allocates nothing per frame or batch.
#[derive(Default)]
struct SendState {
    /// Length-prefix scratch: `[outer word][sub-len][sub-len]…` for a
    /// batch, just the prefix for a single frame. Capacity is retained
    /// across sends.
    prefixes: Vec<u8>,
}

/// One framed Unix-socket connection (either half).
pub struct UdsConnection {
    stream: UnixStream,
    /// Serializes writers so interleaved sends cannot shear a frame;
    /// carries the reusable prefix scratch.
    send_lock: Mutex<SendState>,
    /// Reassembly state; also serializes readers.
    recv_state: Mutex<FrameDecoder>,
    /// `false` on freshly accepted server halves: the preamble exchange
    /// is deferred to the connection's own session thread, so a wedged
    /// or hostile client stalls only itself — never the accept loop.
    handshaken: Mutex<bool>,
    /// `true` once an epoll executor adopted this connection: the stream
    /// goes non-blocking (after the handshake) and frames are pulled via
    /// [`Connection::try_recv`].
    event_mode: AtomicBool,
    /// `SO_PEERCRED` uid, captured at accept on server halves; `None` on
    /// client halves (the peer there is the manager, not a tenant).
    peer_uid: Option<u32>,
}

/// How long a send may sit in `poll(POLLOUT)` waiting for a peer that
/// reads nothing before the connection is declared wedged. Generous: a
/// live manager drains its socket continuously.
const SEND_STALL_TIMEOUT: Duration = Duration::from_secs(10);

impl UdsConnection {
    fn new(stream: UnixStream, handshaken: bool) -> Self {
        Self::with_peer_uid(stream, handshaken, None)
    }

    fn with_peer_uid(stream: UnixStream, handshaken: bool, peer_uid: Option<u32>) -> Self {
        UdsConnection {
            stream,
            send_lock: Mutex::new(SendState::default()),
            recv_state: Mutex::new(FrameDecoder::new(MAX_FRAME)),
            handshaken: Mutex::new(handshaken),
            event_mode: AtomicBool::new(false),
            peer_uid,
        }
    }

    /// Run the deferred preamble exchange once, on whichever thread
    /// touches the connection first (in the manager: the session thread
    /// or executor worker).
    fn ensure_handshaken(&self) -> Result<(), TransportError> {
        let mut done = self.handshaken.lock();
        if !*done {
            handshake(&self.stream)?;
            // Event-mode adoption may have happened before the deferred
            // handshake ran; the stream only goes non-blocking now, so
            // the handshake itself could use read timeouts.
            if self.event_mode.load(Ordering::SeqCst) {
                self.stream
                    .set_nonblocking(true)
                    .map_err(|e| io_err("handshake", &e))?;
            }
            *done = true;
        }
        Ok(())
    }

    /// Gather-write every byte of `parts` in order — one `writev(2)` per
    /// trip to the kernel (via `write_vectored`), so a whole batch of
    /// frames plus its length prefixes goes out as a single syscall in
    /// the common case. Rides out `WouldBlock` on a non-blocking stream
    /// by parking in `poll(POLLOUT)` — bounded so a peer that stops
    /// reading cannot pin an executor worker forever.
    fn send_vectored(&self, parts: &[&[u8]]) -> Result<(), TransportError> {
        /// Linux IOV_MAX; longer part lists loop.
        const MAX_IOV: usize = 1024;
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut written = 0usize;
        let mut stalled = Duration::ZERO;
        let mut iovs: Vec<IoSlice> = Vec::with_capacity(parts.len().min(MAX_IOV));
        while written < total {
            // Rebuild the iov list from the first unwritten byte; cheap
            // relative to the syscall, and partial writes are rare.
            iovs.clear();
            let mut skip = written;
            for p in parts {
                if skip >= p.len() {
                    skip -= p.len();
                    continue;
                }
                iovs.push(IoSlice::new(&p[skip..]));
                skip = 0;
                if iovs.len() == MAX_IOV {
                    break;
                }
            }
            match (&self.stream).write_vectored(&iovs) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    written += n;
                    stalled = Duration::ZERO;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if stalled >= SEND_STALL_TIMEOUT {
                        return Err(TransportError::Io {
                            op: "send",
                            kind: std::io::ErrorKind::TimedOut,
                            detail: "peer stopped reading".into(),
                        });
                    }
                    let step = 100;
                    sys::poll_fds(&[(self.stream.as_raw_fd(), sys::POLLOUT)], step);
                    stalled += Duration::from_millis(step as u64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err("send", &e)),
            }
        }
        Ok(())
    }
}

impl Connection for UdsConnection {
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.ensure_handshaken()?;
        if frame.len() as u64 > MAX_FRAME as u64 {
            return Err(TransportError::FrameTooLarge {
                len: frame.len() as u64,
                max: MAX_FRAME as u64,
            });
        }
        let mut st = self.send_lock.lock();
        st.prefixes.clear();
        st.prefixes
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        // Vectored write: prefix + payload, no coalescing copy.
        self.send_vectored(&[&st.prefixes[..], &frame])
    }

    fn recv(&self) -> Result<Vec<u8>, TransportError> {
        self.ensure_handshaken()?;
        let mut dec = self.recv_state.lock();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(f) = dec.next_frame()? {
                return Ok(f.into_vec());
            }
            let n = (&self.stream)
                .read(&mut chunk)
                .map_err(|e| io_err("recv", &e))?;
            if n == 0 {
                // EOF. Whether the peer exited cleanly or was SIGKILLed
                // mid-frame, the session's answer is the same: treat the
                // tenant as gone so its partition is reclaimed.
                return Err(TransportError::Disconnected);
            }
            dec.push(&chunk[..n]);
        }
    }

    fn send_batch(&self, frames: Vec<Vec<u8>>) -> Result<(), TransportError> {
        if frames.len() <= 1 {
            return match frames.into_iter().next() {
                Some(f) => self.send(f),
                None => Ok(()),
            };
        }
        self.ensure_handshaken()?;
        let mut body_len = 0u64;
        for f in &frames {
            if f.len() as u64 > MAX_FRAME as u64 {
                return Err(TransportError::FrameTooLarge {
                    len: f.len() as u64,
                    max: MAX_FRAME as u64,
                });
            }
            body_len += 4 + f.len() as u64;
        }
        let mut st = self.send_lock.lock();
        if body_len > MAX_FRAME as u64 {
            // Too big to coalesce: fall back to frame-by-frame sends
            // under one writer lock so the run stays contiguous. Each
            // frame still goes out as one vectored write.
            for f in &frames {
                st.prefixes.clear();
                st.prefixes
                    .extend_from_slice(&(f.len() as u32).to_le_bytes());
                self.send_vectored(&[&st.prefixes[..], f])?;
            }
            return Ok(());
        }
        // Lay every length word into the reusable scratch — outer batch
        // word first, then one sub-length per frame — and gather-write
        // the lot with the payloads in place: the whole batch is one
        // writev, zero payload copies, zero steady-state allocations.
        st.prefixes.clear();
        st.prefixes
            .extend_from_slice(&(body_len as u32 | BATCH_FLAG).to_le_bytes());
        for f in &frames {
            st.prefixes
                .extend_from_slice(&(f.len() as u32).to_le_bytes());
        }
        let mut parts: Vec<&[u8]> = Vec::with_capacity(1 + 2 * frames.len());
        // First part spans the outer word *and* the first sub-length —
        // they are contiguous in scratch.
        parts.push(&st.prefixes[0..8]);
        parts.push(&frames[0]);
        for (i, f) in frames.iter().enumerate().skip(1) {
            parts.push(&st.prefixes[4 + 4 * i..8 + 4 * i]);
            parts.push(f);
        }
        self.send_vectored(&parts)
    }

    fn try_recv(&self) -> Result<Option<FrameView>, TransportError> {
        self.ensure_handshaken()?;
        let mut dec = self.recv_state.lock();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(f) = dec.next_frame()? {
                return Ok(Some(f));
            }
            match (&self.stream).read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => dec.push(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err("recv", &e)),
            }
        }
    }

    fn enter_event_mode(&self) -> bool {
        self.event_mode.store(true, Ordering::SeqCst);
        // If the handshake already ran (client halves), flip to
        // non-blocking now; otherwise `ensure_handshaken` does it.
        if *self.handshaken.lock() && self.stream.set_nonblocking(true).is_err() {
            return false;
        }
        true
    }

    fn event_fds(&self) -> Vec<i32> {
        vec![self.stream.as_raw_fd()]
    }

    fn peer_uid(&self) -> Option<u32> {
        self.peer_uid
    }
}

/// Server side: a bound Unix socket accepting framed connections.
pub struct UdsListener {
    listener: UnixListener,
    path: PathBuf,
    stop: Arc<AtomicBool>,
    policy: UidPolicy,
    /// Optional per-uid connect-rate gate, checked right after the
    /// credential policy — an over-rate peer is dropped before any
    /// protocol byte.
    admission: Option<Arc<crate::control::Admission>>,
}

impl UdsListener {
    /// Bind at `path`, replacing any stale socket file from a previous
    /// run. Returns the listener and an `unblock` closure that makes a
    /// blocked [`Listener::accept`] return `Disconnected` (used by the
    /// manager at shutdown — a kernel-blocked accept cannot be woken by
    /// dropping a dialer the way the in-process transport is).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when binding fails.
    pub fn bind(path: &Path) -> Result<(Self, super::UnblockFn), TransportError> {
        Self::bind_with_policy(path, UidPolicy::AllowAll)
    }

    /// [`UdsListener::bind`] with an `SO_PEERCRED` uid policy: peers the
    /// policy rejects are dropped at `accept`, before any protocol byte
    /// is read, and the accept loop moves on to the next connection.
    ///
    /// # Errors
    ///
    /// As [`UdsListener::bind`].
    pub fn bind_with_policy(
        path: &Path,
        policy: UidPolicy,
    ) -> Result<(Self, super::UnblockFn), TransportError> {
        Self::bind_gated(path, policy, None)
    }

    /// [`UdsListener::bind_with_policy`] with an optional per-uid
    /// connect-rate gate ([`Admission`](crate::control::Admission)):
    /// peers whose uid is over its token bucket are dropped at `accept`,
    /// so a reconnect storm cannot starve other tenants' connects.
    ///
    /// # Errors
    ///
    /// As [`UdsListener::bind`].
    pub fn bind_gated(
        path: &Path,
        policy: UidPolicy,
        admission: Option<Arc<crate::control::Admission>>,
    ) -> Result<(Self, super::UnblockFn), TransportError> {
        if path.exists() {
            std::fs::remove_file(path).map_err(|e| io_err("bind", &e))?;
        }
        let listener = UnixListener::bind(path).map_err(|e| io_err("bind", &e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let unblock = {
            let stop = stop.clone();
            let path = path.to_path_buf();
            Box::new(move || {
                stop.store(true, Ordering::SeqCst);
                // Wake the kernel-blocked accept with a throwaway
                // connection; the listener sees the flag and bails.
                let _ = UnixStream::connect(&path);
            })
        };
        Ok((
            UdsListener {
                listener,
                path: path.to_path_buf(),
                stop,
                policy,
                admission,
            },
            unblock,
        ))
    }

    /// The socket path this listener serves.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Listener for UdsListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        loop {
            let (stream, _) = self.listener.accept().map_err(|e| io_err("accept", &e))?;
            if self.stop.load(Ordering::SeqCst) {
                return Err(TransportError::Disconnected);
            }
            // Credential gate first: a peer the uid policy rejects is
            // dropped (it observes EOF) and never reaches the protocol.
            if !self.policy.check(&stream) {
                drop(stream);
                continue;
            }
            let uid = super::peercred::peer_uid(&stream).ok();
            // Rate gate next: an over-rate uid is dropped just as a
            // policy-rejected one is, and the loop moves on.
            if let (Some(adm), Some(uid)) = (&self.admission, uid) {
                if !adm.admit(uid) {
                    drop(stream);
                    continue;
                }
            }
            // The preamble exchange is deferred to the connection's first
            // send/recv — i.e. its session thread — so a client that
            // connects and then stalls (or speaks garbage) costs the
            // accept loop nothing; its own session fails the handshake
            // and exits.
            return Ok(Box::new(UdsConnection::with_peer_uid(stream, false, uid)));
        }
    }
}

impl Drop for UdsListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Client side: dials framed connections to a [`UdsListener`].
pub struct UdsDialer {
    path: PathBuf,
}

impl UdsDialer {
    /// A dialer for the manager socket at `path`.
    pub fn new(path: impl AsRef<Path>) -> Self {
        UdsDialer {
            path: path.as_ref().to_path_buf(),
        }
    }
}

impl Dialer for UdsDialer {
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError> {
        let stream = UnixStream::connect(&self.path).map_err(|e| io_err("dial", &e))?;
        // Clients handshake eagerly: the server side completes its half
        // as soon as the connection's session thread starts reading.
        handshake(&stream)?;
        Ok(Box::new(UdsConnection::new(stream, true)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sock(tag: &str) -> PathBuf {
        crate::fixtures::temp_socket_path(&format!("uds-test-{tag}"))
    }

    #[test]
    fn frames_round_trip_over_socket() {
        let path = temp_sock("rt");
        let (listener, _unblock) = UdsListener::bind(&path).unwrap();
        let dialer = UdsDialer::new(&path);
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            let got = server.recv().unwrap();
            server.send(got.iter().rev().copied().collect()).unwrap();
            // Big frame forces multiple reads on the client side.
            server.send(vec![0x5A; 1 << 20]).unwrap();
            server
        });
        let client = dialer.dial().unwrap();
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![3, 2, 1]);
        assert_eq!(client.recv().unwrap(), vec![0x5A; 1 << 20]);
        drop(client);
        let server = server_thread.join().unwrap();
        assert_eq!(server.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn unblock_wakes_a_kernel_blocked_accept() {
        let path = temp_sock("eof");
        let (listener, unblock) = UdsListener::bind(&path).unwrap();
        let accept_thread = std::thread::spawn(move || (listener.accept().err(), listener));
        std::thread::sleep(Duration::from_millis(20));
        unblock();
        let (woken, listener) = accept_thread.join().unwrap();
        assert_eq!(woken, Some(TransportError::Disconnected));
        drop(listener); // removes the socket file
        assert!(!path.exists());
    }

    /// A client speaking the wrong framing version is rejected — by the
    /// accepted connection's own first recv (i.e. its session thread),
    /// not by the accept loop, which stays free for other clients.
    #[test]
    fn version_skew_fails_the_session_not_the_listener() {
        let path = temp_sock("ver");
        let (listener, _unblock) = UdsListener::bind(&path).unwrap();
        let session_thread = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            (conn.recv(), listener)
        });
        // Hand-rolled dial with a wrong version byte.
        let stream = UnixStream::connect(&path).unwrap();
        (&stream).write_all(&[b'G', b'R', b'D', 0x7F]).unwrap();
        // The server half still sends its (valid) preamble first.
        let mut got = [0u8; 4];
        (&stream).read_exact(&mut got).unwrap();
        assert!(frame::check_preamble(&got).is_ok());
        let (r, _listener) = session_thread.join().unwrap();
        assert_eq!(
            r,
            Err(TransportError::VersionMismatch {
                got: 0x7F,
                want: frame::TRANSPORT_VERSION
            })
        );
        // The rejected connection was dropped: we observe EOF.
        let mut probe = [0u8; 1];
        assert_eq!((&stream).read(&mut probe).unwrap(), 0);
    }

    /// A client that connects and then goes silent wedges only its own
    /// connection: the accept loop keeps serving, and a well-behaved
    /// client dialing *afterwards* completes immediately.
    #[test]
    fn stalled_client_does_not_block_the_accept_loop() {
        let path = temp_sock("stall");
        let (listener, _unblock) = UdsListener::bind(&path).unwrap();
        // The wedge: connect and send nothing, forever.
        let _stalled = UnixStream::connect(&path).unwrap();
        let server_thread = std::thread::spawn(move || {
            let first = listener.accept().unwrap(); // the stalled client
            let second = listener.accept().unwrap(); // the real one
            let got = second.recv().unwrap();
            (first, got)
        });
        let client = UdsDialer::new(&path).dial().unwrap();
        client.send(vec![42]).unwrap();
        let (_first, got) = server_thread.join().unwrap();
        assert_eq!(got, vec![42]);
    }

    /// A same-user `SO_PEERCRED` policy admits this process's own dials
    /// end-to-end; a deny-list policy drops the connection before the
    /// handshake (the dialer observes EOF → `Disconnected`) and leaves
    /// the accept loop alive for admitted peers.
    #[test]
    fn peercred_policy_gates_accept() {
        use super::super::peercred::{current_uid, UidPolicy};

        // Admitted: same-user policy, normal round trip.
        let path = temp_sock("cred-ok");
        let (listener, _unblock) =
            UdsListener::bind_with_policy(&path, UidPolicy::same_user()).unwrap();
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            let got = server.recv().unwrap();
            server.send(got).unwrap();
        });
        let client = UdsDialer::new(&path).dial().unwrap();
        client.send(vec![9]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9]);
        server_thread.join().unwrap();

        // Rejected: an allowlist naming a different uid. The server
        // drops us pre-handshake; dialing fails as a disconnect. The
        // accept loop must keep running (it skips rejected peers), so
        // unblock() still wakes it cleanly.
        let path = temp_sock("cred-no");
        let (listener, unblock) = UdsListener::bind_with_policy(
            &path,
            UidPolicy::Allow(vec![current_uid().wrapping_add(1)]),
        )
        .unwrap();
        let accept_thread = std::thread::spawn(move || listener.accept().err());
        for _ in 0..3 {
            assert_eq!(
                UdsDialer::new(&path).dial().err(),
                Some(TransportError::Disconnected),
                "rejected peer should observe a disconnect"
            );
        }
        unblock();
        assert_eq!(
            accept_thread.join().unwrap(),
            Some(TransportError::Disconnected)
        );
    }

    /// A batch send arrives as the same sequence of individual frames —
    /// coalescing is invisible above the transport.
    #[test]
    fn batch_send_preserves_frame_boundaries() {
        let path = temp_sock("batch");
        let (listener, _unblock) = UdsListener::bind(&path).unwrap();
        let server_thread = std::thread::spawn(move || {
            let server = listener.accept().unwrap();
            let frames: Vec<Vec<u8>> = (0..4).map(|_| server.recv().unwrap()).collect();
            server
                .send_batch(vec![vec![10], vec![], vec![20, 21]])
                .unwrap();
            frames
        });
        let client = UdsDialer::new(&path).dial().unwrap();
        client
            .send_batch(vec![vec![1], vec![2, 2], vec![], vec![3; 300]])
            .unwrap();
        assert_eq!(client.recv().unwrap(), vec![10]);
        assert_eq!(client.recv().unwrap(), Vec::<u8>::new());
        assert_eq!(client.recv().unwrap(), vec![20, 21]);
        let got = server_thread.join().unwrap();
        assert_eq!(got, vec![vec![1], vec![2, 2], vec![], vec![3; 300]]);
    }

    /// Event mode: try_recv yields Ok(None) while the socket is idle and
    /// the queued frames once bytes arrive — the executor's contract.
    #[test]
    fn event_mode_try_recv_is_nonblocking() {
        let path = temp_sock("event");
        let (listener, _unblock) = UdsListener::bind(&path).unwrap();
        let client = std::thread::spawn({
            let path = path.clone();
            move || UdsDialer::new(&path).dial().unwrap()
        });
        let server = listener.accept().unwrap();
        assert!(server.enter_event_mode());
        assert_eq!(server.event_fds().len(), 1);
        // First try_recv performs the deferred handshake (unblocking the
        // client's eager dial), then sees an empty socket.
        assert_eq!(server.try_recv().unwrap(), None);
        let client = client.join().unwrap();
        client.send_batch(vec![vec![7], vec![8, 9]]).unwrap();
        // Poll until the kernel delivers the bytes.
        let mut got = Vec::new();
        for _ in 0..500 {
            match server.try_recv().unwrap() {
                Some(f) => {
                    got.push(f);
                    if got.len() == 2 {
                        break;
                    }
                }
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        assert_eq!(got, vec![vec![7], vec![8, 9]]);
        // Peer death surfaces as Disconnected from try_recv.
        drop(client);
        let mut end = None;
        for _ in 0..500 {
            match server.try_recv() {
                Ok(None) => std::thread::sleep(Duration::from_millis(1)),
                other => {
                    end = Some(other);
                    break;
                }
            }
        }
        assert_eq!(end, Some(Err(TransportError::Disconnected)));
    }

    #[test]
    fn dial_to_missing_socket_is_io_error() {
        let dialer = UdsDialer::new("/nonexistent/grd.sock");
        assert!(matches!(
            dialer.dial(),
            Err(TransportError::Io { op: "dial", .. })
        ));
    }
}
