//! Transport abstraction between `grdLib` and the grdManager.
//!
//! The wire protocol ([`crate::proto`]) produces self-contained byte
//! frames; this module defines how frames travel. Three small traits model
//! a connection-oriented transport the way sockets do:
//!
//! * [`Connection`] — a bidirectional, ordered, reliable frame pipe. One
//!   connection per tenant: the manager derives the client identity from
//!   the connection, not from message contents.
//! * [`Listener`] — the manager side: yields the server half of each new
//!   connection.
//! * [`Dialer`] — the client side: opens new connections.
//!
//! Three implementations exist, spanning the deployment spectrum:
//!
//! * [`channel`] — in-process byte-frame channels: zero-copy within one
//!   address space, used by tests and single-process deployments.
//! * [`uds`] — Unix domain sockets with length-prefixed framing
//!   ([`frame`]): tenants as real OS processes, the kernel as the IPC
//!   boundary. A crashed tenant's socket closes, so its session observes
//!   [`TransportError::Disconnected`] and the manager reclaims the
//!   partition through the normal vanished-connection path.
//! * [`shm`] — a lock-free shared-memory byte ring per direction over an
//!   mmap'd file, with a Unix socket carrying the handshake and peer
//!   liveness. Built for the high-rate one-way deferred-launch path:
//!   a send is two bounded memcpys and one atomic release store.
//!
//! Nothing above this layer sees anything but byte frames, so `grdLib`,
//! the session layer, and the manager are identical across all three.

use std::fmt;
use std::io;

pub mod channel;
pub mod frame;
pub mod peercred;
pub mod shm;
pub(crate) mod sys;
pub mod uds;

pub use channel::{channel_transport, ChannelConnection, ChannelDialer, ChannelListener};
pub use peercred::UidPolicy;

/// Transport-level failures.
///
/// [`Disconnected`](TransportError::Disconnected) is the one every caller
/// must handle — it is how sessions learn their tenant is gone (including
/// by `SIGKILL`). The remaining variants carry enough context to
/// distinguish an I/O failure from a protocol violation without parsing
/// strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer (or the listener) has gone away.
    Disconnected,
    /// An operating-system I/O error that is not a plain disconnect.
    Io {
        /// The transport operation that failed (`"send"`, `"recv"`,
        /// `"accept"`, `"dial"`, `"handshake"`, …).
        op: &'static str,
        /// The OS error category.
        kind: io::ErrorKind,
        /// Human-readable detail from the OS error.
        detail: String,
    },
    /// A frame exceeded the transport's size limit. Raised on send
    /// (before any bytes travel) and on receive (a hostile or corrupt
    /// length prefix must not trigger a giant allocation).
    FrameTooLarge {
        /// The offending frame length in bytes.
        len: u64,
        /// The transport's limit in bytes.
        max: u64,
    },
    /// The peer speaks a different transport framing version.
    VersionMismatch {
        /// Version byte the peer presented.
        got: u8,
        /// Version this build speaks ([`frame::TRANSPORT_VERSION`]).
        want: u8,
    },
}

impl TransportError {
    /// Classify an OS error from `op`: disconnect-like errors collapse to
    /// [`TransportError::Disconnected`] (so every transport reports a
    /// vanished peer identically), the rest keep their context.
    pub fn from_io(op: &'static str, e: &io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected => TransportError::Disconnected,
            kind => TransportError::Io {
                op,
                kind,
                detail: e.to_string(),
            },
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => f.write_str("transport disconnected"),
            TransportError::Io { op, kind, detail } => {
                write!(f, "transport {op} failed ({kind:?}): {detail}")
            }
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds transport limit {max}")
            }
            TransportError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "peer speaks transport version {got}, this build wants {want}"
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, ordered, reliable byte-frame pipe.
pub trait Connection: Send {
    /// Send one frame to the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the peer is gone;
    /// [`TransportError::FrameTooLarge`] if the frame exceeds the
    /// transport's limit; [`TransportError::Io`] on other OS failures.
    fn send(&self, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Block until the peer's next frame arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the peer is gone and no frames
    /// remain; other variants on I/O or framing violations.
    fn recv(&self) -> Result<Vec<u8>, TransportError>;

    /// Send several frames as one transport operation where the wire
    /// supports it (a single batch write on uds/shm); the default just
    /// sends them one by one, so every [`Connection`] stays correct.
    /// Frame boundaries are preserved — the peer's decoder yields the
    /// same frame sequence either way.
    ///
    /// # Errors
    ///
    /// As [`Connection::send`]; on error, a prefix of `frames` may have
    /// been delivered.
    fn send_batch(&self, frames: Vec<Vec<u8>>) -> Result<(), TransportError> {
        for f in frames {
            self.send(f)?;
        }
        Ok(())
    }

    /// Non-blocking receive for event-driven callers: `Ok(Some(frame))`
    /// when a frame is ready, `Ok(None)` when the caller should wait for
    /// the next readiness event. Only meaningful after
    /// [`Connection::enter_event_mode`] returned `true`.
    ///
    /// Frames come back as zero-copy [`frame::FrameView`]s into the
    /// transport's receive buffer, so the executor's drain loop never
    /// copies payload bytes; cold callers recover owned bytes with
    /// [`frame::FrameView::into_vec`].
    ///
    /// # Errors
    ///
    /// As [`Connection::recv`]; transports that do not support event
    /// mode report an `Unsupported` [`TransportError::Io`].
    fn try_recv(&self) -> Result<Option<frame::FrameView>, TransportError> {
        Err(TransportError::Io {
            op: "try_recv",
            kind: io::ErrorKind::Unsupported,
            detail: "connection does not support event-driven receive".into(),
        })
    }

    /// Switch the connection into non-blocking event mode. Returns
    /// `true` when the connection can be driven by an epoll executor
    /// (readiness fds from [`Connection::event_fds`] + frames from
    /// [`Connection::try_recv`]); `false` means the caller must dedicate
    /// a blocking thread. The default — and the in-process channel
    /// transport — stays blocking.
    fn enter_event_mode(&self) -> bool {
        false
    }

    /// File descriptors whose readability means "poll [`try_recv`]
    /// again". Re-queried after every drain: the shm transport's
    /// doorbell fd only exists once its deferred handshake completes.
    ///
    /// [`try_recv`]: Connection::try_recv
    fn event_fds(&self) -> Vec<i32> {
        Vec::new()
    }

    /// The peer's uid, where the transport can establish it
    /// (`SO_PEERCRED` on server halves of socket transports). `None` for
    /// in-process transports and client halves; the session layer then
    /// falls back to the process's own uid.
    fn peer_uid(&self) -> Option<u32> {
        None
    }
}

/// The accepting (manager) side of a transport.
pub trait Listener: Send {
    /// Block until a client opens a connection; returns the server half.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] once no dialer can ever connect
    /// again (shutdown).
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError>;
}

/// The connecting (client) side of a transport.
pub trait Dialer: Send + Sync {
    /// Open a new connection to the manager; returns the client half.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the listener is gone.
    fn dial(&self) -> Result<Box<dyn Connection>, TransportError>;
}

/// A bound server-side transport, ready to hand to
/// [`spawn_manager_over`](crate::manager::spawn_manager_over): the
/// listener the acceptor will serve, a dialer for the manager's own
/// one-shot connections (stats probes), and an optional `unblock` hook
/// that forces a blocked `accept` to return `Disconnected` at shutdown
/// (socket listeners block in the kernel, so dropping the dialer alone
/// cannot wake them the way the in-process channel transport does).
pub struct BoundTransport {
    /// Server half: the acceptor loop serves this.
    pub listener: Box<dyn Listener>,
    /// Loopback dialer owned by the manager handle.
    pub dialer: Box<dyn Dialer>,
    /// Called once at shutdown, before joining the acceptor.
    pub unblock: Option<UnblockFn>,
}

/// A one-shot shutdown hook returned by the socket listeners: makes a
/// kernel-blocked `accept` return `Disconnected`.
pub type UnblockFn = Box<dyn FnOnce() + Send + Sync>;

impl BoundTransport {
    /// The in-process channel transport (the default for tests and
    /// single-process deployments).
    pub fn channel() -> Self {
        let (listener, dialer) = channel_transport();
        BoundTransport {
            listener: Box::new(listener),
            dialer: Box::new(dialer),
            unblock: None,
        }
    }

    /// Bind a Unix-domain-socket transport at `path` (replacing any stale
    /// socket file left by a previous run).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the socket cannot be bound.
    pub fn uds(path: impl AsRef<std::path::Path>) -> Result<Self, TransportError> {
        Self::uds_with_policy(path, UidPolicy::AllowAll)
    }

    /// [`BoundTransport::uds`] with an `SO_PEERCRED` uid allowlist:
    /// connections from uids the policy rejects are dropped at accept,
    /// before any protocol byte. This is how `guardiand` restricts its
    /// socket to the daemon's own uid (or an explicit `--allow-uid`
    /// list).
    ///
    /// # Errors
    ///
    /// As [`BoundTransport::uds`].
    pub fn uds_with_policy(
        path: impl AsRef<std::path::Path>,
        policy: UidPolicy,
    ) -> Result<Self, TransportError> {
        Self::uds_gated(path, policy, None)
    }

    /// [`BoundTransport::uds_with_policy`] with an optional connect-rate
    /// [`Admission`](crate::control::Admission) gate: connections from a
    /// uid exceeding its token bucket are dropped at accept, so a
    /// reconnect storm cannot starve the accept loop.
    ///
    /// # Errors
    ///
    /// As [`BoundTransport::uds`].
    pub fn uds_gated(
        path: impl AsRef<std::path::Path>,
        policy: UidPolicy,
        admission: Option<std::sync::Arc<crate::control::Admission>>,
    ) -> Result<Self, TransportError> {
        let path = path.as_ref();
        let (listener, unblock) = uds::UdsListener::bind_gated(path, policy, admission)?;
        Ok(BoundTransport {
            listener: Box::new(listener),
            dialer: Box::new(uds::UdsDialer::new(path)),
            unblock: Some(unblock),
        })
    }

    /// Bind a shared-memory-ring transport whose handshake/liveness
    /// socket lives at `path`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the handshake socket cannot be bound.
    pub fn shm(path: impl AsRef<std::path::Path>) -> Result<Self, TransportError> {
        Self::shm_with_policy(path, UidPolicy::AllowAll)
    }

    /// [`BoundTransport::shm`] with an `SO_PEERCRED` uid allowlist on
    /// the handshake socket (see [`BoundTransport::uds_with_policy`]).
    ///
    /// # Errors
    ///
    /// As [`BoundTransport::shm`].
    pub fn shm_with_policy(
        path: impl AsRef<std::path::Path>,
        policy: UidPolicy,
    ) -> Result<Self, TransportError> {
        Self::shm_gated(path, policy, None)
    }

    /// [`BoundTransport::shm_with_policy`] with an optional connect-rate
    /// [`Admission`](crate::control::Admission) gate on the handshake
    /// socket (see [`BoundTransport::uds_gated`]).
    ///
    /// # Errors
    ///
    /// As [`BoundTransport::shm`].
    pub fn shm_gated(
        path: impl AsRef<std::path::Path>,
        policy: UidPolicy,
        admission: Option<std::sync::Arc<crate::control::Admission>>,
    ) -> Result<Self, TransportError> {
        let path = path.as_ref();
        let (listener, unblock) = shm::ShmListener::bind_gated(path, policy, admission)?;
        Ok(BoundTransport {
            listener: Box::new(listener),
            dialer: Box::new(shm::ShmDialer::new(path)),
            unblock: Some(unblock),
        })
    }

    /// Merge several bound transports into one: a single acceptor serves
    /// every listener (e.g. `guardiand` offering uds *and* shm endpoints
    /// over one manager). The merged dialer is the first transport's.
    ///
    /// # Panics
    ///
    /// Panics if `transports` is empty.
    pub fn merge(transports: Vec<BoundTransport>) -> Self {
        assert!(!transports.is_empty(), "merge of zero transports");
        let mut listeners = Vec::new();
        let mut unblocks = Vec::new();
        let mut dialer = None;
        for t in transports {
            listeners.push(t.listener);
            if let Some(u) = t.unblock {
                unblocks.push(u);
            }
            if dialer.is_none() {
                dialer = Some(t.dialer);
            }
        }
        let merged = MultiListener::new(listeners);
        BoundTransport {
            listener: Box::new(merged),
            dialer: dialer.expect("at least one transport"),
            unblock: Some(Box::new(move || {
                for u in unblocks {
                    u();
                }
            })),
        }
    }
}

/// Fans several listeners into one accept stream: one forwarder thread
/// per inner listener pushes accepted connections into a channel; the
/// merged `accept` drains it. `accept` fails once every inner listener
/// has shut down.
pub struct MultiListener {
    rx: crossbeam::channel::Receiver<Box<dyn Connection>>,
}

impl MultiListener {
    /// Merge `listeners` into a single accept stream.
    pub fn new(listeners: Vec<Box<dyn Listener>>) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded();
        for listener in listeners {
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("grdMultiAccept".into())
                .spawn(move || {
                    while let Ok(conn) = listener.accept() {
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn grdMultiAccept thread");
        }
        MultiListener { rx }
    }
}

impl Listener for MultiListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_classify_disconnect_kinds() {
        let gone = io::Error::new(io::ErrorKind::BrokenPipe, "pipe");
        assert_eq!(
            TransportError::from_io("send", &gone),
            TransportError::Disconnected
        );
        let denied = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        match TransportError::from_io("dial", &denied) {
            TransportError::Io { op, kind, .. } => {
                assert_eq!(op, "dial");
                assert_eq!(kind, io::ErrorKind::PermissionDenied);
            }
            other => panic!("classified as {other:?}"),
        }
    }

    #[test]
    fn multi_listener_serves_all_inner_listeners() {
        let (l1, d1) = channel_transport();
        let (l2, d2) = channel_transport();
        let multi = MultiListener::new(vec![Box::new(l1), Box::new(l2)]);
        let c1 = d1.dial().unwrap();
        let c2 = d2.dial().unwrap();
        c1.send(vec![1]).unwrap();
        c2.send(vec![2]).unwrap();
        // Both connections surface through the one accept stream (order
        // unspecified across inner listeners).
        let mut seen = Vec::new();
        for _ in 0..2 {
            let s = multi.accept().unwrap();
            seen.push(s.recv().unwrap()[0]);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        drop((d1, d2));
        assert!(multi.accept().is_err());
    }
}
