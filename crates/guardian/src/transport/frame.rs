//! Byte-stream framing shared by the stream-oriented transports.
//!
//! Unix sockets (and any future TCP transport) deliver a byte *stream*;
//! the wire protocol deals in self-contained *frames*. This module pins
//! down the mapping:
//!
//! * each direction of a stream starts with a 4-byte preamble
//!   ([`PREAMBLE`]): the ASCII magic `GRD` plus [`TRANSPORT_VERSION`], so
//!   version skew is detected at connection time instead of surfacing as
//!   garbled frames mid-session;
//! * each frame is a little-endian `u32` length prefix followed by that
//!   many payload bytes.
//!
//! [`FrameDecoder`] is a pure incremental reassembler: feed it the chunks
//! the OS hands you — however the kernel split them — and it yields
//! complete frames. Keeping it free of I/O makes the reassembly logic
//! property-testable over adversarial splits (see the proptests below),
//! which is exactly the code path a hostile tenant controls.

use super::TransportError;
use std::collections::VecDeque;

/// Version of the stream framing (independent of
/// [`crate::proto::PROTO_VERSION`], which versions frame *contents*).
pub const TRANSPORT_VERSION: u8 = 1;

/// High bit of the length prefix marking a *batch* frame: the payload is
/// a concatenation of `[u32 sub-length][sub-payload]` entries, flushed by
/// the sender as one transport write. Safe to steal because
/// [`MAX_FRAME`] (and every per-connection limit derived from it) is far
/// below 2³¹, so a legitimate plain length never has this bit set.
pub const BATCH_FLAG: u32 = 1 << 31;

/// Magic bytes opening each direction of a framed stream.
pub const PREAMBLE: [u8; 4] = [b'G', b'R', b'D', TRANSPORT_VERSION];

/// Default per-frame size limit. Large enough for any realistic fatbin
/// or H2D payload, small enough that a hostile length prefix cannot make
/// the manager allocate unbounded memory.
pub const MAX_FRAME: u32 = 64 << 20;

/// Validate a received preamble.
///
/// # Errors
///
/// [`TransportError::Io`] when the magic bytes are wrong (the peer is not
/// speaking this protocol at all), [`TransportError::VersionMismatch`]
/// when the magic matches but the version differs.
pub fn check_preamble(got: &[u8; 4]) -> Result<(), TransportError> {
    if got[..3] != PREAMBLE[..3] {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("bad preamble magic {:02x?}", &got[..3]),
        });
    }
    if got[3] != TRANSPORT_VERSION {
        return Err(TransportError::VersionMismatch {
            got: got[3],
            want: TRANSPORT_VERSION,
        });
    }
    Ok(())
}

/// Encode one frame: length prefix + payload.
///
/// # Errors
///
/// [`TransportError::FrameTooLarge`] when the payload exceeds
/// `max_frame` — checked on the *sending* side so an oversized frame
/// fails locally instead of poisoning the stream for the peer.
pub fn encode_frame(payload: &[u8], max_frame: u32) -> Result<Vec<u8>, TransportError> {
    if payload.len() as u64 > max_frame as u64 {
        return Err(TransportError::FrameTooLarge {
            len: payload.len() as u64,
            max: max_frame as u64,
        });
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Concatenate `frames` into one batch body: `[u32 sub-len][payload]` per
/// frame. The caller prefixes the body with `(body.len() | BATCH_FLAG)`
/// and sends it as a single transport write.
pub fn batch_body(frames: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = frames.iter().map(|f| 4 + f.len()).sum();
    let mut body = Vec::with_capacity(total);
    for f in frames {
        body.extend_from_slice(&(f.len() as u32).to_le_bytes());
        body.extend_from_slice(f);
    }
    body
}

/// Split a batch body back into its sub-frames.
///
/// # Errors
///
/// [`TransportError::Io`] (`InvalidData`) when the walk is inconsistent:
/// a truncated sub-header, a sub-length overrunning the body, or a
/// sub-length with [`BATCH_FLAG`] set (batches do not nest);
/// [`TransportError::FrameTooLarge`] when a sub-frame exceeds
/// `max_frame`.
pub fn split_batch(body: &[u8], max_frame: u32) -> Result<Vec<Vec<u8>>, TransportError> {
    let bad = |detail: String| TransportError::Io {
        op: "recv",
        kind: std::io::ErrorKind::InvalidData,
        detail,
    };
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < body.len() {
        if body.len() - pos < 4 {
            return Err(bad(format!(
                "batch truncated: {} trailing bytes",
                body.len() - pos
            )));
        }
        let len_bytes: [u8; 4] = body[pos..pos + 4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(len_bytes);
        if len & BATCH_FLAG != 0 {
            return Err(bad("nested batch frame".into()));
        }
        if len > max_frame {
            return Err(TransportError::FrameTooLarge {
                len: len as u64,
                max: max_frame as u64,
            });
        }
        pos += 4;
        if body.len() - pos < len as usize {
            return Err(bad(format!(
                "batch sub-frame of {len} bytes overruns body ({} left)",
                body.len() - pos
            )));
        }
        frames.push(body[pos..pos + len as usize].to_vec());
        pos += len as usize;
    }
    Ok(frames)
}

/// Incremental frame reassembler for a length-prefixed byte stream.
///
/// Push bytes in whatever chunks arrive; pull complete frames out. The
/// decoder carries at most one partial frame plus unconsumed input, so
/// memory stays bounded by `max_frame` + the largest chunk pushed.
pub struct FrameDecoder {
    max_frame: u32,
    /// Unconsumed stream bytes (compacted lazily).
    buf: Vec<u8>,
    /// Read cursor into `buf`.
    pos: usize,
    /// Sub-frames of an already-consumed batch, yielded before the
    /// stream is advanced further.
    pending: VecDeque<Vec<u8>>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` as the per-frame size limit.
    pub fn new(max_frame: u32) -> Self {
        FrameDecoder {
            max_frame,
            buf: Vec::new(),
            pos: 0,
            pending: VecDeque::new(),
        }
    }

    /// Feed stream bytes into the decoder, exactly as received.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Try to extract the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`TransportError::FrameTooLarge`] when a length prefix exceeds the
    /// limit. The decoder is poisoned conceptually at that point — the
    /// stream can no longer be trusted — so callers should drop the
    /// connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            if let Some(f) = self.pending.pop_front() {
                return Ok(Some(f));
            }
            let avail = self.buf.len() - self.pos;
            if avail < 4 {
                return Ok(None);
            }
            let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte slice");
            let word = u32::from_le_bytes(len_bytes);
            let len = word & !BATCH_FLAG;
            if len > self.max_frame {
                return Err(TransportError::FrameTooLarge {
                    len: len as u64,
                    max: self.max_frame as u64,
                });
            }
            let total = 4 + len as usize;
            if avail < total {
                return Ok(None);
            }
            if word & BATCH_FLAG == 0 {
                let frame = self.buf[self.pos + 4..self.pos + total].to_vec();
                self.pos += total;
                return Ok(Some(frame));
            }
            // Batch frame: split its body into pending sub-frames and
            // loop — an empty batch is simply consumed.
            let subs = split_batch(&self.buf[self.pos + 4..self.pos + total], self.max_frame)?;
            self.pos += total;
            self.pending.extend(subs);
        }
    }

    /// Whether the decoder holds a partially received frame (or stray
    /// bytes). Used to distinguish clean EOF from mid-frame truncation.
    /// Fully received but not-yet-pulled batch sub-frames do *not*
    /// count — they are complete frames, not truncation.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_reassemble_across_any_split() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xAB; 300]];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f, MAX_FRAME).unwrap());
        }
        // Feed one byte at a time: the worst-case split.
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut dec = FrameDecoder::new(1024);
        // u32::MAX carries BATCH_FLAG; the *masked* length is what gets
        // bounds-checked (and rejected) before any allocation.
        dec.push(&u32::MAX.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(TransportError::FrameTooLarge {
                len: (!BATCH_FLAG) as u64,
                max: 1024,
            })
        );
    }

    #[test]
    fn oversized_send_fails_locally() {
        let payload = vec![0u8; 10];
        assert!(matches!(
            encode_frame(&payload, 4),
            Err(TransportError::FrameTooLarge { len: 10, max: 4 })
        ));
    }

    #[test]
    fn preamble_validation() {
        assert!(check_preamble(&PREAMBLE).is_ok());
        assert_eq!(
            check_preamble(&[b'G', b'R', b'D', 99]),
            Err(TransportError::VersionMismatch {
                got: 99,
                want: TRANSPORT_VERSION
            })
        );
        assert!(matches!(
            check_preamble(&[0, 0, 0, TRANSPORT_VERSION]),
            Err(TransportError::Io {
                op: "handshake",
                ..
            })
        ));
    }

    #[test]
    fn truncated_stream_reports_mid_frame() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let enc = encode_frame(&[1, 2, 3, 4], MAX_FRAME).unwrap();
        dec.push(&enc[..enc.len() - 1]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.mid_frame());
    }

    fn encode_batch(frames: &[Vec<u8>]) -> Vec<u8> {
        let body = batch_body(frames);
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        buf
    }

    #[test]
    fn batch_round_trips_through_the_decoder() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xAB; 300]];
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&encode_batch(&frames));
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            out.push(f);
        }
        assert_eq!(out, frames);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn empty_batch_is_consumed_silently() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&encode_batch(&[]));
        dec.push(&encode_frame(&[9], MAX_FRAME).unwrap());
        assert_eq!(dec.next_frame().unwrap(), Some(vec![9]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn nested_batch_is_rejected() {
        // A batch whose sub-length carries BATCH_FLAG: hostile framing.
        let mut body = Vec::new();
        body.extend_from_slice(&(1u32 | BATCH_FLAG).to_le_bytes());
        body.push(0);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Io { op: "recv", .. })
        ));
    }

    #[test]
    fn truncated_batch_body_is_rejected() {
        // Batch body of 2 bytes cannot hold a 4-byte sub-header.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(2u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Io { op: "recv", .. })
        ));
    }

    #[test]
    fn batch_sub_frame_overrunning_body_is_rejected() {
        // Sub-header claims 100 bytes but the body ends after 1.
        let mut body = Vec::new();
        body.extend_from_slice(&100u32.to_le_bytes());
        body.push(0);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Io { op: "recv", .. })
        ));
    }

    #[test]
    fn oversized_batch_sub_frame_is_rejected() {
        // A small container whose sub-header *claims* a giant frame: the
        // lie is caught as FrameTooLarge, never as an allocation.
        let mut body = Vec::new();
        body.extend_from_slice(&(1u32 << 24).to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(4096);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::FrameTooLarge { len, .. }) if len == 1 << 24
        ));
    }
}

#[cfg(test)]
mod proptests {
    //! The satellite property: frame reassembly over adversarial partial
    //! reads / split writes round-trips every `proto` message on the uds
    //! codec. The split points are drawn by proptest, so shrinking finds
    //! the minimal pathological split when a regression appears.

    use super::*;
    use crate::proto::{ConnectInfo, Request, Response};
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;
    use proptest::strategy::BoxedStrategy;

    fn arb_request() -> BoxedStrategy<Request> {
        prop_oneof![
            any::<u64>()
                .prop_map(|mem_requirement| Request::Connect {
                    mem_requirement,
                    hint: None,
                })
                .boxed(),
            Just(Request::Disconnect).boxed(),
            pvec(any::<u8>(), 0..300)
                .prop_map(|bytes| Request::RegisterFatbin { bytes })
                .boxed(),
            any::<u64>()
                .prop_map(|bytes| Request::Malloc { bytes })
                .boxed(),
            (any::<u64>(), pvec(any::<u8>(), 0..300))
                .prop_map(|(dst, data)| Request::MemcpyH2D { dst, data })
                .boxed(),
            (
                pvec(0x20u8..0x7F, 0..24),
                pvec(any::<u8>(), 0..128),
                any::<bool>()
            )
                .prop_map(|(name, args, driver_level)| Request::Launch {
                    kernel: name.into_iter().map(char::from).collect(),
                    cfg: gpu_sim::LaunchConfig::linear(1, 32),
                    args,
                    driver_level,
                })
                .boxed(),
            Just(Request::Sync).boxed(),
            Just(Request::Stats).boxed(),
        ]
        .boxed()
    }

    fn arb_response() -> BoxedStrategy<Response> {
        prop_oneof![
            Just(Response::Unit).boxed(),
            ((any::<u32>(), any::<u64>()), (any::<u64>(), any::<u64>()))
                .prop_map(|((client, base), (size, ghz_bits))| {
                    Response::Connected(ConnectInfo {
                        client,
                        clock_ghz: f64::from_bits(ghz_bits),
                        partition_base: base,
                        partition_size: size,
                        deferred_launch: client % 2 == 0,
                        device: client % 3,
                        lease_mem: base ^ size,
                        lease_ttl_ms: size.rotate_left(7),
                    })
                })
                .boxed(),
            any::<u64>().prop_map(Response::Ptr).boxed(),
            pvec(any::<u8>(), 0..300).prop_map(Response::Data).boxed(),
            any::<u64>().prop_map(Response::Cycles).boxed(),
        ]
        .boxed()
    }

    /// Split `stream` at the given (wrapped) cut points and push the
    /// chunks one by one, collecting every completed frame.
    fn reassemble(stream: &[u8], cuts: &[u16]) -> Vec<Vec<u8>> {
        let mut points: Vec<usize> = cuts
            .iter()
            .map(|&i| i as usize % (stream.len() + 1))
            .collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for w in points.windows(2) {
            dec.push(&stream[w[0]..w[1]]);
            while let Some(f) = dec.next_frame().expect("well-formed stream") {
                out.push(f);
            }
        }
        assert!(!dec.mid_frame(), "bytes left over after full stream");
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// A run of proto requests survives encode → arbitrary stream
        /// splits → reassemble → decode, message for message.
        #[test]
        fn requests_round_trip_any_split(
            reqs in pvec(arb_request(), 1..8),
            cuts in pvec(any::<u16>(), 0..24),
        ) {
            let mut stream = Vec::new();
            for req in &reqs {
                stream.extend_from_slice(&encode_frame(&req.encode(), MAX_FRAME).unwrap());
            }
            let frames = reassemble(&stream, &cuts);
            prop_assert_eq!(frames.len(), reqs.len());
            for (frame, req) in frames.iter().zip(&reqs) {
                prop_assert_eq!(&Request::decode(frame).expect("decode"), req);
            }
        }

        /// Same law for responses (covers float payloads: frame bytes
        /// compare exactly, NaN-safe).
        #[test]
        fn responses_round_trip_any_split(
            resps in pvec(arb_response(), 1..8),
            cuts in pvec(any::<u16>(), 0..24),
        ) {
            let mut stream = Vec::new();
            let mut expect = Vec::new();
            for resp in &resps {
                let payload = resp.encode();
                stream.extend_from_slice(&encode_frame(&payload, MAX_FRAME).unwrap());
                expect.push(payload);
            }
            let frames = reassemble(&stream, &cuts);
            prop_assert_eq!(&frames, &expect);
            for frame in &frames {
                Response::decode(frame).expect("decode");
            }
        }

        /// Garbage bytes never panic the decoder: it either yields frames
        /// (which `proto` then rejects in its own total decoder) or a
        /// FrameTooLarge error, but no allocation blow-up or slice panic.
        #[test]
        fn decoder_total_on_garbage(
            chunks in pvec(pvec(any::<u8>(), 0..64), 0..8),
        ) {
            let mut dec = FrameDecoder::new(4096);
            for c in &chunks {
                dec.push(c);
                while let Ok(Some(_)) = dec.next_frame() {}
            }
        }

        /// One connection mixing proto v1 and v2 frames — some sent
        /// plain, some coalesced into batch frames — reassembles and
        /// decodes message-for-message across arbitrary stream splits.
        /// This is exactly what a legacy client talking to a batching
        /// manager (or vice versa) produces.
        #[test]
        fn mixed_v1_v2_and_batched_frames_round_trip_any_split(
            reqs in pvec((arb_request(), any::<bool>()), 1..10),
            groups in pvec(1usize..4, 1..10),
            cuts in pvec(any::<u16>(), 0..24),
        ) {
            // Encode each request, downgrading a random subset to proto
            // v1 (legal for these shapes: plain bodies are bit-identical
            // across versions, and a hintless v1 Connect simply ends
            // after mem_requirement — drop the has-hint byte).
            let payloads: Vec<Vec<u8>> = reqs
                .iter()
                .map(|(req, v1)| {
                    let mut p = req.encode();
                    if *v1 {
                        p[0] = 1;
                        if matches!(req, Request::Connect { hint: None, .. }) {
                            p.pop();
                        }
                    }
                    p
                })
                .collect();
            // Group consecutive payloads: groups of one go out as plain
            // frames, larger groups as batch frames.
            let mut stream = Vec::new();
            let mut it = payloads.iter().peekable();
            let mut gi = 0;
            while it.peek().is_some() {
                let n = groups[gi % groups.len()];
                gi += 1;
                let group: Vec<Vec<u8>> = it.by_ref().take(n).cloned().collect();
                if group.len() == 1 {
                    stream.extend_from_slice(&encode_frame(&group[0], MAX_FRAME).unwrap());
                } else {
                    let body = batch_body(&group);
                    stream.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
                    stream.extend_from_slice(&body);
                }
            }
            let frames = reassemble(&stream, &cuts);
            prop_assert_eq!(&frames, &payloads);
            for (frame, (req, _)) in frames.iter().zip(&reqs) {
                prop_assert_eq!(&Request::decode(frame).expect("decode"), req);
            }
        }

        /// `split_batch` is total on hostile bodies: any byte soup either
        /// splits cleanly or errors — no panic, no runaway allocation.
        #[test]
        fn split_batch_total_on_garbage(body in pvec(any::<u8>(), 0..256)) {
            let _ = split_batch(&body, 4096);
        }

        /// batch_body/split_batch are inverses for any frame set.
        #[test]
        fn batch_body_round_trips(frames in pvec(pvec(any::<u8>(), 0..64), 0..8)) {
            let body = batch_body(&frames);
            prop_assert_eq!(split_batch(&body, MAX_FRAME).unwrap(), frames);
        }
    }
}
