//! Byte-stream framing shared by the stream-oriented transports.
//!
//! Unix sockets (and any future TCP transport) deliver a byte *stream*;
//! the wire protocol deals in self-contained *frames*. This module pins
//! down the mapping:
//!
//! * each direction of a stream starts with a 4-byte preamble
//!   ([`PREAMBLE`]): the ASCII magic `GRD` plus [`TRANSPORT_VERSION`], so
//!   version skew is detected at connection time instead of surfacing as
//!   garbled frames mid-session;
//! * each frame is a little-endian `u32` length prefix followed by that
//!   many payload bytes.
//!
//! [`FrameDecoder`] is a pure incremental reassembler: feed it the chunks
//! the OS hands you — however the kernel split them — and it yields
//! complete frames. Keeping it free of I/O makes the reassembly logic
//! property-testable over adversarial splits (see the proptests below),
//! which is exactly the code path a hostile tenant controls.
//!
//! Frames come out as [`FrameView`]s: refcounted slices into the frozen
//! receive block, so a 64-launch batch costs zero per-frame copies. The
//! blocks themselves recycle through a [`BufPool`], so a session in
//! steady state allocates nothing on its receive path.

use super::TransportError;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Arc, Weak};

/// Version of the stream framing (independent of
/// [`crate::proto::PROTO_VERSION`], which versions frame *contents*).
pub const TRANSPORT_VERSION: u8 = 1;

/// High bit of the length prefix marking a *batch* frame: the payload is
/// a concatenation of `[u32 sub-length][sub-payload]` entries, flushed by
/// the sender as one transport write. Safe to steal because
/// [`MAX_FRAME`] (and every per-connection limit derived from it) is far
/// below 2³¹, so a legitimate plain length never has this bit set.
pub const BATCH_FLAG: u32 = 1 << 31;

/// Magic bytes opening each direction of a framed stream.
pub const PREAMBLE: [u8; 4] = [b'G', b'R', b'D', TRANSPORT_VERSION];

/// Default per-frame size limit. Large enough for any realistic fatbin
/// or H2D payload, small enough that a hostile length prefix cannot make
/// the manager allocate unbounded memory.
pub const MAX_FRAME: u32 = 64 << 20;

/// Buffers retained per [`BufPool`]; excess retirements simply free.
const POOL_MAX_BUFS: usize = 8;

/// Buffers whose capacity grew beyond this are freed instead of pooled,
/// so one giant fatbin passing through cannot pin megabytes for the
/// connection's remaining lifetime.
const POOL_MAX_CAPACITY: usize = 1 << 20;

/// A recycling pool of byte buffers for receive-path blocks.
///
/// Retired blocks return their storage here (capacity intact) instead of
/// freeing, so a steady-state receive loop reuses the same few
/// allocations forever. The pool is held via [`Weak`] by outstanding
/// blocks: when the owning connection dies, the pool dies with it and
/// in-flight blocks free normally — a view can never write into (or
/// resurrect) a retired pool.
pub struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BufPool {
    /// A fresh, empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(BufPool {
            bufs: Mutex::new(Vec::new()),
        })
    }

    /// Take a cleared buffer, recycled when one is available.
    pub fn take(&self) -> Vec<u8> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Return a buffer to the pool (bounded; oversized or surplus
    /// buffers are dropped).
    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAPACITY {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < POOL_MAX_BUFS {
            bufs.push(buf);
        }
    }

    /// Number of buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.bufs.lock().len()
    }
}

/// A frozen receive block: immutable bytes plus a weak edge back to the
/// pool that recycles the storage when the last view drops.
struct PoolBlock {
    data: Vec<u8>,
    pool: Weak<BufPool>,
}

impl Drop for PoolBlock {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

/// A refcounted, immutable slice of a received frame.
///
/// Views borrow from a shared frozen block, so decoding a 64-frame batch
/// produces 64 views into one buffer instead of 64 copies. A view made
/// [`From`] a `Vec<u8>` owns its bytes via the same representation (one
/// small refcount allocation, no copy), so every consumer handles both
/// shapes identically.
pub struct FrameView {
    block: Arc<PoolBlock>,
    start: usize,
    end: usize,
}

impl FrameView {
    fn shared(block: &Arc<PoolBlock>, span: Range<usize>) -> Self {
        debug_assert!(span.start <= span.end && span.end <= block.data.len());
        FrameView {
            block: Arc::clone(block),
            start: span.start,
            end: span.end,
        }
    }

    /// A sub-view of this view (`range` is relative to `self`). Shares
    /// the underlying block — no copy.
    ///
    /// # Panics
    ///
    /// When `range` exceeds the view — an internal logic error, not a
    /// wire-input condition (callers bounds-check wire lengths first).
    pub fn slice(&self, range: Range<usize>) -> FrameView {
        assert!(range.start <= range.end && range.end <= self.end - self.start);
        FrameView {
            block: Arc::clone(&self.block),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Recover an owned `Vec<u8>`, without copying when this view is the
    /// sole owner of a block it fully spans.
    pub fn into_vec(self) -> Vec<u8> {
        if self.start == 0 && self.end == self.block.data.len() {
            match Arc::try_unwrap(self.block) {
                Ok(mut block) => {
                    // Detach from the pool so the drop below doesn't
                    // recycle an empty husk.
                    block.pool = Weak::new();
                    return std::mem::take(&mut block.data);
                }
                Err(block) => return block.data.clone(),
            }
        }
        self[..].to_vec()
    }
}

impl From<Vec<u8>> for FrameView {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        FrameView {
            block: Arc::new(PoolBlock {
                data,
                pool: Weak::new(),
            }),
            start: 0,
            end,
        }
    }
}

impl FrameView {
    /// A view over `data` whose storage retires into `pool` when the
    /// last view drops (used by transports that fill their own receive
    /// buffers, e.g. the shm ring).
    pub fn pooled(data: Vec<u8>, pool: &Arc<BufPool>) -> Self {
        let end = data.len();
        FrameView {
            block: Arc::new(PoolBlock {
                data,
                pool: Arc::downgrade(pool),
            }),
            start: 0,
            end,
        }
    }
}

impl Clone for FrameView {
    fn clone(&self) -> Self {
        FrameView {
            block: Arc::clone(&self.block),
            start: self.start,
            end: self.end,
        }
    }
}

impl std::ops::Deref for FrameView {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.block.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for FrameView {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for FrameView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameView({:02x?})", &self[..])
    }
}

impl PartialEq for FrameView {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for FrameView {}

impl PartialEq<[u8]> for FrameView {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for FrameView {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for FrameView {
    fn eq(&self, other: &[u8; N]) -> bool {
        &self[..] == other
    }
}

/// Validate a received preamble.
///
/// # Errors
///
/// [`TransportError::Io`] when the magic bytes are wrong (the peer is not
/// speaking this protocol at all), [`TransportError::VersionMismatch`]
/// when the magic matches but the version differs.
pub fn check_preamble(got: &[u8; 4]) -> Result<(), TransportError> {
    if got[..3] != PREAMBLE[..3] {
        return Err(TransportError::Io {
            op: "handshake",
            kind: std::io::ErrorKind::InvalidData,
            detail: format!("bad preamble magic {:02x?}", &got[..3]),
        });
    }
    if got[3] != TRANSPORT_VERSION {
        return Err(TransportError::VersionMismatch {
            got: got[3],
            want: TRANSPORT_VERSION,
        });
    }
    Ok(())
}

/// Encode one frame: length prefix + payload.
///
/// # Errors
///
/// [`TransportError::FrameTooLarge`] when the payload exceeds
/// `max_frame` — checked on the *sending* side so an oversized frame
/// fails locally instead of poisoning the stream for the peer.
pub fn encode_frame(payload: &[u8], max_frame: u32) -> Result<Vec<u8>, TransportError> {
    if payload.len() as u64 > max_frame as u64 {
        return Err(TransportError::FrameTooLarge {
            len: payload.len() as u64,
            max: max_frame as u64,
        });
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Concatenate `frames` into one batch body: `[u32 sub-len][payload]` per
/// frame. The caller prefixes the body with `(body.len() | BATCH_FLAG)`
/// and sends it as a single transport write.
pub fn batch_body(frames: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = frames.iter().map(|f| 4 + f.len()).sum();
    let mut body = Vec::with_capacity(total);
    for f in frames {
        body.extend_from_slice(&(f.len() as u32).to_le_bytes());
        body.extend_from_slice(f);
    }
    body
}

fn bad_batch(detail: String) -> TransportError {
    TransportError::Io {
        op: "recv",
        kind: std::io::ErrorKind::InvalidData,
        detail,
    }
}

/// Walk a batch body, appending each sub-frame's payload span (offset by
/// `base`) to `spans`. All-or-nothing: on error, `spans` is restored to
/// its length at entry.
///
/// # Errors
///
/// As [`split_batch`].
fn scan_batch(
    body: &[u8],
    base: usize,
    max_frame: u32,
    spans: &mut Vec<Range<usize>>,
) -> Result<(), TransportError> {
    let mark = spans.len();
    let mut pos = 0usize;
    while pos < body.len() {
        if body.len() - pos < 4 {
            spans.truncate(mark);
            return Err(bad_batch(format!(
                "batch truncated: {} trailing bytes",
                body.len() - pos
            )));
        }
        let len_bytes: [u8; 4] = body[pos..pos + 4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(len_bytes);
        if len & BATCH_FLAG != 0 {
            spans.truncate(mark);
            return Err(bad_batch("nested batch frame".into()));
        }
        if len > max_frame {
            spans.truncate(mark);
            return Err(TransportError::FrameTooLarge {
                len: len as u64,
                max: max_frame as u64,
            });
        }
        pos += 4;
        if body.len() - pos < len as usize {
            spans.truncate(mark);
            return Err(bad_batch(format!(
                "batch sub-frame of {len} bytes overruns body ({} left)",
                body.len() - pos
            )));
        }
        spans.push(base + pos..base + pos + len as usize);
        pos += len as usize;
    }
    Ok(())
}

/// Split a batch body back into owned sub-frames.
///
/// # Errors
///
/// [`TransportError::Io`] (`InvalidData`) when the walk is inconsistent:
/// a truncated sub-header, a sub-length overrunning the body, or a
/// sub-length with [`BATCH_FLAG`] set (batches do not nest);
/// [`TransportError::FrameTooLarge`] when a sub-frame exceeds
/// `max_frame`.
pub fn split_batch(body: &[u8], max_frame: u32) -> Result<Vec<Vec<u8>>, TransportError> {
    let mut spans = Vec::new();
    scan_batch(body, 0, max_frame, &mut spans)?;
    Ok(spans.into_iter().map(|s| body[s].to_vec()).collect())
}

/// Split a batch-body *view* into zero-copy sub-frame views, appended to
/// `out`. All-or-nothing, like [`split_batch`].
///
/// # Errors
///
/// As [`split_batch`].
pub fn split_batch_views(
    body: &FrameView,
    max_frame: u32,
    out: &mut VecDeque<FrameView>,
) -> Result<(), TransportError> {
    let mut spans = Vec::new();
    scan_batch(body, 0, max_frame, &mut spans)?;
    out.extend(spans.into_iter().map(|s| body.slice(s)));
    Ok(())
}

/// Incremental frame reassembler for a length-prefixed byte stream.
///
/// Push bytes in whatever chunks arrive; pull complete frames out as
/// [`FrameView`]s. Internally the decoder stages bytes in a pooled
/// buffer; once at least one complete frame is present, the staging
/// buffer is *frozen* into a shared block (the partial tail, if any, is
/// carried into a fresh pooled buffer) and every complete frame —
/// including each sub-frame of a batch — becomes a view into it. The
/// decoder carries at most one partial frame plus unconsumed input, so
/// memory stays bounded by `max_frame` + the largest chunk pushed.
pub struct FrameDecoder {
    max_frame: u32,
    pool: Arc<BufPool>,
    /// Staging buffer for unconsumed stream bytes (from `pool`).
    buf: Vec<u8>,
    /// Read cursor into `buf` (nonzero only after consuming frames that
    /// produced no views, e.g. empty batches).
    pos: usize,
    /// Complete frames frozen out of the stream, in arrival order.
    ready: VecDeque<FrameView>,
    /// Scratch span list reused across freezes.
    spans: Vec<Range<usize>>,
    /// First framing violation encountered; the stream is untrusted from
    /// that point on, so the error repeats and no later bytes decode.
    poisoned: Option<TransportError>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` as the per-frame size limit.
    pub fn new(max_frame: u32) -> Self {
        let pool = BufPool::new();
        let buf = pool.take();
        FrameDecoder {
            max_frame,
            pool,
            buf,
            pos: 0,
            ready: VecDeque::new(),
            spans: Vec::new(),
            poisoned: None,
        }
    }

    /// The decoder's recycling pool (shared with the blocks it freezes).
    pub fn pool(&self) -> &Arc<BufPool> {
        &self.pool
    }

    /// Feed stream bytes into the decoder, exactly as received.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Scan the staging buffer for complete frames; freeze them into
    /// views when any are found.
    fn scan(&mut self) {
        if self.poisoned.is_some() {
            return;
        }
        let mut pos = self.pos;
        let mut err = None;
        loop {
            let avail = self.buf.len() - pos;
            if avail < 4 {
                break;
            }
            let len_bytes: [u8; 4] = self.buf[pos..pos + 4].try_into().expect("4-byte slice");
            let word = u32::from_le_bytes(len_bytes);
            let len = word & !BATCH_FLAG;
            if len > self.max_frame {
                err = Some(TransportError::FrameTooLarge {
                    len: len as u64,
                    max: self.max_frame as u64,
                });
                break;
            }
            let total = 4 + len as usize;
            if avail < total {
                break;
            }
            if word & BATCH_FLAG == 0 {
                self.spans.push(pos + 4..pos + total);
            } else if let Err(e) = scan_batch(
                &self.buf[pos + 4..pos + total],
                pos + 4,
                self.max_frame,
                &mut self.spans,
            ) {
                err = Some(e);
                break;
            }
            pos += total;
        }
        if self.spans.is_empty() {
            // Nothing to freeze; remember how far consumption got (empty
            // batches advance the cursor without yielding frames).
            self.pos = pos;
        } else {
            // Freeze: the partial tail moves to a fresh pooled buffer,
            // the scanned prefix becomes an immutable shared block.
            let mut fresh = self.pool.take();
            fresh.extend_from_slice(&self.buf[pos..]);
            let frozen = std::mem::replace(&mut self.buf, fresh);
            self.pos = 0;
            let block = Arc::new(PoolBlock {
                data: frozen,
                pool: Arc::downgrade(&self.pool),
            });
            self.ready
                .extend(self.spans.drain(..).map(|s| FrameView::shared(&block, s)));
        }
        self.poisoned = err;
    }

    /// Try to extract the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`TransportError::FrameTooLarge`] when a length prefix exceeds the
    /// limit, [`TransportError::Io`] on malformed batch framing. The
    /// decoder is poisoned at that point — the stream can no longer be
    /// trusted — so callers should drop the connection. Frames completed
    /// *before* the violation are still yielded first.
    pub fn next_frame(&mut self) -> Result<Option<FrameView>, TransportError> {
        if self.ready.is_empty() {
            self.scan();
        }
        if let Some(f) = self.ready.pop_front() {
            return Ok(Some(f));
        }
        match &self.poisoned {
            Some(e) => Err(e.clone()),
            None => Ok(None),
        }
    }

    /// Whether the decoder holds a partially received frame (or stray
    /// bytes). Used to distinguish clean EOF from mid-frame truncation.
    /// Fully received but not-yet-pulled frames do *not* count — they
    /// are complete frames, not truncation.
    pub fn mid_frame(&mut self) -> bool {
        if self.ready.is_empty() {
            self.scan();
        }
        self.pos < self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(dec: &mut FrameDecoder) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            out.push(f.into_vec());
        }
        out
    }

    #[test]
    fn frames_reassemble_across_any_split() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xAB; 300]];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f, MAX_FRAME).unwrap());
        }
        // Feed one byte at a time: the worst-case split.
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            out.extend(collect(&mut dec));
        }
        assert_eq!(out, frames);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut dec = FrameDecoder::new(1024);
        // u32::MAX carries BATCH_FLAG; the *masked* length is what gets
        // bounds-checked (and rejected) before any allocation.
        dec.push(&u32::MAX.to_le_bytes());
        assert_eq!(
            dec.next_frame().map(|f| f.map(|v| v.into_vec())),
            Err(TransportError::FrameTooLarge {
                len: (!BATCH_FLAG) as u64,
                max: 1024,
            })
        );
    }

    #[test]
    fn oversized_send_fails_locally() {
        let payload = vec![0u8; 10];
        assert!(matches!(
            encode_frame(&payload, 4),
            Err(TransportError::FrameTooLarge { len: 10, max: 4 })
        ));
    }

    #[test]
    fn preamble_validation() {
        assert!(check_preamble(&PREAMBLE).is_ok());
        assert_eq!(
            check_preamble(&[b'G', b'R', b'D', 99]),
            Err(TransportError::VersionMismatch {
                got: 99,
                want: TRANSPORT_VERSION
            })
        );
        assert!(matches!(
            check_preamble(&[0, 0, 0, TRANSPORT_VERSION]),
            Err(TransportError::Io {
                op: "handshake",
                ..
            })
        ));
    }

    #[test]
    fn truncated_stream_reports_mid_frame() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let enc = encode_frame(&[1, 2, 3, 4], MAX_FRAME).unwrap();
        dec.push(&enc[..enc.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.mid_frame());
    }

    fn encode_batch(frames: &[Vec<u8>]) -> Vec<u8> {
        let body = batch_body(frames);
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        buf
    }

    #[test]
    fn batch_round_trips_through_the_decoder() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xAB; 300]];
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&encode_batch(&frames));
        assert_eq!(collect(&mut dec), frames);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn empty_batch_is_consumed_silently() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&encode_batch(&[]));
        dec.push(&encode_frame(&[9], MAX_FRAME).unwrap());
        assert_eq!(collect(&mut dec), vec![vec![9]]);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn nested_batch_is_rejected() {
        // A batch whose sub-length carries BATCH_FLAG: hostile framing.
        let mut body = Vec::new();
        body.extend_from_slice(&(1u32 | BATCH_FLAG).to_le_bytes());
        body.push(0);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Io { op: "recv", .. })
        ));
    }

    #[test]
    fn truncated_batch_body_is_rejected() {
        // Batch body of 2 bytes cannot hold a 4-byte sub-header.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(2u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Io { op: "recv", .. })
        ));
    }

    #[test]
    fn batch_sub_frame_overrunning_body_is_rejected() {
        // Sub-header claims 100 bytes but the body ends after 1.
        let mut body = Vec::new();
        body.extend_from_slice(&100u32.to_le_bytes());
        body.push(0);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Io { op: "recv", .. })
        ));
    }

    #[test]
    fn oversized_batch_sub_frame_is_rejected() {
        // A small container whose sub-header *claims* a giant frame: the
        // lie is caught as FrameTooLarge, never as an allocation.
        let mut body = Vec::new();
        body.extend_from_slice(&(1u32 << 24).to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
        buf.extend_from_slice(&body);
        let mut dec = FrameDecoder::new(4096);
        dec.push(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::FrameTooLarge { len, .. }) if len == 1 << 24
        ));
    }

    #[test]
    fn frames_before_a_framing_violation_still_deliver() {
        let mut dec = FrameDecoder::new(1024);
        let mut stream = encode_frame(&[1, 2], 1024).unwrap();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        dec.push(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap(), [1u8, 2][..]);
        assert!(dec.next_frame().is_err());
        // The poison is sticky: the stream never decodes further.
        assert!(dec.next_frame().is_err());
        assert!(dec.mid_frame());
    }

    #[test]
    fn views_share_one_block_and_recycle_it_through_the_pool() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let frames: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 16]).collect();
        dec.push(&encode_batch(&frames));
        let views: Vec<FrameView> = {
            let mut v = Vec::new();
            while let Some(f) = dec.next_frame().unwrap() {
                v.push(f);
            }
            v
        };
        assert_eq!(views.len(), frames.len());
        // Zero-copy: every view points into one shared block.
        let base = views[0].as_ptr() as usize;
        for (i, v) in views.iter().enumerate() {
            assert_eq!(&v[..], frames[i].as_slice());
            let off = v.as_ptr() as usize - base;
            assert!(off < 8 * (16 + 4) + 4, "view left the shared block");
        }
        // Dropping every view retires the block's storage to the pool...
        assert_eq!(dec.pool().parked(), 0);
        drop(views);
        assert_eq!(dec.pool().parked(), 1);
        // ...and the next freeze reuses it: steady state allocates no
        // fresh blocks.
        dec.push(&encode_frame(&[42], MAX_FRAME).unwrap());
        let v = dec.next_frame().unwrap().unwrap();
        assert_eq!(v, [42u8][..]);
        assert_eq!(dec.pool().parked(), 0);
    }

    #[test]
    fn views_survive_decoder_death_and_pool_dies_cleanly() {
        // Session death with frames still in flight: the views must stay
        // readable (no use-after-retire), and their eventual drop must
        // not resurrect the retired pool.
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.push(&encode_frame(&[7, 7, 7], MAX_FRAME).unwrap());
        let view = dec.next_frame().unwrap().unwrap();
        drop(dec); // kill -9 equivalent: connection and decoder are gone
        assert_eq!(view, [7u8, 7, 7][..]);
        let copy = view.clone();
        drop(view);
        assert_eq!(copy, [7u8, 7, 7][..]);
        drop(copy); // block frees here; the Weak pool edge upgrades to None
    }

    #[test]
    fn into_vec_is_move_not_copy_for_sole_whole_block_views() {
        // An Owned view round-trips its exact allocation.
        let data = vec![1u8, 2, 3, 4];
        let ptr = data.as_ptr() as usize;
        let view = FrameView::from(data);
        let back = view.into_vec();
        assert_eq!(back.as_ptr() as usize, ptr);
        assert_eq!(back, vec![1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod proptests {
    //! The satellite property: frame reassembly over adversarial partial
    //! reads / split writes round-trips every `proto` message on the uds
    //! codec. The split points are drawn by proptest, so shrinking finds
    //! the minimal pathological split when a regression appears.

    use super::*;
    use crate::proto::{ConnectInfo, Request, Response};
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;
    use proptest::strategy::BoxedStrategy;

    fn arb_request() -> BoxedStrategy<Request> {
        prop_oneof![
            any::<u64>()
                .prop_map(|mem_requirement| Request::Connect {
                    mem_requirement,
                    hint: None,
                    qos: (mem_requirement % 2) as u8,
                })
                .boxed(),
            Just(Request::Disconnect).boxed(),
            pvec(any::<u8>(), 0..300)
                .prop_map(|bytes| Request::RegisterFatbin {
                    bytes: bytes.into()
                })
                .boxed(),
            any::<u64>()
                .prop_map(|bytes| Request::Malloc { bytes })
                .boxed(),
            (any::<u64>(), pvec(any::<u8>(), 0..300))
                .prop_map(|(dst, data)| Request::MemcpyH2D {
                    dst,
                    data: data.into()
                })
                .boxed(),
            (
                pvec(0x20u8..0x7F, 0..24),
                pvec(any::<u8>(), 0..128),
                any::<bool>()
            )
                .prop_map(|(name, args, driver_level)| Request::Launch {
                    kernel: name.into_iter().map(char::from).collect::<String>().into(),
                    cfg: gpu_sim::LaunchConfig::linear(1, 32),
                    args: args.into(),
                    driver_level,
                })
                .boxed(),
            Just(Request::Sync).boxed(),
            Just(Request::Stats).boxed(),
        ]
        .boxed()
    }

    fn arb_response() -> BoxedStrategy<Response> {
        prop_oneof![
            Just(Response::Unit).boxed(),
            ((any::<u32>(), any::<u64>()), (any::<u64>(), any::<u64>()))
                .prop_map(|((client, base), (size, ghz_bits))| {
                    Response::Connected(ConnectInfo {
                        client,
                        clock_ghz: f64::from_bits(ghz_bits),
                        partition_base: base,
                        partition_size: size,
                        deferred_launch: client % 2 == 0,
                        device: client % 3,
                        lease_mem: base ^ size,
                        lease_ttl_ms: size.rotate_left(7),
                        qos: (client % 2) as u8,
                    })
                })
                .boxed(),
            any::<u64>().prop_map(Response::Ptr).boxed(),
            pvec(any::<u8>(), 0..300).prop_map(Response::Data).boxed(),
            any::<u64>().prop_map(Response::Cycles).boxed(),
        ]
        .boxed()
    }

    /// Split `stream` at the given (wrapped) cut points and push the
    /// chunks one by one, collecting every completed frame.
    fn reassemble(stream: &[u8], cuts: &[u16]) -> Vec<FrameView> {
        let mut points: Vec<usize> = cuts
            .iter()
            .map(|&i| i as usize % (stream.len() + 1))
            .collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for w in points.windows(2) {
            dec.push(&stream[w[0]..w[1]]);
            while let Some(f) = dec.next_frame().expect("well-formed stream") {
                out.push(f);
            }
        }
        assert!(!dec.mid_frame(), "bytes left over after full stream");
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// A run of proto requests survives encode → arbitrary stream
        /// splits → reassemble → decode, message for message — and the
        /// zero-copy view decoder agrees bit-for-bit with the owned
        /// decoder on every frame.
        #[test]
        fn requests_round_trip_any_split(
            reqs in pvec(arb_request(), 1..8),
            cuts in pvec(any::<u16>(), 0..24),
        ) {
            let mut stream = Vec::new();
            for req in &reqs {
                stream.extend_from_slice(&encode_frame(&req.encode(), MAX_FRAME).unwrap());
            }
            let frames = reassemble(&stream, &cuts);
            prop_assert_eq!(frames.len(), reqs.len());
            for (frame, req) in frames.iter().zip(&reqs) {
                prop_assert_eq!(&Request::decode(frame).expect("decode"), req);
                prop_assert_eq!(
                    &Request::decode_view(frame).expect("decode_view"),
                    req
                );
            }
        }

        /// Same law for responses (covers float payloads: frame bytes
        /// compare exactly, NaN-safe).
        #[test]
        fn responses_round_trip_any_split(
            resps in pvec(arb_response(), 1..8),
            cuts in pvec(any::<u16>(), 0..24),
        ) {
            let mut stream = Vec::new();
            let mut expect = Vec::new();
            for resp in &resps {
                let payload = resp.encode();
                stream.extend_from_slice(&encode_frame(&payload, MAX_FRAME).unwrap());
                expect.push(payload);
            }
            let frames = reassemble(&stream, &cuts);
            prop_assert_eq!(frames.len(), expect.len());
            for (frame, payload) in frames.iter().zip(&expect) {
                prop_assert_eq!(&frame[..], payload.as_slice());
                Response::decode(frame).expect("decode");
            }
        }

        /// Garbage bytes never panic the decoder: it either yields frames
        /// (which `proto` then rejects in its own total decoder) or a
        /// framing error, but no allocation blow-up or slice panic.
        #[test]
        fn decoder_total_on_garbage(
            chunks in pvec(pvec(any::<u8>(), 0..64), 0..8),
        ) {
            let mut dec = FrameDecoder::new(4096);
            for c in &chunks {
                dec.push(c);
                while let Ok(Some(_)) = dec.next_frame() {}
            }
        }

        /// One connection mixing proto v1 and v2 frames — some sent
        /// plain, some coalesced into batch frames — reassembles and
        /// decodes message-for-message across arbitrary stream splits,
        /// and the zero-copy view decoder stays bit-for-bit equivalent
        /// to the owned decoder on this mixed-version traffic. This is
        /// exactly what a legacy client talking to a batching manager
        /// (or vice versa) produces.
        #[test]
        fn mixed_v1_v2_and_batched_frames_round_trip_any_split(
            reqs in pvec((arb_request(), any::<bool>()), 1..10),
            groups in pvec(1usize..4, 1..10),
            cuts in pvec(any::<u16>(), 0..24),
        ) {
            // Encode each request, downgrading a random subset to proto
            // v1 (legal for these shapes: plain bodies are bit-identical
            // across versions, and a hintless v1 Connect simply ends
            // after mem_requirement — drop the v5 qos byte and the
            // has-hint byte).
            let payloads: Vec<Vec<u8>> = reqs
                .iter()
                .map(|(req, v1)| {
                    let mut p = req.encode();
                    if *v1 {
                        p[0] = 1;
                        if matches!(req, Request::Connect { hint: None, .. }) {
                            p.pop();
                            p.pop();
                        }
                    }
                    p
                })
                .collect();
            // What each frame should decode back to: a v1 Connect lost
            // its qos request, so it decodes as best-effort (0).
            let expected: Vec<Request> = reqs
                .iter()
                .map(|(req, v1)| match req {
                    Request::Connect {
                        mem_requirement,
                        hint,
                        ..
                    } if *v1 => Request::Connect {
                        mem_requirement: *mem_requirement,
                        hint: *hint,
                        qos: 0,
                    },
                    other => other.clone(),
                })
                .collect();
            // Group consecutive payloads: groups of one go out as plain
            // frames, larger groups as batch frames.
            let mut stream = Vec::new();
            let mut it = payloads.iter().peekable();
            let mut gi = 0;
            while it.peek().is_some() {
                let n = groups[gi % groups.len()];
                gi += 1;
                let group: Vec<Vec<u8>> = it.by_ref().take(n).cloned().collect();
                if group.len() == 1 {
                    stream.extend_from_slice(&encode_frame(&group[0], MAX_FRAME).unwrap());
                } else {
                    let body = batch_body(&group);
                    stream.extend_from_slice(&(body.len() as u32 | BATCH_FLAG).to_le_bytes());
                    stream.extend_from_slice(&body);
                }
            }
            let frames = reassemble(&stream, &cuts);
            prop_assert_eq!(frames.len(), payloads.len());
            for (frame, payload) in frames.iter().zip(&payloads) {
                prop_assert_eq!(&frame[..], payload.as_slice());
            }
            for (frame, req) in frames.iter().zip(&expected) {
                let owned = Request::decode(frame).expect("decode");
                prop_assert_eq!(&owned, req);
                prop_assert_eq!(
                    &Request::decode_view(frame).expect("decode_view"),
                    &owned
                );
            }
        }

        /// `split_batch` is total on hostile bodies: any byte soup either
        /// splits cleanly or errors — no panic, no runaway allocation.
        #[test]
        fn split_batch_total_on_garbage(body in pvec(any::<u8>(), 0..256)) {
            let _ = split_batch(&body, 4096);
        }

        /// batch_body/split_batch are inverses for any frame set.
        #[test]
        fn batch_body_round_trips(frames in pvec(pvec(any::<u8>(), 0..64), 0..8)) {
            let body = batch_body(&frames);
            prop_assert_eq!(split_batch(&body, MAX_FRAME).unwrap(), frames);
        }

        /// View-splitting a batch body agrees with the owned splitter on
        /// every input — including hostile ones, where both must reject.
        #[test]
        fn split_batch_views_matches_owned(body in pvec(any::<u8>(), 0..256)) {
            let owned = split_batch(&body, 4096);
            let view = FrameView::from(body.clone());
            let mut out = VecDeque::new();
            match (owned, split_batch_views(&view, 4096, &mut out)) {
                (Ok(frames), Ok(())) => {
                    prop_assert_eq!(frames.len(), out.len());
                    for (f, v) in frames.iter().zip(&out) {
                        prop_assert_eq!(f.as_slice(), &v[..]);
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "splitters disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
            }
        }
    }
}
