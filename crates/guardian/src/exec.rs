//! The event-driven session executor: a small pool of workers
//! multiplexing every event-capable connection over one epoll instance.
//!
//! Under the original data plane each accepted connection got its own OS
//! thread, which stops scaling once tenants outnumber cores: hundreds of
//! mostly-idle session threads cost stacks, scheduler churn, and wakeup
//! latency. Here sessions stop being threads and become state machines
//! ([`SessionCtx`]) attached to **cells**; N workers (one per core by
//! default) sleep in `epoll_wait` and pump whichever cells have traffic.
//!
//! Each cell owns its connection, its session state, and the fd set it
//! has registered (a Unix socket; for shared-memory rings the doorbell
//! eventfd plus the lifeline socket). Epoll events carry the cell id.
//! Workers race on a per-cell `dirty` flag + `try_lock` so a cell is
//! drained by at most one worker while wakeups landing mid-drain are
//! never lost:
//!
//! * an event marks the cell dirty, then tries the state lock;
//! * the losing worker walks away — the winner re-checks `dirty` after
//!   its drain and loops;
//! * fds are registered level-triggered + `EPOLLONESHOT` and re-armed
//!   after every drain, so a frame that slips in between the final
//!   empty `try_recv` and the re-arm immediately re-fires.
//!
//! Replies produced within one drain are coalesced into batched sends
//! ([`Connection::send_batch`]) — the server-side half of the frame
//! batching that the client library applies to its deferred launches.
//!
//! A connection that turns out not to be event-capable after its
//! deferred handshake (a doorbell-less legacy shm peer: `event_fds`
//! comes back empty) is **demoted** to a dedicated blocking thread, the
//! pre-executor behaviour. Its cell stays in the map until the thread
//! exits so shutdown still accounts for it.

use crate::session::{self, SessionCtx, Step};
use crate::telemetry::ExecGauges;
use crate::transport::sys::{self, Epoll, OwnedFd};
use crate::transport::Connection;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Registration flags for session fds: readable / peer-hung-up, one
/// shot (re-armed after each drain so two workers never drain one fd).
const EV_FLAGS: u32 = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT;

/// Reply frames buffered during one drain are flushed (as one batched
/// send) at this many, bounding per-cell memory on reply-heavy runs.
const REPLY_FLUSH: usize = 64;

/// Frames a best-effort session may pump per drain round while a
/// latency-class session has frames waiting (from the epoll event
/// firing until its drain completes), or while its own tenant is over
/// the inflight-launch budget. The cap is per round, not absolute —
/// the gated cell is parked on the worker's backlog and re-drained
/// after every other ready cell got a turn — so a gated session's
/// `Sync` still reaches the device and nothing livelocks; the session
/// is merely paced while priority traffic is active. Also the
/// flush-batch ceiling of a gated round: each capped round is one
/// bounded device-lock acquisition.
const QOS_GATED_DRAIN_CAP: u64 = 16;

/// Epoll data value reserved for the shutdown eventfd. Cell ids start
/// at 1 and are shifted left by two to carry the fd index, so every
/// cell's data is ≥ 4 and can never collide with this.
const SHUTDOWN_ID: u64 = 0;

/// Bit in [`Cell::fired`] meaning "an fd beyond index 2 fired — re-arm
/// everything". No current transport registers more than two fds.
const FIRED_ALL: u32 = 1 << 3;

/// Pack a cell id and an fd index into one epoll data word. Indexes
/// saturate at 3, the [`FIRED_ALL`] sentinel.
fn ev_data(cell_id: u64, idx: usize) -> u64 {
    (cell_id << 2) | (idx.min(3) as u64)
}

struct CellState {
    conn: Box<dyn Connection>,
    ctx: SessionCtx,
}

struct Cell {
    id: u64,
    /// `None` once the state moved out — to a demotion thread, or into
    /// teardown. Stale epoll events then find nothing to do.
    state: Mutex<Option<CellState>>,
    /// Set by every event before trying the state lock; cleared by the
    /// draining worker before each pump. A set flag after a drain means
    /// another event landed mid-drain: drain again.
    dirty: AtomicBool,
    /// Bitmask of fd indexes whose `EPOLLONESHOT` delivery disarmed
    /// them since the last re-arm. Set (with the index from the epoll
    /// data word) *before* `dirty`, so the draining worker's re-arm
    /// pass — `swap(0)` — is guaranteed to observe the bit of any
    /// delivery it is responsible for re-arming. Only fired fds get an
    /// `EPOLL_CTL_MOD` after a drain; quiet fds are still armed.
    fired: AtomicU32,
    /// fds currently registered with the epoll instance for this cell.
    /// Re-queried from the connection after every drain: a shm session
    /// gains its doorbell fd when the deferred handshake completes.
    registered: Mutex<Vec<i32>>,
    /// Cached QoS class of the attached session, refreshed after every
    /// drain (lease overrides demote live). Lets the event-arrival
    /// path — which cannot take the state lock — tick the
    /// latency-pending gauge the moment a latency tenant has traffic.
    is_latency: AtomicBool,
    /// True from the moment an event fires for a latency cell until
    /// its next drain completes: the window during which best-effort
    /// drain rounds are capped on this latency tenant's behalf. On a
    /// single-core worker this window is the only one that matters —
    /// a latency session never has "a drain in flight" while another
    /// cell is being pumped, it has *frames waiting in its socket*.
    latency_waiting: AtomicBool,
}

struct PoolInner {
    epoll: Epoll,
    /// Written once at shutdown; registered level-triggered *without*
    /// `EPOLLONESHOT` under [`SHUTDOWN_ID`], so every worker wakes
    /// (and keeps waking) until it observes `stop`.
    shutdown_bell: OwnedFd,
    stop: AtomicBool,
    cells: Mutex<HashMap<u64, Arc<Cell>>>,
    /// Notified when the last cell is removed; `shutdown` waits on it.
    idle: Condvar,
    next_id: AtomicU64,
    /// Threads owning demoted sessions; joined at shutdown.
    demoted: Mutex<Vec<JoinHandle<()>>>,
    /// Park/wake/re-arm counters, shared with the control plane's
    /// `/metrics` rendering.
    gauges: Arc<ExecGauges>,
}

/// The executor pool. Owned by the acceptor; created lazily on the
/// first event-capable connection, shut down after the listener closes.
pub(crate) struct EventPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl EventPool {
    /// Start `workers` pump threads (`0` = one per available core).
    pub(crate) fn new(workers: usize, gauges: Arc<ExecGauges>) -> Self {
        let n = if workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        } else {
            workers
        };
        let epoll = Epoll::new().expect("create executor epoll");
        let shutdown_bell = sys::eventfd_new().expect("create executor shutdown eventfd");
        epoll
            .add(shutdown_bell.raw(), sys::EPOLLIN, SHUTDOWN_ID)
            .expect("register executor shutdown eventfd");
        let inner = Arc::new(PoolInner {
            epoll,
            shutdown_bell,
            stop: AtomicBool::new(false),
            cells: Mutex::new(HashMap::new()),
            idle: Condvar::new(),
            next_id: AtomicU64::new(1),
            demoted: Mutex::new(Vec::new()),
            gauges,
        });
        let workers = (0..n)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("grdEvent-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn grdEvent worker")
            })
            .collect();
        EventPool { inner, workers }
    }

    /// Hand a connection (already switched into event mode) and its
    /// session to the pool.
    pub(crate) fn adopt(&self, conn: Box<dyn Connection>, ctx: SessionCtx) {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let fds = conn.event_fds();
        let latency = ctx.qos_is_latency();
        let cell = Arc::new(Cell {
            id,
            state: Mutex::new(Some(CellState { conn, ctx })),
            dirty: AtomicBool::new(false),
            fired: AtomicU32::new(0),
            registered: Mutex::new(Vec::new()),
            is_latency: AtomicBool::new(latency),
            latency_waiting: AtomicBool::new(false),
        });
        self.inner.cells.lock().unwrap().insert(id, cell.clone());
        if fds.is_empty() {
            // Nothing pollable at all: straight to a dedicated thread.
            let st = cell.state.lock().unwrap().take().expect("fresh cell");
            demote(&self.inner, &cell, st);
            return;
        }
        // Register only after the map insertion so a worker woken by an
        // already-readable fd (level-triggered add) can find the cell.
        sync_registration(&self.inner, &cell, &fds);
    }

    /// Wait for every session to finish — clients dropping their
    /// connections is what ends sessions, exactly the contract the
    /// thread-per-session acceptor had by joining each session thread —
    /// then stop and join the workers.
    pub(crate) fn shutdown(self) {
        {
            let mut cells = self.inner.cells.lock().unwrap();
            while !cells.is_empty() {
                cells = self.inner.idle.wait(cells).unwrap();
            }
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        sys::eventfd_signal(self.inner.shutdown_bell.raw());
        for w in self.workers {
            let _ = w.join();
        }
        let demoted = std::mem::take(&mut *self.inner.demoted.lock().unwrap());
        for t in demoted {
            let _ = t.join();
        }
    }
}

fn worker_loop(inner: &Arc<PoolInner>) {
    // Cells whose drain round was QoS-gated, parked here so freshly
    // fired cells — the latency session the gate is protecting — get
    // the worker first. Without this a single-core worker would chew
    // through a storm's whole socket buffer in capped chunks while the
    // priority tenant's sync sits one epoll event away, unserved.
    let mut backlog: std::collections::VecDeque<Arc<Cell>> = std::collections::VecDeque::new();
    loop {
        let timeout = if backlog.is_empty() {
            inner.gauges.parks.fetch_add(1, Ordering::Relaxed);
            -1
        } else {
            0 // poll: never sleep on parked gated work
        };
        let events = inner.epoll.wait(64, timeout);
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        for (_mask, data) in events {
            if data != SHUTDOWN_ID {
                inner.gauges.wakes.fetch_add(1, Ordering::Relaxed);
                if let Some(gated) = handle_event(inner, data) {
                    backlog.push_back(gated);
                }
            }
        }
        // One parked cell per pass, so each gated chunk is separated
        // by a fresh look at the epoll queue.
        if let Some(cell) = backlog.pop_front() {
            if let Some(again) = service_cell(inner, &cell) {
                backlog.push_back(again);
            }
        }
    }
}

/// React to readiness on one cell: open the latency-pending window if
/// the cell's session is latency-class, then drain it. Returns the
/// cell if a QoS gate capped the drain and it needs re-servicing.
fn handle_event(inner: &Arc<PoolInner>, data: u64) -> Option<Arc<Cell>> {
    let (id, idx) = (data >> 2, (data & 3) as u32);
    let cell = match inner.cells.lock().unwrap().get(&id) {
        Some(c) => c.clone(),
        None => return None, // already closed; stale event
    };
    // Record which fd this delivery disarmed *before* raising `dirty`:
    // whoever ends up draining re-checks `dirty` after re-arming, so a
    // bit set before `dirty` is never stranded un-re-armed.
    cell.fired.fetch_or(1 << idx, Ordering::SeqCst);
    cell.dirty.store(true, Ordering::SeqCst);
    if cell.is_latency.load(Ordering::SeqCst) && !cell.latency_waiting.swap(true, Ordering::SeqCst)
    {
        inner
            .gauges
            .qos_latency_pending
            .fetch_add(1, Ordering::SeqCst);
    }
    service_cell(inner, &cell)
}

/// Close a cell's latency-pending window (its waiting frames have been
/// drained — or the cell is gone).
fn latency_window_close(inner: &PoolInner, cell: &Cell) {
    if cell.latency_waiting.swap(false, Ordering::SeqCst) {
        inner
            .gauges
            .qos_latency_pending
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Drain a cell if no other worker already is, looping until it is
/// quiet *and* no wakeup landed mid-drain. Returns the cell when a
/// round was QoS-gated with frames possibly still buffered: the caller
/// parks it behind newly fired cells instead of looping here, so the
/// latency traffic the gate protects is served between chunks. (A
/// quiet shm ring re-fires no fd for buffered frames — the handoff,
/// not epoll, is what guarantees the gated cell is ever re-drained.)
fn service_cell(inner: &Arc<PoolInner>, cell: &Arc<Cell>) -> Option<Arc<Cell>> {
    loop {
        let Ok(mut guard) = cell.state.try_lock() else {
            // Another worker holds the cell; it will observe `dirty`
            // after its drain and loop.
            return None;
        };
        cell.dirty.store(false, Ordering::SeqCst);
        let Some(st) = guard.as_mut() else {
            // Demoted or mid-teardown: nothing will drain here again.
            latency_window_close(inner, cell);
            return None;
        };
        let outcome = drain(st);
        // The buffered frames this window guarded are drained; refresh
        // the cached class while the lock is held (lease overrides
        // demote live).
        cell.is_latency
            .store(st.ctx.qos_is_latency(), Ordering::SeqCst);
        latency_window_close(inner, cell);
        if outcome.closed {
            let st = guard.take().expect("state present");
            drop(guard);
            remove_cell(inner, cell, st);
            return None;
        }
        // Re-query the fd set: a shm session's doorbell only exists
        // after its deferred handshake, and a doorbell-less peer is
        // only recognizable then — demote that one to a thread.
        let fds = st.conn.event_fds();
        if fds.is_empty() {
            let st = guard.take().expect("state present");
            drop(guard);
            demote(inner, cell, st);
            return None;
        }
        rearm_cell(inner, cell, &fds);
        if outcome.gated {
            cell.dirty.store(true, Ordering::SeqCst);
            drop(guard);
            return Some(cell.clone());
        }
        drop(guard);
        if !cell.dirty.load(Ordering::SeqCst) {
            return None;
        }
    }
}

/// What one drain round did: `closed` ends the session; `gated` means
/// the QoS gate capped the round with frames possibly still buffered.
struct DrainOutcome {
    closed: bool,
    gated: bool,
}

/// Pump one connection until nothing is buffered — or, for a
/// best-effort session while latency-class traffic is in flight (or
/// its tenant is over the inflight-launch budget), until the gated
/// per-round frame cap. Replies produced by the drained frames are
/// coalesced into batched sends. `closed` in the outcome means the
/// connection is done (peer gone, transport error, or a malformed
/// frame closed the session).
fn drain(st: &mut CellState) -> DrainOutcome {
    // Class snapshot for the whole round: balanced inc/dec of the
    // latency-pending gauge even if a lease override demotes the
    // tenant mid-drain.
    let latency = st.ctx.qos_is_latency();
    let gauges = st.ctx.exec_gauges();
    if latency {
        gauges.qos_latency_pending.fetch_add(1, Ordering::SeqCst);
    }
    let mut gated = false;
    let mut replies: Vec<Vec<u8>> = Vec::new();
    let mut closed = false;
    let mut frames: u64 = 0;
    loop {
        if !latency
            && frames >= QOS_GATED_DRAIN_CAP
            && (gauges.qos_latency_sessions.load(Ordering::SeqCst) > 0
                || gauges.qos_latency_pending.load(Ordering::SeqCst) > 0
                || st.ctx.qos_over_budget())
        {
            gated = true;
            break;
        }
        match st.conn.try_recv() {
            Ok(Some(frame)) => {
                frames += 1;
                match st.ctx.handle_frame(&frame) {
                    Step::Reply(r) => {
                        replies.push(r);
                        if replies.len() >= REPLY_FLUSH
                            && st.conn.send_batch(std::mem::take(&mut replies)).is_err()
                        {
                            closed = true;
                            break;
                        }
                    }
                    Step::None => {}
                    Step::ReplyThenClose(r) => {
                        replies.push(r);
                        closed = true;
                        break;
                    }
                }
            }
            Ok(None) => break,
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    if !replies.is_empty() && st.conn.send_batch(replies).is_err() {
        closed = true;
    }
    // Launches admitted during this drain hit the device as one batch:
    // one device-lock acquisition for the whole burst.
    st.ctx.flush_pending();
    st.ctx.note_frames(frames);
    st.ctx.note_drain(frames);
    if latency {
        gauges.qos_latency_pending.fetch_sub(1, Ordering::SeqCst);
    }
    if gated {
        gauges.qos_gated_rounds.fetch_add(1, Ordering::Relaxed);
    }
    DrainOutcome { closed, gated }
}

/// Post-drain epoll maintenance. If the connection's fd set changed
/// (shm handshake completed), fall back to a full [`sync_registration`].
/// Otherwise re-arm **only** the fds whose `EPOLLONESHOT` actually
/// delivered since the last re-arm — with frame batching, a drain that
/// pumped dozens of frames typically re-arms a single fd instead of
/// issuing an `epoll_ctl` per registered fd per drain.
fn rearm_cell(inner: &PoolInner, cell: &Cell, fds: &[i32]) {
    if *cell.registered.lock().unwrap() != *fds {
        sync_registration(inner, cell, fds);
        // Every fd was just armed; bits set concurrently refer to
        // deliveries those arms already supersede.
        cell.fired.store(0, Ordering::SeqCst);
        return;
    }
    let fired = cell.fired.swap(0, Ordering::SeqCst);
    if fired == 0 {
        return;
    }
    let mut rearmed: u64 = 0;
    if fired & FIRED_ALL != 0 {
        for (i, fd) in fds.iter().enumerate() {
            let _ = inner.epoll.rearm(*fd, EV_FLAGS, ev_data(cell.id, i));
            rearmed += 1;
        }
    } else {
        for (i, fd) in fds.iter().enumerate().take(3) {
            if fired & (1 << i) != 0 {
                let _ = inner.epoll.rearm(*fd, EV_FLAGS, ev_data(cell.id, i));
                rearmed += 1;
            }
        }
    }
    inner.gauges.rearms.fetch_add(rearmed, Ordering::Relaxed);
}

/// Bring the epoll registration in line with the connection's current
/// fd set, re-arming unchanged fds (they are `EPOLLONESHOT`-disarmed
/// after delivering). Level-triggered re-arm means an fd that is still
/// readable fires again immediately — the property that makes the
/// dirty-flag race benign.
fn sync_registration(inner: &PoolInner, cell: &Cell, fds: &[i32]) {
    let mut reg = cell.registered.lock().unwrap();
    for fd in reg.iter() {
        if !fds.contains(fd) {
            inner.epoll.del(*fd);
        }
    }
    for (i, fd) in fds.iter().enumerate() {
        if reg.contains(fd) {
            let _ = inner.epoll.rearm(*fd, EV_FLAGS, ev_data(cell.id, i));
        } else {
            let _ = inner.epoll.add(*fd, EV_FLAGS, ev_data(cell.id, i));
        }
    }
    if *reg != fds {
        *reg = fds.to_vec();
    }
}

/// Tear a finished cell down: unregister its fds, run the session's
/// implicit disconnect, drop the connection, and wake `shutdown` if it
/// was the last.
fn remove_cell(inner: &PoolInner, cell: &Cell, mut st: CellState) {
    for fd in cell.registered.lock().unwrap().drain(..) {
        inner.epoll.del(fd);
    }
    st.ctx.finish();
    drop(st);
    let mut cells = inner.cells.lock().unwrap();
    cells.remove(&cell.id);
    if cells.is_empty() {
        inner.idle.notify_all();
    }
}

/// Move a session onto its own blocking thread (the pre-executor
/// behaviour) when its connection cannot signal readiness through fds.
fn demote(inner: &Arc<PoolInner>, cell: &Cell, st: CellState) {
    for fd in cell.registered.lock().unwrap().drain(..) {
        inner.epoll.del(fd);
    }
    let pool = inner.clone();
    let id = cell.id;
    let join = std::thread::Builder::new()
        .name("grdSession".into())
        .spawn(move || {
            let CellState { conn, ctx } = st;
            session::run_session(conn, ctx);
            let mut cells = pool.cells.lock().unwrap();
            cells.remove(&id);
            if cells.is_empty() {
                pool.idle.notify_all();
            }
        })
        .expect("spawn grdSession thread");
    inner.demoted.lock().unwrap().push(join);
}
