//! # guardian — safe GPU sharing in multi-tenant environments
//!
//! The reproduction of the paper's contribution: transparent memory and
//! fault isolation for tenants sharing a GPU spatially, with no static
//! partitioning and no special hardware.
//!
//! Architecture (Figure 3 of the paper, as a layered RPC stack):
//!
//! * [`GrdLib`] — the client-side interposer. Implements the whole
//!   `cuda_rt::CudaApi` trait by encoding every call as a wire frame;
//!   applications (and the closed-source-style accelerated libraries they
//!   use) cannot reach the GPU any other way.
//! * [`proto`] — the wire protocol: typed request/response messages that
//!   serialize to self-contained byte frames (no channels or closures
//!   inside messages), so the tenant boundary could genuinely be a socket
//!   or shared-memory ring.
//! * [`transport`] — how frames travel: `Connection`/`Listener`/`Dialer`
//!   traits with three implementations — in-process channels, Unix domain
//!   sockets ([`transport::uds`]), and shared-memory rings
//!   ([`transport::shm`]); one connection per tenant, the connection is
//!   the identity. The socket transports make tenants real OS processes
//!   (see the `guardiand` daemon crate).
//! * [`manager`] — the `grdManager` **control plane**: a serialized
//!   thread owning one partition table (power-of-two, contiguous —
//!   [`alloc`]) and one sandboxed-kernel registry **per GPU** of its
//!   device set; handles connect (routed across devices by
//!   [`placement`] — least-loaded, round-robin, or an explicit
//!   [`PlacementHint`]), disconnect, fatbin/PTX registration,
//!   malloc/free, live partition **migration** between GPUs, and a
//!   one-step rebalancer. A one-device set is exactly the single-GPU
//!   manager.
//! * `session` (internal) — the **data plane**: one session thread per
//!   tenant executing transfers, launches, syncs, and events concurrently
//!   across tenants against read-mostly shared state; checks every host
//!   transfer against the partition bounds, swaps launches for sandboxed
//!   kernels with the caller's bounds appended, and issues on the
//!   tenant's stream of its **bound GPU** (ops hold the binding read
//!   lock, so a migration's write acquisition is the barrier). OOB
//!   detection kills only the offender — keyed by `(gpu, stream)` —
//!   whichever session observes the fault.
//! * [`control`] — the node **control plane** riding above the manager:
//!   tenant leases ([`LeaseSpec`] — memory cap, stream cap, TTL with
//!   manager-side expiry sweep and operator revocation), per-uid quota
//!   and usage accounting that survives tenant death, a per-uid
//!   connect-rate token bucket ([`Admission`]) for the transport accept
//!   loops, and the admin plane (`guardianctl`'s uds endpoint plus an
//!   optional HTTP `/metrics` mirror) serving Prometheus-text metrics
//!   and live device/tenant tables.
//! * [`backends`] — deployment setups for the paper's comparisons:
//!   native time-sharing, MPS-style spatial sharing (protection without
//!   fault isolation), and Guardian in its three enforcement modes.
//!
//! The PTX-level instrumentation itself lives in the `ptx-patcher` crate;
//! the manager applies it to every registered fatbin at initialization.
//!
//! # Examples
//!
//! Two tenants, one GPU, full isolation:
//!
//! ```
//! use guardian::backends::{deploy, Deployment};
//! use gpu_sim::{spec::test_gpu, Device};
//!
//! let device = cuda_rt::share_device(Device::new(test_gpu()));
//! let tenancy = deploy(
//!     &device,
//!     Deployment::GuardianFencing,
//!     2,                 // tenants
//!     4 << 20,           // 4 MiB partition each
//!     &[],               // fatbins registered later
//! )?;
//! let mut tenants = tenancy.runtimes;
//! let a = tenants[0].cuda_malloc(4096)?;
//! let b = tenants[1].cuda_malloc(4096)?;
//! assert_ne!(a, b);
//! // Tenant 0 cannot copy into tenant 1's partition:
//! assert!(tenants[0].cuda_memcpy_h2d(b, &[0u8; 16]).is_err());
//! // Teardown is Drop-based: tenants disconnect, then the manager handle
//! // joins the manager threads. (`Tenancy::shutdown`/`ManagerHandle::
//! // shutdown` remain as explicit eager paths.)
//! # Ok::<(), cuda_rt::CudaError>(())
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod alloc_audit;
pub mod backends;
pub mod control;
mod exec;
pub mod grdlib;
pub mod manager;
pub mod placement;
pub mod proto;
mod session;
pub mod telemetry;
pub mod transport;

pub use alloc::{AllocError, Partition, PartitionAllocator, RegionAllocator};
pub use backends::{deploy, Capabilities, Deployment, MpsClient, Tenancy};
pub use control::{Admission, ControlPlane, LeaseSpec, QosClass};
pub use grdlib::GrdLib;
pub use manager::{
    spawn_manager, spawn_manager_multi, spawn_manager_over, ClientId, DispatchMode,
    InterceptionStats, LaunchAck, LaunchStats, LogLevel, ManagerConfig, ManagerHandle,
    SessionDriver,
};
pub use placement::{Affinity, PlacementHint, PlacementPolicy};
pub use ptx_patcher::Protection;
pub use transport::BoundTransport;

pub mod fixtures {
    //! PTX kernel fixtures shared by guardian's unit tests, the
    //! workspace stress suite, and the dispatch benches — one canonical
    //! copy so the kernels the security tests confine are byte-identical
    //! to the ones the stress/throughput harnesses drive. Also hosts the
    //! socket-path helper the transport tests and benches share.

    /// A fresh, collision-free socket path in the system temp directory.
    /// Test/bench support for the socket transports: unique per call
    /// (process id + counter) so concurrently running suites never race
    /// on a path.
    pub fn temp_socket_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("grd-{}-{tag}-{n}.sock", std::process::id()))
    }

    /// A well-behaved kernel writing tid into out[tid] (`fill`).
    pub const FILL: &str = r#"
.version 7.7
.target sm_86
.address_size 64
.visible .entry fill(.param .u64 out, .param .u32 n)
{
    .reg .pred %p<2>;
    .reg .b32 %r<6>;
    .reg .b64 %rd<5>;
    ld.param.u64 %rd1, [out];
    ld.param.u32 %r1, [n];
    cvta.to.global.u64 %rd2, %rd1;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra $L_end;
    mul.wide.u32 %rd3, %r5, 4;
    add.s64 %rd4, %rd2, %rd3;
    st.global.u32 [%rd4], %r5;
$L_end:
    ret;
}
"#;

    /// A malicious kernel: writes a value at an arbitrary 64-bit address
    /// taken from its arguments (`stomp`, the Figure 1 attack).
    pub const STOMP: &str = r#"
.version 7.7
.target sm_86
.address_size 64
.visible .entry stomp(.param .u64 target, .param .u32 v)
{
    .reg .b32 %r<2>;
    .reg .b64 %rd<2>;
    ld.param.u64 %rd1, [target];
    ld.param.u32 %r1, [v];
    st.global.u32 [%rd1], %r1;
    ret;
}
"#;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::mig_capabilities;
    use crate::fixtures::{FILL as GOOD, STOMP as EVIL};
    use cuda_rt::{share_device, ArgPack, CudaError};
    use gpu_sim::spec::test_gpu;
    use gpu_sim::{Device, LaunchConfig};
    use ptx::fatbin::FatBin;

    fn fatbin() -> Vec<u8> {
        let mut fb = FatBin::new();
        fb.push_ptx("app", GOOD);
        fb.push_ptx("attack", EVIL);
        fb.to_bytes().to_vec()
    }

    fn setup(deployment: Deployment, tenants: usize) -> Tenancy {
        let device = share_device(Device::new(test_gpu()));
        let fb = fatbin();
        deploy(&device, deployment, tenants, 4 << 20, &[&fb]).unwrap()
    }

    #[test]
    fn guardian_tenant_runs_end_to_end() {
        let mut t = setup(Deployment::GuardianFencing, 1);
        let api = &mut t.runtimes[0];
        let buf = api.cuda_malloc(4 * 64).unwrap();
        let args = ArgPack::new().ptr(buf).u32(64).finish();
        api.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        )
        .unwrap();
        api.cuda_device_synchronize().unwrap();
        let out = api.cuda_memcpy_d2h(buf, 4 * 64).unwrap();
        for i in 0..64u32 {
            let v = u32::from_le_bytes(out[i as usize * 4..][..4].try_into().unwrap());
            assert_eq!(v, i);
        }
        t.shutdown();
    }

    #[test]
    fn fencing_confines_the_figure1_attack() {
        let mut t = setup(Deployment::GuardianFencing, 2);
        // Victim writes a secret.
        let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
        t.runtimes[1]
            .cuda_memcpy_h2d(victim_buf, &0xDEAD_BEEFu32.to_le_bytes())
            .unwrap();
        // Attacker aims a store directly at the victim's buffer address.
        let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
        t.runtimes[0]
            .cuda_launch_kernel(
                "stomp",
                LaunchConfig::linear(1, 1),
                &args,
                Default::default(),
            )
            .unwrap();
        t.runtimes[0].cuda_device_synchronize().unwrap();
        // The victim's data is intact: the store wrapped into the
        // attacker's own partition (Figure 4).
        let out = t.runtimes[1].cuda_memcpy_d2h(victim_buf, 4).unwrap();
        assert_eq!(u32::from_le_bytes(out.try_into().unwrap()), 0xDEAD_BEEF);
        // And the victim keeps running fine.
        t.runtimes[1].cuda_device_synchronize().unwrap();
        t.shutdown();
    }

    #[test]
    fn no_protection_lets_the_attack_corrupt() {
        let mut t = setup(Deployment::GuardianNoProtection, 2);
        let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
        t.runtimes[1]
            .cuda_memcpy_h2d(victim_buf, &0xDEAD_BEEFu32.to_le_bytes())
            .unwrap();
        let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
        t.runtimes[0]
            .cuda_launch_kernel(
                "stomp",
                LaunchConfig::linear(1, 1),
                &args,
                Default::default(),
            )
            .unwrap();
        t.runtimes[0].cuda_device_synchronize().unwrap();
        let out = t.runtimes[1].cuda_memcpy_d2h(victim_buf, 4).unwrap();
        // Silent corruption: exactly the hazard Guardian exists to stop.
        assert_eq!(u32::from_le_bytes(out.try_into().unwrap()), 0x4141_4141);
        t.shutdown();
    }

    #[test]
    fn checking_detects_and_kills_only_the_offender() {
        let mut t = setup(Deployment::GuardianChecking, 2);
        let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
        t.runtimes[1]
            .cuda_memcpy_h2d(victim_buf, &7u32.to_le_bytes())
            .unwrap();
        let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
        t.runtimes[0]
            .cuda_launch_kernel(
                "stomp",
                LaunchConfig::linear(1, 1),
                &args,
                Default::default(),
            )
            .unwrap();
        // The offender is terminated at its next synchronization point...
        assert!(t.runtimes[0].cuda_device_synchronize().is_err());
        let r = t.runtimes[0].cuda_malloc(16);
        assert!(matches!(r, Err(CudaError::Rejected(_))));
        // ...while the victim continues unharmed (OOB fault isolation).
        let out = t.runtimes[1].cuda_memcpy_d2h(victim_buf, 4).unwrap();
        assert_eq!(u32::from_le_bytes(out.try_into().unwrap()), 7);
        t.runtimes[1].cuda_device_synchronize().unwrap();
        t.shutdown();
    }

    #[test]
    fn mps_fault_takes_down_all_clients() {
        let mut t = setup(Deployment::Mps, 2);
        // Client 0 performs an ASID-violating access (aimed at client 1's
        // allocation address).
        let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
        let args = ArgPack::new().ptr(victim_buf).u32(1).finish();
        t.runtimes[0]
            .cuda_launch_kernel(
                "stomp",
                LaunchConfig::linear(1, 1),
                &args,
                Default::default(),
            )
            .unwrap();
        assert!(t.runtimes[0].cuda_device_synchronize().is_err());
        // The co-running *innocent* client is terminated too (§2.2).
        assert!(t.runtimes[1].cuda_device_synchronize().is_err());
        t.shutdown();
    }

    #[test]
    fn native_time_sharing_contains_faults() {
        let mut t = setup(Deployment::Native, 2);
        let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
        let args = ArgPack::new().ptr(victim_buf).u32(1).finish();
        t.runtimes[0]
            .cuda_launch_kernel(
                "stomp",
                LaunchConfig::linear(1, 1),
                &args,
                Default::default(),
            )
            .unwrap();
        assert!(t.runtimes[0].cuda_device_synchronize().is_err());
        // Time-sharing: the other context is unaffected.
        t.runtimes[1].cuda_device_synchronize().unwrap();
        t.shutdown();
    }

    #[test]
    fn transfers_outside_partition_are_rejected() {
        let mut t = setup(Deployment::GuardianFencing, 2);
        let own = t.runtimes[0].cuda_malloc(4096).unwrap();
        let other = t.runtimes[1].cuda_malloc(4096).unwrap();
        // Own partition: OK.
        t.runtimes[0].cuda_memcpy_h2d(own, &[1u8; 64]).unwrap();
        // Foreign destination: rejected by the bounds table.
        assert!(matches!(
            t.runtimes[0].cuda_memcpy_h2d(other, &[1u8; 64]),
            Err(CudaError::Rejected(_))
        ));
        // Foreign source for D2D: rejected.
        assert!(t.runtimes[0].cuda_memcpy_d2d(own, other, 64).is_err());
        // D2H from foreign memory (data theft): rejected.
        assert!(t.runtimes[0].cuda_memcpy_d2h(other, 64).is_err());
        t.shutdown();
    }

    #[test]
    fn kernel_reuse_attack_runs_in_callers_partition() {
        // §5: kernels are shared, but each launch gets the *caller's*
        // bounds. Tenant 0 launching the same sandboxed kernel as tenant 1
        // can only touch tenant 0's partition.
        let mut t = setup(Deployment::GuardianFencing, 2);
        let b0 = t.runtimes[0].cuda_malloc(256).unwrap();
        let b1 = t.runtimes[1].cuda_malloc(256).unwrap();
        t.runtimes[1].cuda_memcpy_h2d(b1, &[9u8; 4]).unwrap();
        // Both tenants use kernel `fill` (shared PTX), each on their own.
        for (i, buf) in [(0usize, b0), (1usize, b1)] {
            let args = ArgPack::new().ptr(buf).u32(8).finish();
            t.runtimes[i]
                .cuda_launch_kernel(
                    "fill",
                    LaunchConfig::linear(1, 8),
                    &args,
                    Default::default(),
                )
                .unwrap();
            t.runtimes[i].cuda_device_synchronize().unwrap();
        }
        let o0 = t.runtimes[0].cuda_memcpy_d2h(b0, 32).unwrap();
        let o1 = t.runtimes[1].cuda_memcpy_d2h(b1, 32).unwrap();
        assert_eq!(o0, o1, "same kernel, each confined to its own buffer");
        t.shutdown();
    }

    #[test]
    fn interception_stats_are_recorded() {
        let mut t = setup(Deployment::GuardianFencing, 1);
        let buf = t.runtimes[0].cuda_malloc(1024).unwrap();
        let args = ArgPack::new().ptr(buf).u32(16).finish();
        for _ in 0..10 {
            t.runtimes[0]
                .cuda_launch_kernel(
                    "fill",
                    LaunchConfig::linear(1, 16),
                    &args,
                    Default::default(),
                )
                .unwrap();
        }
        t.runtimes[0].cuda_device_synchronize().unwrap();
        let stats = t.manager.as_ref().unwrap().interception_stats();
        assert_eq!(stats.launches, 10);
        assert!(stats.lookup_cycles() > 0.0);
        t.shutdown();
    }

    #[test]
    fn partition_exhaustion_is_oom() {
        let device = share_device(Device::new(test_gpu()));
        let manager = spawn_manager(
            device,
            ManagerConfig {
                pool_bytes: Some(4 << 20),
                ..Default::default()
            },
            &[],
        )
        .unwrap();
        let _a = GrdLib::connect(&manager, 2 << 20).unwrap();
        let _b = GrdLib::connect(&manager, 2 << 20).unwrap();
        assert!(matches!(
            GrdLib::connect(&manager, 1 << 20),
            Err(CudaError::OutOfMemory)
        ));
        drop((_a, _b));
        manager.shutdown();
    }

    #[test]
    fn partition_is_reclaimed_after_disconnect() {
        let device = share_device(Device::new(test_gpu()));
        let manager = spawn_manager(
            device,
            ManagerConfig {
                pool_bytes: Some(4 << 20),
                ..Default::default()
            },
            &[],
        )
        .unwrap();
        {
            let _a = GrdLib::connect(&manager, 4 << 20).unwrap();
            assert!(GrdLib::connect(&manager, 4 << 20).is_err());
        }
        // After drop the partition can be granted again (allow the
        // manager thread a moment to process the disconnect).
        let mut ok = false;
        for _ in 0..100 {
            if GrdLib::connect(&manager, 4 << 20).is_ok() {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(ok, "partition not reclaimed");
        manager.shutdown();
    }

    #[test]
    fn table1_capability_matrix_matches_paper() {
        use Deployment::*;
        assert!(Native.capabilities().oob_fault_isolation);
        assert!(!Native.capabilities().spatial_sharing);
        assert!(!Mps.capabilities().oob_fault_isolation);
        assert!(Mps.capabilities().spatial_sharing);
        let g = GuardianFencing.capabilities();
        assert!(
            g.oob_fault_isolation
                && g.dynamic_resource_allocation
                && g.no_hw_support
                && g.spatial_sharing
        );
        let mig = mig_capabilities();
        assert!(mig.oob_fault_isolation && !mig.dynamic_resource_allocation);
    }

    #[test]
    fn concurrent_tenants_from_threads() {
        // Tenants drive the manager from separate threads, as real
        // processes would.
        let mut t = setup(Deployment::GuardianFencing, 3);
        let mut handles = Vec::new();
        for (i, mut rt) in t.runtimes.drain(..).enumerate() {
            handles.push(std::thread::spawn(move || {
                let buf = rt.cuda_malloc(4 * 128).unwrap();
                let args = ArgPack::new().ptr(buf).u32(128).finish();
                for _ in 0..5 {
                    rt.cuda_launch_kernel(
                        "fill",
                        LaunchConfig::linear(4, 32),
                        &args,
                        Default::default(),
                    )
                    .unwrap();
                }
                rt.cuda_device_synchronize().unwrap();
                let out = rt.cuda_memcpy_d2h(buf, 4 * 128).unwrap();
                for j in 0..128u32 {
                    let v = u32::from_le_bytes(out[j as usize * 4..][..4].try_into().unwrap());
                    assert_eq!(v, j, "tenant {i}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        if let Some(m) = t.manager.take() {
            m.shutdown();
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::alloc::{PartitionAllocator, RegionAllocator, MIN_PARTITION};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Buddy invariant: live partitions never overlap and are always
        /// self-aligned, under arbitrary alloc/free interleavings.
        #[test]
        fn buddy_never_overlaps(ops in proptest::collection::vec((0u8..2, 0usize..8, 1u64..8), 1..60)) {
            let mut pa = PartitionAllocator::new(1 << 40, 64 * MIN_PARTITION);
            let mut live: Vec<super::alloc::Partition> = Vec::new();
            for (op, idx, size_mult) in ops {
                if op == 0 {
                    if let Ok(p) = pa.alloc(size_mult * MIN_PARTITION) {
                        for q in &live {
                            prop_assert!(p.end() <= q.base || q.end() <= p.base);
                        }
                        prop_assert_eq!(p.base % p.size, 0);
                        live.push(p);
                    }
                } else if !live.is_empty() {
                    let p = live.swap_remove(idx % live.len());
                    prop_assert!(pa.free(p.base).is_ok());
                }
            }
            // Cleanup: everything freeable, pool fully restored.
            for p in live.drain(..) {
                prop_assert!(pa.free(p.base).is_ok());
            }
            prop_assert!(pa.alloc(64 * MIN_PARTITION).is_ok());
        }

        /// Region allocator: allocations stay in-partition and never
        /// overlap.
        #[test]
        fn region_allocs_disjoint(sizes in proptest::collection::vec(1u64..100_000, 1..40)) {
            let part = super::alloc::Partition { base: 1 << 40, size: 16 * MIN_PARTITION };
            let mut ra = RegionAllocator::new(part);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for s in sizes {
                if let Ok(a) = ra.alloc(s) {
                    prop_assert!(part.contains_range(a, s));
                    for &(b, l) in &live {
                        prop_assert!(a + s <= b || b + l <= a, "overlap");
                    }
                    live.push((a, s));
                }
            }
        }
    }
}
