//! The GPU manager (`grdManager`, §4.2): the only entity with GPU access.
//!
//! Applications never touch the device; their `grdLib` forwards every CUDA
//! runtime/driver call as a wire-protocol frame ([`crate::proto`]) over a
//! transport connection ([`crate::transport`]). Server-side the work is
//! split into two planes:
//!
//! * the **control plane** (this module): one serialized thread owning the
//!   partition table and kernel registry. It assigns each tenant a
//!   contiguous power-of-two **partition** and serves its allocations from
//!   it (§4.2.1), and sandboxes + pre-loads every registered fatbin/PTX
//!   image (§4.2.3, §4.4);
//! * the **data plane** ([`crate::session`]): one session thread per
//!   connected tenant, executing transfers, launches, syncs, and events
//!   concurrently across tenants against fine-grained shared state —
//!   checking every host transfer against the partition bounds (§4.2.2),
//!   swapping every launch for its sandboxed twin with the bounds
//!   appended, and issuing it on the tenant's stream (§4.2.3-4.2.4).
//!
//! Out-of-bounds detection terminates — only — the offending tenant,
//! regardless of which session observes the fault.

use crate::alloc::{PartitionAllocator, RegionAllocator};
use crate::session::{self, ClientShared, EventTable, KernelTable, Shared};
use crate::transport::{BoundTransport, Connection, Dialer};
use crate::{proto, transport};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use cuda_rt::{CudaError, CudaResult, DevicePtr, SharedDevice};
use gpu_sim::stream::CudaFunction;
use parking_lot::{Mutex, RwLock};
use ptx_patcher::{fence, Protection};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifies a connected tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u32);

/// Nominal host clock used to convert measured nanoseconds into the
/// "CPU cycles" unit of the paper's Table 5.
pub const HOST_GHZ: f64 = 3.0;

/// Host-side interception cost statistics for one launch path (Table 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterceptionStats {
    /// Launches measured.
    pub launches: u64,
    /// Total nanoseconds spent looking up the sandboxed kernel in the
    /// `pointerToSymbol` map.
    pub lookup_ns: u64,
    /// Total nanoseconds spent building the augmented parameter array.
    pub augment_ns: u64,
    /// Total nanoseconds spent enqueueing to the device.
    pub enqueue_ns: u64,
}

impl InterceptionStats {
    /// Average lookup cost in nominal CPU cycles.
    pub fn lookup_cycles(&self) -> f64 {
        cycles(self.lookup_ns, self.launches)
    }

    /// Average parameter-augmentation cost in nominal CPU cycles.
    pub fn augment_cycles(&self) -> f64 {
        cycles(self.augment_ns, self.launches)
    }

    /// Average enqueue cost in nominal CPU cycles.
    pub fn enqueue_cycles(&self) -> f64 {
        cycles(self.enqueue_ns, self.launches)
    }

    fn add(&mut self, lookup_ns: u64, augment_ns: u64, enqueue_ns: u64) {
        self.launches += 1;
        self.lookup_ns += lookup_ns;
        self.augment_ns += augment_ns;
        self.enqueue_ns += enqueue_ns;
    }
}

fn cycles(ns: u64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        ns as f64 / n as f64 * HOST_GHZ
    }
}

/// Launch interception costs split by API level, so Table 5 can
/// distinguish driver-level (`cuLaunchKernel`) from runtime-level
/// (`cudaLaunchKernel`) costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    /// Runtime-level launches (`cudaLaunchKernel`).
    pub runtime: InterceptionStats,
    /// Driver-level launches (`cuLaunchKernel`).
    pub driver: InterceptionStats,
}

impl LaunchStats {
    /// Both paths merged (the pre-split aggregate view).
    pub fn combined(&self) -> InterceptionStats {
        InterceptionStats {
            launches: self.runtime.launches + self.driver.launches,
            lookup_ns: self.runtime.lookup_ns + self.driver.lookup_ns,
            augment_ns: self.runtime.augment_ns + self.driver.augment_ns,
            enqueue_ns: self.runtime.enqueue_ns + self.driver.enqueue_ns,
        }
    }

    pub(crate) fn record(
        &mut self,
        driver_level: bool,
        lookup_ns: u64,
        augment_ns: u64,
        enqueue_ns: u64,
    ) {
        if driver_level {
            self.driver.add(lookup_ns, augment_ns, enqueue_ns);
        } else {
            self.runtime.add(lookup_ns, augment_ns, enqueue_ns);
        }
    }
}

/// How data-plane operations are scheduled across tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// One data-plane op at a time, globally — the old single-threaded
    /// dispatch core. Kept as the measurable baseline.
    Serial,
    /// Sessions of different tenants execute data-plane ops concurrently.
    #[default]
    Concurrent,
}

/// When a kernel-launch RPC is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaunchAck {
    /// Reply once the command is enqueued on the tenant's stream. The
    /// client observes enqueue-order errors synchronously, and —
    /// because the client blocks until the enqueue happened — the global
    /// device arrival order stays pinned under `cuda_rt::lockstep`, which
    /// the figure/table benches rely on for determinism.
    #[default]
    Eager,
    /// True asynchronous enqueue: `Launch` frames are one-way, the client
    /// returns immediately, and errors stick to the tenant until its next
    /// `Sync` (CUDA's asynchronous error model). Highest throughput, but
    /// cross-tenant enqueue order — and thus simulated timing — is no
    /// longer reproducible under lockstep.
    Deferred,
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Bounds-enforcement mode applied to kernels.
    pub protection: Protection,
    /// Pool reserved for partitions (power of two). `None` = largest
    /// power of two ≤ half of device memory.
    pub pool_bytes: Option<u64>,
    /// Issue native (unpatched) kernels when only one client is connected
    /// (§4.2.3: standalone applications incur no overhead). Off by default
    /// so overhead experiments measure protection costs.
    pub native_when_standalone: bool,
    /// Data-plane scheduling across tenants (default: concurrent).
    pub dispatch: DispatchMode,
    /// Launch acknowledgement policy (default: eager).
    pub launch_ack: LaunchAck,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            protection: Protection::FenceBitwise,
            pool_bytes: None,
            native_when_standalone: false,
            dispatch: DispatchMode::default(),
            launch_ack: LaunchAck::default(),
        }
    }
}

/// Connection info returned to a new client by the control plane.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClientInfo {
    pub id: ClientId,
    pub clock_ghz: f64,
    pub partition_base: u64,
    pub partition_size: u64,
}

/// A control-plane operation (serialized through the manager thread).
pub(crate) enum CtrlOp {
    Connect {
        mem_requirement: u64,
    },
    Disconnect {
        client: ClientId,
    },
    RegisterFatbin {
        client: ClientId,
        bytes: Vec<u8>,
    },
    RegisterPtx {
        client: ClientId,
        name: String,
        text: String,
    },
    Malloc {
        client: ClientId,
        bytes: u64,
    },
    Free {
        client: ClientId,
        ptr: DevicePtr,
    },
}

/// A control-plane result.
pub(crate) enum CtrlOut {
    Connected(ClientInfo),
    Unit,
    Ptr(DevicePtr),
}

/// One message on the control channel. The reply channel is an internal
/// detail of the in-process control thread — unlike the wire protocol,
/// control messages never cross the tenant boundary.
pub(crate) struct CtrlMsg {
    pub op: CtrlOp,
    pub reply: Sender<CudaResult<CtrlOut>>,
}

/// Round-trip one operation through the control plane.
pub(crate) fn ctrl_call(ctrl: &Sender<CtrlMsg>, op: CtrlOp) -> CudaResult<CtrlOut> {
    let (tx, rx) = bounded(1);
    ctrl.send(CtrlMsg { op, reply: tx })
        .map_err(|_| CudaError::Disconnected)?;
    rx.recv().map_err(|_| CudaError::Disconnected)?
}

/// The serialized control plane: sole owner of the partition table and
/// the fatbin registry, sole writer of the client map.
struct Control {
    shared: Arc<Shared>,
    partitions: PartitionAllocator,
    next_client: u32,
    registered_fatbins: Vec<u64>, // hashes, to dedupe repeat registrations
}

impl Control {
    fn run(mut self, rx: Receiver<CtrlMsg>) {
        while let Ok(msg) = rx.recv() {
            let r = self.handle(msg.op);
            let _ = msg.reply.send(r);
        }
        // All control senders dropped (manager handle + every session):
        // release the context.
        let ctx = self.shared.ctx;
        let _ = self.shared.device.lock().destroy_context(ctx);
    }

    fn handle(&mut self, op: CtrlOp) -> CudaResult<CtrlOut> {
        match op {
            CtrlOp::Connect { mem_requirement } => {
                self.connect(mem_requirement).map(CtrlOut::Connected)
            }
            CtrlOp::Disconnect { client } => {
                // Drain the device before releasing the partition: the
                // tenant may have enqueued launches it never synchronized
                // (normal under Drop-based teardown and deferred acks).
                // Freeing first would let those stale commands execute
                // later — into whichever tenant the partition is handed
                // to next.
                if self.shared.clients.read().contains_key(&client) {
                    self.shared.device.lock().synchronize();
                    self.shared.reap_faults();
                }
                if let Some(state) = self.shared.clients.write().remove(&client) {
                    let _ = self.partitions.free(state.partition.base);
                }
                Ok(CtrlOut::Unit)
            }
            CtrlOp::RegisterFatbin { client, bytes } => {
                self.check_alive(client)?;
                self.register_fatbin(&bytes).map(|()| CtrlOut::Unit)
            }
            CtrlOp::RegisterPtx { client, name, text } => {
                self.check_alive(client)?;
                self.register_ptx(&name, &text).map(|()| CtrlOut::Unit)
            }
            CtrlOp::Malloc { client, bytes } => {
                self.check_alive(client)?;
                let state = self.client(client)?;
                let r = state.heap.lock().alloc(bytes);
                r.map(CtrlOut::Ptr).map_err(|_| CudaError::OutOfMemory)
            }
            CtrlOp::Free { client, ptr } => {
                self.check_alive(client)?;
                let state = self.client(client)?;
                let r = state.heap.lock().free(ptr);
                r.map(|()| CtrlOut::Unit)
                    .map_err(|_| CudaError::InvalidValue)
            }
        }
    }

    fn client(&self, client: ClientId) -> CudaResult<Arc<ClientShared>> {
        self.shared
            .clients
            .read()
            .get(&client)
            .cloned()
            .ok_or(CudaError::InvalidValue)
    }

    fn check_alive(&self, client: ClientId) -> CudaResult<()> {
        let state = self.client(client)?;
        Shared::check_alive(&state)
    }

    fn connect(&mut self, mem_requirement: u64) -> CudaResult<ClientInfo> {
        let partition = self
            .partitions
            .alloc(mem_requirement)
            .map_err(|_| CudaError::OutOfMemory)?;
        let stream = {
            let mut dev = self.shared.device.lock();
            match dev.create_stream(self.shared.ctx) {
                Ok(s) => s,
                Err(e) => {
                    drop(dev);
                    let _ = self.partitions.free(partition.base);
                    return Err(e.into());
                }
            }
        };
        let id = ClientId(self.next_client);
        self.next_client += 1;
        self.shared.clients.write().insert(
            id,
            Arc::new(ClientShared {
                id,
                stream,
                partition,
                dead: AtomicBool::new(false),
                sticky: Mutex::new(None),
                heap: Mutex::new(RegionAllocator::new(partition)),
                events: Mutex::new(EventTable {
                    events: HashMap::new(),
                    next: 1,
                }),
            }),
        );
        let clock_ghz = self.shared.device.lock().spec().clock_ghz;
        Ok(ClientInfo {
            id,
            clock_ghz,
            partition_base: partition.base,
            partition_size: partition.size,
        })
    }

    fn register_fatbin(&mut self, bytes: &[u8]) -> CudaResult<()> {
        let hash = fxhash(bytes);
        if self.registered_fatbins.contains(&hash) {
            return Ok(());
        }
        let images =
            ptx::fatbin::extract_ptx(bytes).map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        for (name, text) in images {
            self.register_ptx(&name, &text)?;
        }
        self.registered_fatbins.push(hash);
        Ok(())
    }

    /// Sandbox + load one PTX translation unit; register both the patched
    /// and the native kernels into the shared (read-mostly) tables.
    fn register_ptx(&mut self, _name: &str, text: &str) -> CudaResult<()> {
        let module = ptx::parse(text).map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        let patched = fence::patch_module(&module, self.shared.protection)
            .map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        let (native, sandboxed) = {
            let mut dev = self.shared.device.lock();
            let native = dev.load_module(self.shared.ctx, &module)?;
            let sandboxed = dev.load_module(self.shared.ctx, &patched.module)?;
            (native, sandboxed)
        };
        let mut kernels = self.shared.kernels.write();
        for (kname, k) in &native.functions {
            if k.kind == ptx::FunctionKind::Entry {
                kernels.native.insert(
                    kname.clone(),
                    CudaFunction {
                        kernel: k.clone(),
                        module: native.clone(),
                    },
                );
            }
        }
        for (kname, k) in &sandboxed.functions {
            if k.kind == ptx::FunctionKind::Entry {
                kernels.pointer_to_symbol.insert(
                    kname.clone(),
                    CudaFunction {
                        kernel: k.clone(),
                        module: sandboxed.clone(),
                    },
                );
            }
        }
        Ok(())
    }
}

/// A handle to a running grdManager. Cloning is cheap; the manager's
/// threads are joined when the last handle drops (after every client has
/// disconnected) or eagerly via [`ManagerHandle::shutdown`].
///
/// **Drop order matters**: dropping the last handle *blocks* until every
/// connected [`GrdLib`](crate::GrdLib) (and raw connection) has dropped,
/// because joining the session threads is what guarantees no thread
/// leaks. Drop clients before the handle — on the same thread,
/// `drop(manager)` with a live client is a deadlock. [`Tenancy`]
/// (crate::Tenancy)'s field order encodes the safe sequence.
#[derive(Clone)]
pub struct ManagerHandle {
    inner: Arc<ManagerInner>,
}

struct ManagerInner {
    /// Dropped first on shutdown: closes the listener so the acceptor
    /// stops taking new connections.
    dialer: Option<Box<dyn Dialer>>,
    /// Forces a kernel-blocked `accept` (socket transports) to return at
    /// shutdown; the in-process channel transport needs none.
    unblock: Option<transport::UnblockFn>,
    device: SharedDevice,
    ctrl_tx: Option<Sender<CtrlMsg>>,
    acceptor: Option<JoinHandle<()>>,
    control: Option<JoinHandle<()>>,
}

impl Drop for ManagerInner {
    fn drop(&mut self) {
        // 1. Close the listener: no new connections. Socket listeners
        //    block in the kernel, so fire their wake-up hook too.
        self.dialer.take();
        if let Some(unblock) = self.unblock.take() {
            unblock();
        }
        // 2. Join the acceptor; it joins every session, and sessions end
        //    when their client half drops — so this blocks until all
        //    tenants have disconnected, like the old explicit shutdown.
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // 3. All session-held control senders are gone now; dropping ours
        //    lets the control thread drain and exit.
        self.ctrl_tx.take();
        if let Some(c) = self.control.take() {
            let _ = c.join();
        }
    }
}

impl ManagerHandle {
    /// Open a new transport connection to this manager.
    pub(crate) fn dial(&self) -> Result<Box<dyn Connection>, transport::TransportError> {
        match &self.inner.dialer {
            Some(d) => d.dial(),
            None => Err(transport::TransportError::Disconnected),
        }
    }

    /// One-shot query over a fresh connection (cold paths: stats and
    /// benchmarking probes).
    fn query(&self, req: &proto::Request) -> Option<proto::Response> {
        let conn = self.dial().ok()?;
        conn.send(req.encode()).ok()?;
        let frame = conn.recv().ok()?;
        proto::Response::decode(&frame).ok()
    }

    fn stats_rpc(&self) -> Option<proto::StatsSnapshot> {
        match self.query(&proto::Request::Stats)? {
            proto::Response::Stats(s) => Some(s),
            _ => None,
        }
    }

    /// Interception statistics accumulated so far, both launch paths
    /// merged (Table 5's historical aggregate view).
    pub fn interception_stats(&self) -> InterceptionStats {
        self.launch_stats().combined()
    }

    /// Interception statistics split by launch path: runtime-level
    /// `cudaLaunchKernel` vs driver-level `cuLaunchKernel` (Table 5).
    pub fn launch_stats(&self) -> LaunchStats {
        self.stats_rpc().map(|s| s.launch).unwrap_or_default()
    }

    /// High-water mark of data-plane operations executing simultaneously
    /// across tenants (stays 1 under [`DispatchMode::Serial`]).
    pub fn max_concurrent_data_ops(&self) -> u32 {
        self.stats_rpc()
            .map(|s| s.max_concurrent_data_ops)
            .unwrap_or(0)
    }

    /// Current device time (cycles), for benchmarking.
    pub fn device_now(&self) -> u64 {
        match self.query(&proto::Request::DeviceNow) {
            Some(proto::Response::Cycles(c)) => c,
            _ => 0,
        }
    }

    /// The shared device (for out-of-band inspection in tests/benches).
    pub fn device(&self) -> &SharedDevice {
        &self.inner.device
    }

    /// Eagerly shut down: drop this handle and, if it is the last one,
    /// join the manager's threads once every client has disconnected.
    /// Plain `drop` does the same; this method exists to make teardown
    /// points explicit in tests and benches.
    pub fn shutdown(self) {
        drop(self);
    }
}

/// Spawn a grdManager on a device.
///
/// `fatbins` are sandboxed and pre-compiled at initialization (the offline
/// phase + "compile at init to avoid JIT overhead", §4.4). Clients may
/// register more fatbins later.
///
/// # Errors
///
/// Fails when the partition pool cannot be reserved or any initial fatbin
/// fails to sandbox/load.
pub fn spawn_manager(
    device: SharedDevice,
    config: ManagerConfig,
    fatbins: &[&[u8]],
) -> CudaResult<ManagerHandle> {
    spawn_manager_over(device, config, fatbins, BoundTransport::channel())
}

/// Spawn a grdManager serving an explicit transport — this is how the
/// manager ends up behind a Unix socket ([`BoundTransport::uds`]) or a
/// shared-memory ring ([`BoundTransport::shm`]) so tenants can be real OS
/// processes; [`spawn_manager`] is the in-process special case.
///
/// # Errors
///
/// As [`spawn_manager`].
pub fn spawn_manager_over(
    device: SharedDevice,
    config: ManagerConfig,
    fatbins: &[&[u8]],
    transport_over: BoundTransport,
) -> CudaResult<ManagerHandle> {
    let ctx = device.lock().create_context()?;
    // Reserve the partition pool: all of free memory rounded down to a
    // power of two (or the configured size), self-aligned for fencing.
    let pool_bytes = match config.pool_bytes {
        Some(b) => b,
        None => {
            let spec_mem = device.lock().spec().global_mem_bytes;
            let free = spec_mem - device.lock().used_bytes();
            let half = free / 2;
            1u64 << (63 - half.leading_zeros())
        }
    };
    let pool_base = device.lock().malloc_aligned(ctx, pool_bytes, pool_bytes)?;
    let shared = Arc::new(Shared {
        device: device.clone(),
        ctx,
        protection: config.protection,
        native_when_standalone: config.native_when_standalone,
        dispatch: config.dispatch,
        launch_ack: config.launch_ack,
        kernels: RwLock::new(KernelTable::default()),
        clients: RwLock::new(HashMap::new()),
        stats: Mutex::new(LaunchStats::default()),
        fault_cursor: Mutex::new(0),
        serial_gate: Mutex::new(()),
        inflight: AtomicU32::new(0),
        max_inflight: AtomicU32::new(0),
    });
    let mut control = Control {
        shared: shared.clone(),
        partitions: PartitionAllocator::new(pool_base, pool_bytes),
        next_client: 1,
        registered_fatbins: Vec::new(),
    };
    // Offline phase: sandbox + load the initial fatbins before any tenant
    // can connect, so registration errors surface here.
    for fb in fatbins {
        control.register_fatbin(fb)?;
    }
    let BoundTransport {
        listener,
        dialer,
        unblock,
    } = transport_over;
    let (ctrl_tx, ctrl_rx) = unbounded();
    let control_join = std::thread::Builder::new()
        .name("grdManager".into())
        .spawn(move || control.run(ctrl_rx))
        .expect("spawn grdManager thread");
    let acceptor_join = session::spawn_acceptor(listener, shared, ctrl_tx.clone());
    Ok(ManagerHandle {
        inner: Arc::new(ManagerInner {
            dialer: Some(dialer),
            unblock,
            device,
            ctrl_tx: Some(ctrl_tx),
            acceptor: Some(acceptor_join),
            control: Some(control_join),
        }),
    })
}

fn fxhash(bytes: &[u8]) -> u64 {
    // FNV-1a; used only to dedupe repeat fatbin registrations.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
