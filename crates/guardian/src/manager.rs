//! The GPU manager (`grdManager`, §4.2): the only entity with GPU access.
//!
//! Applications never touch the device; their `grdLib` forwards every CUDA
//! runtime/driver call as a wire-protocol frame ([`crate::proto`]) over a
//! transport connection ([`crate::transport`]). Server-side the work is
//! split into two planes:
//!
//! * the **control plane** (this module): one serialized thread owning the
//!   partition table and kernel registry. It assigns each tenant a
//!   contiguous power-of-two **partition** and serves its allocations from
//!   it (§4.2.1), and sandboxes + pre-loads every registered fatbin/PTX
//!   image (§4.2.3, §4.4);
//! * the **data plane** ([`crate::session`]): one session thread per
//!   connected tenant, executing transfers, launches, syncs, and events
//!   concurrently across tenants against fine-grained shared state —
//!   checking every host transfer against the partition bounds (§4.2.2),
//!   swapping every launch for its sandboxed twin with the bounds
//!   appended, and issuing it on the tenant's stream (§4.2.3-4.2.4).
//!
//! Out-of-bounds detection terminates — only — the offending tenant,
//! regardless of which session observes the fault.

use crate::alloc::{PartitionAllocator, RegionAllocator, SUBALLOC_ALIGN};
use crate::control::{Admission, ControlPlane, LeaseSpec, QosClass, TenantCounters};
use crate::placement::{choose_device, DeviceLoad, PlacementError, PlacementHint, PlacementPolicy};
use crate::proto::{AdminRequest, AdminResponse};
use crate::session::{self, Binding, ClientShared, EventTable, GpuShared, KernelTable, Shared};
use crate::transport::{BoundTransport, Connection, Dialer};
use crate::{proto, transport};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use cuda_rt::{CudaError, CudaResult, DevicePtr, SharedDevice};
use gpu_sim::stream::CudaFunction;
use parking_lot::{Mutex, RwLock};
use ptx_patcher::{fence, Protection};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifies a connected tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u32);

/// Nominal host clock used to convert measured nanoseconds into the
/// "CPU cycles" unit of the paper's Table 5.
pub const HOST_GHZ: f64 = 3.0;

/// Host-side interception cost statistics for one launch path (Table 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterceptionStats {
    /// Launches measured.
    pub launches: u64,
    /// Total nanoseconds spent looking up the sandboxed kernel in the
    /// `pointerToSymbol` map.
    pub lookup_ns: u64,
    /// Total nanoseconds spent building the augmented parameter array.
    pub augment_ns: u64,
    /// Total nanoseconds spent enqueueing to the device.
    pub enqueue_ns: u64,
}

impl InterceptionStats {
    /// Average lookup cost in nominal CPU cycles.
    pub fn lookup_cycles(&self) -> f64 {
        cycles(self.lookup_ns, self.launches)
    }

    /// Average parameter-augmentation cost in nominal CPU cycles.
    pub fn augment_cycles(&self) -> f64 {
        cycles(self.augment_ns, self.launches)
    }

    /// Average enqueue cost in nominal CPU cycles.
    pub fn enqueue_cycles(&self) -> f64 {
        cycles(self.enqueue_ns, self.launches)
    }
}

fn cycles(ns: u64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        ns as f64 / n as f64 * HOST_GHZ
    }
}

/// Launch interception costs split by API level, so Table 5 can
/// distinguish driver-level (`cuLaunchKernel`) from runtime-level
/// (`cudaLaunchKernel`) costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    /// Runtime-level launches (`cudaLaunchKernel`).
    pub runtime: InterceptionStats,
    /// Driver-level launches (`cuLaunchKernel`).
    pub driver: InterceptionStats,
}

impl LaunchStats {
    /// Both paths merged (the pre-split aggregate view).
    pub fn combined(&self) -> InterceptionStats {
        InterceptionStats {
            launches: self.runtime.launches + self.driver.launches,
            lookup_ns: self.runtime.lookup_ns + self.driver.lookup_ns,
            augment_ns: self.runtime.augment_ns + self.driver.augment_ns,
            enqueue_ns: self.runtime.enqueue_ns + self.driver.enqueue_ns,
        }
    }
}

/// One launch path's counters as lock-free atomics, so the hot path
/// records with relaxed adds instead of a global mutex. Readers fold the
/// fields into an [`InterceptionStats`] snapshot; the fields are updated
/// independently, so a snapshot racing a record may be off by one
/// in-flight launch — fine for statistics, free for the data plane.
#[derive(Debug, Default)]
struct PathStatsAtomic {
    launches: AtomicU64,
    lookup_ns: AtomicU64,
    augment_ns: AtomicU64,
    enqueue_ns: AtomicU64,
}

impl PathStatsAtomic {
    fn add(&self, n: u64, lookup_ns: u64, augment_ns: u64, enqueue_ns: u64) {
        self.launches.fetch_add(n, Ordering::Relaxed);
        self.lookup_ns.fetch_add(lookup_ns, Ordering::Relaxed);
        self.augment_ns.fetch_add(augment_ns, Ordering::Relaxed);
        self.enqueue_ns.fetch_add(enqueue_ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> InterceptionStats {
        InterceptionStats {
            launches: self.launches.load(Ordering::Relaxed),
            lookup_ns: self.lookup_ns.load(Ordering::Relaxed),
            augment_ns: self.augment_ns.load(Ordering::Relaxed),
            enqueue_ns: self.enqueue_ns.load(Ordering::Relaxed),
        }
    }
}

/// [`LaunchStats`] as shared atomics (see [`PathStatsAtomic`]).
#[derive(Debug, Default)]
pub(crate) struct LaunchStatsAtomic {
    runtime: PathStatsAtomic,
    driver: PathStatsAtomic,
}

impl LaunchStatsAtomic {
    pub(crate) fn record(
        &self,
        driver_level: bool,
        lookup_ns: u64,
        augment_ns: u64,
        enqueue_ns: u64,
    ) {
        self.record_batch(driver_level, 1, lookup_ns, augment_ns, enqueue_ns);
    }

    /// Record `n` launches of one path in a single atomic round — the
    /// per-batch form the deferred flush path uses.
    pub(crate) fn record_batch(
        &self,
        driver_level: bool,
        n: u64,
        lookup_ns: u64,
        augment_ns: u64,
        enqueue_ns: u64,
    ) {
        if n == 0 {
            return;
        }
        if driver_level {
            self.driver.add(n, lookup_ns, augment_ns, enqueue_ns);
        } else {
            self.runtime.add(n, lookup_ns, augment_ns, enqueue_ns);
        }
    }

    pub(crate) fn snapshot(&self) -> LaunchStats {
        LaunchStats {
            runtime: self.runtime.snapshot(),
            driver: self.driver.snapshot(),
        }
    }
}

/// How data-plane operations are scheduled across tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// One data-plane op at a time, globally — the old single-threaded
    /// dispatch core. Kept as the measurable baseline.
    Serial,
    /// Sessions of different tenants execute data-plane ops concurrently.
    #[default]
    Concurrent,
}

/// How data-plane sessions are driven on the server side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionDriver {
    /// Pick per dispatch mode: [`DispatchMode::Serial`] keeps one OS
    /// thread per session (the lockstep-deterministic baseline),
    /// [`DispatchMode::Concurrent`] uses the event pool.
    #[default]
    Auto,
    /// One OS thread per connection — the original data plane. Simple
    /// and fair at small tenant counts; stops scaling once tenants far
    /// outnumber cores.
    ThreadPerSession,
    /// A small epoll-driven executor pool multiplexing every
    /// event-capable connection (Unix sockets, doorbell shm rings);
    /// other transports still get dedicated threads. `workers == 0`
    /// means one worker per available core.
    EventPool {
        /// Pump threads to start (`0` = one per core).
        workers: usize,
    },
}

/// When a kernel-launch RPC is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaunchAck {
    /// Reply once the command is enqueued on the tenant's stream. The
    /// client observes enqueue-order errors synchronously, and —
    /// because the client blocks until the enqueue happened — the global
    /// device arrival order stays pinned under `cuda_rt::lockstep`, which
    /// the figure/table benches rely on for determinism.
    #[default]
    Eager,
    /// True asynchronous enqueue: `Launch` frames are one-way, the client
    /// returns immediately, and errors stick to the tenant until its next
    /// `Sync` (CUDA's asynchronous error model). Highest throughput, but
    /// cross-tenant enqueue order — and thus simulated timing — is no
    /// longer reproducible under lockstep.
    Deferred,
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Bounds-enforcement mode applied to kernels.
    pub protection: Protection,
    /// Pool reserved for partitions on each device (power of two).
    /// `None` = largest power of two ≤ half of that device's memory.
    pub pool_bytes: Option<u64>,
    /// Per-device pool sizes, overriding `pool_bytes` index-by-index when
    /// set (heterogeneous device sets want heterogeneous pools). Length
    /// must match the device count.
    pub pool_bytes_per_gpu: Option<Vec<u64>>,
    /// Issue native (unpatched) kernels when only one client is connected
    /// (§4.2.3: standalone applications incur no overhead). Off by default
    /// so overhead experiments measure protection costs.
    pub native_when_standalone: bool,
    /// Data-plane scheduling across tenants (default: concurrent).
    pub dispatch: DispatchMode,
    /// Launch acknowledgement policy (default: eager).
    pub launch_ack: LaunchAck,
    /// How un-hinted tenants are routed across the device set (default:
    /// least-loaded pool bytes).
    pub placement: PlacementPolicy,
    /// How sessions are driven: threads, the epoll executor pool, or
    /// picked automatically from the dispatch mode (default).
    pub session_driver: SessionDriver,
    /// Lease terms for uids without an explicit override (`None` =
    /// unlimited: uncapped memory, no expiry — the pre-control-plane
    /// behaviour). `guardiand --lease-default` feeds this.
    pub lease_default: Option<LeaseSpec>,
    /// Node identity echoed in every admin response (`None` =
    /// `grd-<pid>`), so a fleet of managers stays distinguishable to a
    /// future federated control plane.
    pub node_id: Option<String>,
    /// The per-uid connect rate limiter, when one gates this manager's
    /// transports. The gate itself runs in the socket accept loops
    /// (see [`BoundTransport::uds_gated`]); the manager only needs the
    /// handle so `/metrics` can report its rejection counter.
    pub admission: Option<Arc<Admission>>,
    /// Per-tenant latency histograms, dispatch spans, and flight
    /// recorders ([`crate::telemetry`]). On by default; the off arm
    /// exists so the telemetry-overhead CI gate has a baseline.
    pub telemetry: bool,
    /// Minimum severity of structured one-line event logs on stderr
    /// (connect/teardown/revoke/migrate with tenant uid + node id).
    /// [`LogLevel::Off`] by default; `guardiand --log-level` raises it.
    pub log_level: LogLevel,
    /// Launches a best-effort tenant may hold in flight (enqueued but not
    /// yet synced) before the executor rate-gates its drain rounds while
    /// latency-class tenants are active. `guardiand --qos-budget` feeds
    /// this; the default is high enough that single-class workloads never
    /// notice it.
    pub qos_inflight_budget: u64,
}

/// Severity floor for the manager's structured stderr event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// No event logging (library default).
    #[default]
    Off,
    /// Tenancy lifecycle events: connect, disconnect, teardown, lease
    /// expiry, revocation, migration.
    Info,
    /// Info plus per-decision detail (placement, admission).
    Debug,
}

impl LogLevel {
    /// Parse a `--log-level` value.
    pub fn parse(s: &str) -> Result<LogLevel, String> {
        match s {
            "off" => Ok(LogLevel::Off),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            _ => Err(format!("bad log level `{s}` (want off|info|debug)")),
        }
    }
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            protection: Protection::FenceBitwise,
            pool_bytes: None,
            pool_bytes_per_gpu: None,
            native_when_standalone: false,
            dispatch: DispatchMode::default(),
            launch_ack: LaunchAck::default(),
            placement: PlacementPolicy::default(),
            session_driver: SessionDriver::default(),
            lease_default: None,
            node_id: None,
            admission: None,
            telemetry: true,
            log_level: LogLevel::Off,
            qos_inflight_budget: 256,
        }
    }
}

/// Connection info returned to a new client by the control plane.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClientInfo {
    pub id: ClientId,
    pub clock_ghz: f64,
    pub partition_base: u64,
    pub partition_size: u64,
    pub device: u32,
    pub lease_mem: u64,
    pub lease_ttl_ms: u64,
    /// Granted QoS class on its wire encoding (0 = best-effort,
    /// 1 = latency): the *minimum* of what the tenant requested at
    /// `Connect` and what its lease's `qos=` ceiling allows.
    pub qos: u8,
}

/// A control-plane operation (serialized through the manager thread).
pub(crate) enum CtrlOp {
    Connect {
        mem_requirement: u64,
        hint: Option<PlacementHint>,
        /// Peer uid the transport established (`SO_PEERCRED` for the
        /// socket transports; the process's own uid in-process) — the
        /// identity leases and quotas are keyed by.
        uid: u32,
        /// QoS class the tenant *requested* (wire encoding; pre-v5
        /// clients decode as 0 = best-effort). The grant is clamped to
        /// the uid's lease ceiling.
        qos_request: u8,
    },
    Disconnect {
        client: ClientId,
    },
    /// End a tenancy by force: mark it dead, drain its device through
    /// the migration barrier, reclaim the partition, retire its usage.
    /// `expired` distinguishes TTL expiry from operator revocation in
    /// the metrics.
    Revoke {
        client: ClientId,
        expired: bool,
    },
    RegisterFatbin {
        client: ClientId,
        bytes: Vec<u8>,
    },
    RegisterPtx {
        client: ClientId,
        name: String,
        text: String,
    },
    Malloc {
        client: ClientId,
        bytes: u64,
    },
    Free {
        client: ClientId,
        ptr: DevicePtr,
    },
    /// Enumerate the device set (per-GPU pool load and tenant counts).
    DeviceInfo,
    /// Move a tenant's partition to another GPU, live.
    Migrate {
        client: ClientId,
        dst_gpu: u32,
    },
    /// One rebalance step: migrate one tenant from the most- to the
    /// least-loaded device if that narrows the spread.
    Rebalance,
    /// Re-apply a uid's lease QoS ceiling to its *live* tenants after a
    /// lease override changed: demotes latency-class tenants whose
    /// ceiling dropped (their session qos flag and device stream
    /// priority flip immediately, no reconnect). Demote-only — raising
    /// a ceiling never promotes live tenants, they asked at `Connect`.
    Reclass {
        uid: u32,
    },
}

/// A control-plane result.
pub(crate) enum CtrlOut {
    Connected(ClientInfo),
    Unit,
    Ptr(DevicePtr),
    Devices(Vec<proto::DeviceInfo>),
    /// What a rebalance step did: `(client, src_gpu, dst_gpu)`, or `None`
    /// when the placement was already balanced.
    Rebalanced(Option<(ClientId, u32, u32)>),
}

/// One message on the control channel. The reply channel is an internal
/// detail of the in-process control thread — unlike the wire protocol,
/// control messages never cross the tenant boundary.
pub(crate) struct CtrlMsg {
    pub op: CtrlOp,
    pub reply: Sender<CudaResult<CtrlOut>>,
}

/// Round-trip one operation through the control plane.
pub(crate) fn ctrl_call(ctrl: &Sender<CtrlMsg>, op: CtrlOp) -> CudaResult<CtrlOut> {
    let (tx, rx) = bounded(1);
    ctrl.send(CtrlMsg { op, reply: tx })
        .map_err(|_| CudaError::Disconnected)?;
    rx.recv().map_err(|_| CudaError::Disconnected)?
}

/// The serialized control plane: sole owner of the per-GPU partition
/// tables and the fatbin registry, sole writer of the client map, and
/// the only thread that migrates bindings.
struct Control {
    shared: Arc<Shared>,
    /// One partition pool per GPU, indexed like `shared.gpus`.
    pools: Vec<PartitionAllocator>,
    policy: PlacementPolicy,
    rr_cursor: u32,
    next_client: u32,
    registered_fatbins: Vec<u64>, // hashes, to dedupe repeat registrations
    /// The node's lease/quota registry, shared with the admin plane.
    plane: Arc<ControlPlane>,
    /// Per-client launch counts as of the last rebalance step, so the
    /// rebalancer can rank candidates by activity *since* then.
    activity_marks: HashMap<ClientId, u64>,
    /// Whether new tenants get latency histograms + a flight recorder.
    telemetry: bool,
    /// Severity floor for structured stderr event logs.
    log_level: LogLevel,
}

/// How often the control thread wakes to sweep expired leases when no
/// control traffic arrives (and the floor between two sweeps when it
/// does). TTL precision is bounded by this.
const LEASE_SWEEP: std::time::Duration = std::time::Duration::from_millis(25);

fn placement_to_cuda(e: PlacementError) -> CudaError {
    match e {
        PlacementError::NoSuchDevice(d) => CudaError::Rejected(format!("no such device {d}")),
        PlacementError::NoCapacity => CudaError::OutOfMemory,
    }
}

impl Control {
    /// One structured line per tenancy event on stderr:
    /// `guardiand event=<what> node=<id> <key=value...>`. This is the
    /// single logging seat for connect/disconnect/teardown/expiry/
    /// revoke/migrate, so operators grep one stable format.
    fn log_event(&self, event: &str, detail: std::fmt::Arguments<'_>) {
        if self.log_level >= LogLevel::Info {
            eprintln!(
                "guardiand event={event} node={} {detail}",
                self.plane.node()
            );
        }
    }

    fn run(mut self, rx: Receiver<CtrlMsg>) {
        // `recv_timeout` instead of `recv`: leases expire on wall-clock
        // time, so the control thread must wake even when no tenant is
        // talking to it.
        let mut last_sweep = std::time::Instant::now();
        loop {
            match rx.recv_timeout(LEASE_SWEEP) {
                Ok(msg) => {
                    let r = self.handle(msg.op);
                    let _ = msg.reply.send(r);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if last_sweep.elapsed() >= LEASE_SWEEP {
                for client in self.plane.expired() {
                    let _ = self.handle(CtrlOp::Revoke {
                        client: ClientId(client),
                        expired: true,
                    });
                }
                last_sweep = std::time::Instant::now();
            }
        }
        // All control senders dropped (manager handle + every session):
        // release each device's context.
        for g in &self.shared.gpus {
            let _ = g.device.lock().destroy_context(g.ctx);
        }
    }

    fn handle(&mut self, op: CtrlOp) -> CudaResult<CtrlOut> {
        match op {
            CtrlOp::Connect {
                mem_requirement,
                hint,
                uid,
                qos_request,
            } => self
                .connect(mem_requirement, hint, uid, qos_request)
                .map(CtrlOut::Connected),
            CtrlOp::Disconnect { client } => {
                let uid = self.plane.uid_of(client.0);
                self.log_event(
                    "disconnect",
                    format_args!("uid={} client={}", uid.unwrap_or(0), client.0),
                );
                self.teardown(client);
                Ok(CtrlOut::Unit)
            }
            CtrlOp::Revoke { client, expired } => {
                let uid = self.plane.uid_of(client.0);
                self.log_event(
                    if expired { "expire" } else { "revoke" },
                    format_args!("uid={} client={}", uid.unwrap_or(0), client.0),
                );
                let state = self.client(client)?;
                // Mark the tenant dead first: data-plane ops started
                // after this point fail their liveness check before
                // touching the partition; the teardown barrier below
                // waits out the ones already in flight.
                state.dead.store(true, Ordering::SeqCst);
                self.teardown(client);
                if expired {
                    self.plane.expired_total.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.plane.revoked_total.fetch_add(1, Ordering::Relaxed);
                }
                Ok(CtrlOut::Unit)
            }
            CtrlOp::RegisterFatbin { client, bytes } => {
                self.check_alive(client)?;
                self.register_fatbin(&bytes).map(|()| CtrlOut::Unit)
            }
            CtrlOp::RegisterPtx { client, name, text } => {
                self.check_alive(client)?;
                self.register_ptx(&name, &text).map(|()| CtrlOut::Unit)
            }
            CtrlOp::Malloc { client, bytes } => {
                self.check_alive(client)?;
                let state = self.client(client)?;
                let mut heap = state.heap.lock();
                // Lease cap: checked against what the heap would hold
                // after this allocation (rounded to the heap's grain,
                // so the check and the allocator agree byte-for-byte).
                if state.lease_mem != u64::MAX {
                    let want = bytes.max(1).next_multiple_of(SUBALLOC_ALIGN);
                    if heap.used_bytes().saturating_add(want) > state.lease_mem {
                        return Err(CudaError::OutOfMemory);
                    }
                }
                let r = heap.alloc(bytes);
                state
                    .counters
                    .bytes_held
                    .store(heap.used_bytes(), Ordering::Relaxed);
                r.map(CtrlOut::Ptr).map_err(|_| CudaError::OutOfMemory)
            }
            CtrlOp::Free { client, ptr } => {
                self.check_alive(client)?;
                let state = self.client(client)?;
                let mut heap = state.heap.lock();
                let r = heap.free(ptr);
                state
                    .counters
                    .bytes_held
                    .store(heap.used_bytes(), Ordering::Relaxed);
                r.map(|()| CtrlOut::Unit)
                    .map_err(|_| CudaError::InvalidValue)
            }
            CtrlOp::DeviceInfo => Ok(CtrlOut::Devices(self.device_infos())),
            CtrlOp::Migrate { client, dst_gpu } => {
                self.migrate(client, dst_gpu).map(CtrlOut::Connected)
            }
            CtrlOp::Rebalance => self.rebalance().map(CtrlOut::Rebalanced),
            CtrlOp::Reclass { uid } => {
                self.reclass(uid);
                Ok(CtrlOut::Unit)
            }
        }
    }

    /// Demote this uid's live latency-class tenants to the (possibly
    /// lowered) lease ceiling. The session-side qos flag takes effect at
    /// the tenant's next drain round; the device stream loses its
    /// priority position for every launch enqueued from here on (kernels
    /// already running keep their launch-time class).
    fn reclass(&mut self, uid: u32) {
        let ceiling = self.plane.lease_for(uid).qos;
        for client in self.plane.reclass(uid, ceiling) {
            let Ok(state) = self.client(ClientId(client)) else {
                continue;
            };
            let was = state
                .qos
                .swap(QosClass::BestEffort.to_wire(), Ordering::SeqCst);
            if was == QosClass::Latency.to_wire() {
                self.shared
                    .exec_gauges
                    .qos_latency_sessions
                    .fetch_sub(1, Ordering::SeqCst);
            }
            let b = *state.binding.read();
            self.shared
                .gpu(b.gpu)
                .device
                .lock()
                .set_stream_latency(b.stream, false);
            self.log_event(
                "reclass",
                format_args!("uid={uid} client={client} qos=besteffort"),
            );
        }
    }

    fn device_infos(&self) -> Vec<proto::DeviceInfo> {
        let clients = self.shared.clients.read();
        self.shared
            .gpus
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let tenants = clients
                    .values()
                    .filter(|c| c.gpu_tag.load(Ordering::SeqCst) == i as u32)
                    .count() as u32;
                let (name, clock_ghz) = {
                    let dev = g.device.lock();
                    (dev.spec().name.clone(), dev.spec().clock_ghz)
                };
                proto::DeviceInfo {
                    index: i as u32,
                    name,
                    clock_ghz,
                    pool_bytes: self.pools[i].capacity(),
                    used_bytes: self.pools[i].used_bytes(),
                    tenants,
                }
            })
            .collect()
    }

    /// End a tenancy and reclaim everything it held. Serves disconnects
    /// (voluntary or crashed — the session's last act either way),
    /// operator revocation, and TTL expiry; idempotent for unknown
    /// clients, so a revoked tenant's trailing disconnect is a no-op.
    ///
    /// The binding **write lock** is the barrier (as in [`Control::
    /// migrate`]): in-flight data-plane ops of this tenant finish before
    /// the drain, and none can start again before the partition is
    /// freed — a revoked tenant mid-launch-storm cannot write into
    /// memory that has already been handed to someone else. The drain +
    /// fault-reap before the free keeps stale enqueued commands from
    /// executing into the partition's next owner.
    fn teardown(&mut self, client: ClientId) {
        let state = self.shared.clients.read().get(&client).cloned();
        let Some(state) = state else { return };
        let binding = state.binding.write();
        // Invalidate session fast caches *before* the drain: a flush that
        // acquires the device lock after our synchronize must observe the
        // bump and fall back to the locked slow path (where the destroyed
        // stream rejects stale enqueues); one that got the lock first has
        // its commands drained right here, before the partition is freed.
        state.epoch.fetch_add(1, Ordering::SeqCst);
        let b = *binding;
        self.shared.gpu(b.gpu).device.lock().synchronize();
        self.shared.reap_faults(b.gpu);
        // Both this teardown and `reclass` run on the serialized control
        // thread, so the connected-latency-sessions gauge never double
        // decrements for one demote-then-disconnect client.
        if state.qos.load(Ordering::SeqCst) == QosClass::Latency.to_wire() {
            self.shared
                .exec_gauges
                .qos_latency_sessions
                .fetch_sub(1, Ordering::SeqCst);
        }
        self.shared.clients.write().remove(&client);
        let _ = self.pools[b.gpu as usize].free(b.partition.base);
        let _ = self
            .shared
            .gpu(b.gpu)
            .device
            .lock()
            .destroy_stream(b.stream);
        drop(binding);
        let uid = self.plane.uid_of(client.0);
        self.plane.retire(client.0);
        self.activity_marks.remove(&client);
        self.log_event(
            "teardown",
            format_args!(
                "uid={} client={} device={}",
                uid.unwrap_or(0),
                client.0,
                b.gpu
            ),
        );
    }

    /// Live partition migration (the cross-GPU rebalance primitive):
    ///
    /// 1. take the binding **write lock** — the migration barrier. New
    ///    data-plane ops from the tenant's session block here; in-flight
    ///    ones finish first (write acquisition waits out readers). Other
    ///    tenants' data planes are untouched throughout.
    /// 2. drain the source device and reap its faults, so nothing of the
    ///    tenant's is still executing and a just-faulted tenant is not
    ///    migrated (its kill must stand).
    /// 3. carve an equally-sized partition on the destination, copy every
    ///    live allocation at its same offset, rebase the heap.
    /// 4. retire the source stream and partition, store the new binding,
    ///    refresh the reap tags.
    ///
    /// The reply carries the new base so the tenant can translate its
    /// device pointers by `new_base - old_base` (offsets are preserved).
    fn migrate(&mut self, client: ClientId, dst_gpu: u32) -> CudaResult<ClientInfo> {
        if dst_gpu as usize >= self.shared.gpus.len() {
            return Err(CudaError::Rejected(format!("no such device {dst_gpu}")));
        }
        let state = self.client(client)?;
        Shared::check_alive(&state)?;

        // (1) The barrier. Only the control thread ever write-locks a
        // binding, so this cannot deadlock with another migration.
        let mut binding = state.binding.write();
        let src = *binding;
        if src.gpu == dst_gpu {
            return Ok(self.client_info(&state, &src));
        }
        // Invalidate session fast caches before the drain (same ordering
        // argument as in [`Control::teardown`]): any flush serialized
        // after our synchronize re-reads the binding and lands on the
        // destination.
        state.epoch.fetch_add(1, Ordering::SeqCst);

        // (2) Drain and reap the source. reap_faults matches on the
        // lock-free tags, not the binding lock we hold.
        self.shared.gpu(src.gpu).device.lock().synchronize();
        self.shared.reap_faults(src.gpu);
        Shared::check_alive(&state)?;

        // (3) Destination partition + stream.
        let dst_part = self.pools[dst_gpu as usize]
            .alloc(src.partition.size)
            .map_err(|_| CudaError::OutOfMemory)?;
        debug_assert_eq!(dst_part.size, src.partition.size);
        let g_dst = self.shared.gpu(dst_gpu);
        let dst_stream = match g_dst.device.lock().create_stream(g_dst.ctx) {
            Ok(s) => s,
            Err(e) => {
                let _ = self.pools[dst_gpu as usize].free(dst_part.base);
                return Err(e.into());
            }
        };
        // The destination stream inherits the tenant's granted QoS class.
        g_dst.device.lock().set_stream_latency(
            dst_stream,
            state.qos.load(Ordering::SeqCst) == QosClass::Latency.to_wire(),
        );

        // Copy live allocations offset-stable. The source is drained and
        // the tenant's data plane is blocked on the barrier, so a plain
        // host-side read/write is a consistent snapshot.
        let mut heap = state.heap.lock();
        let copy_result = {
            let g_src = self.shared.gpu(src.gpu);
            let mut r: CudaResult<()> = Ok(());
            for (addr, len) in heap.live_allocations() {
                let mut buf = vec![0u8; len as usize];
                let off = addr - src.partition.base;
                let step = g_src
                    .device
                    .lock()
                    .read_memory(addr, &mut buf)
                    .and_then(|()| g_dst.device.lock().write_memory(dst_part.base + off, &buf));
                if let Err(e) = step {
                    r = Err(e.into());
                    break;
                }
            }
            r
        };
        if let Err(e) = copy_result {
            // Failed migration leaves the tenant exactly where it was.
            drop(heap);
            let _ = self.pools[dst_gpu as usize].free(dst_part.base);
            let _ = g_dst.device.lock().destroy_stream(dst_stream);
            return Err(e);
        }
        heap.rebase(dst_part);
        drop(heap);

        // (4) Retire the source, publish the new binding. Recorded
        // events are invalidated wholesale: their timestamps are cycle
        // counts of the *source* device's clock, incomparable with
        // anything the destination will record (real CUDA events are
        // likewise context-bound). Stale handles now answer
        // InvalidValue instead of garbage elapsed times.
        state.events.lock().events.clear();
        let _ = self.pools[src.gpu as usize].free(src.partition.base);
        let _ = self
            .shared
            .gpu(src.gpu)
            .device
            .lock()
            .destroy_stream(src.stream);
        state.set_binding(
            &mut binding,
            Binding {
                gpu: dst_gpu,
                stream: dst_stream,
                partition: dst_part,
            },
        );
        let new = *binding;
        drop(binding);
        self.plane.rebind(client.0, dst_gpu);
        self.log_event(
            "migrate",
            format_args!(
                "uid={} client={} from={} to={dst_gpu}",
                self.plane.uid_of(client.0).unwrap_or(0),
                client.0,
                src.gpu
            ),
        );
        Ok(self.client_info(&state, &new))
    }

    /// One rebalance step: if moving one tenant from the most-loaded to
    /// the least-loaded pool narrows the byte spread, migrate the
    /// **least active** such tenant (fewest launches since the last
    /// rebalance step; partition size breaks ties toward smaller) and
    /// report it. Activity outranks size: migrating an idle 8 MiB
    /// tenant pauses nobody, while moving a hot 2 MiB one stalls its
    /// launch stream behind the copy barrier. A no-op on balanced (or
    /// single-GPU) sets.
    fn rebalance(&mut self) -> CudaResult<Option<(ClientId, u32, u32)>> {
        if self.shared.gpus.len() < 2 {
            return Ok(None);
        }
        let used: Vec<u64> = self.pools.iter().map(|p| p.used_bytes()).collect();
        let (src, _) = used
            .iter()
            .enumerate()
            .max_by_key(|(i, u)| (**u, usize::MAX - *i))
            .expect("non-empty");
        let (dst, _) = used
            .iter()
            .enumerate()
            .min_by_key(|(i, u)| (**u, *i))
            .expect("non-empty");
        if src == dst {
            return Ok(None);
        }
        // Least-active live tenant on the most-loaded device whose move
        // narrows the spread and fits on the destination. Every live
        // tenant's launch count is re-marked, so the next step ranks by
        // activity since *this* one.
        let mut marks = HashMap::new();
        let candidate = {
            let clients = self.shared.clients.read();
            let mut best: Option<(u64, u64, ClientId)> = None;
            for state in clients.values() {
                let launches = state.counters.launches.load(Ordering::Relaxed);
                marks.insert(state.id, launches);
                if state.dead.load(Ordering::SeqCst)
                    || state.gpu_tag.load(Ordering::SeqCst) != src as u32
                {
                    continue;
                }
                let activity = launches
                    .saturating_sub(self.activity_marks.get(&state.id).copied().unwrap_or(0));
                let size = state.binding.read().partition.size;
                let narrows = used[dst] + size < used[src];
                if narrows && self.pools[dst].can_alloc(size) {
                    let better = best
                        .map(|(a, s, _)| (activity, size) < (a, s))
                        .unwrap_or(true);
                    if better {
                        best = Some((activity, size, state.id));
                    }
                }
            }
            best
        };
        self.activity_marks = marks;
        match candidate {
            Some((_, _, id)) => {
                self.migrate(id, dst as u32)?;
                Ok(Some((id, src as u32, dst as u32)))
            }
            None => Ok(None),
        }
    }

    fn client_info(&self, state: &ClientShared, b: &Binding) -> ClientInfo {
        let clock_ghz = self.shared.gpu(b.gpu).device.lock().spec().clock_ghz;
        ClientInfo {
            id: state.id,
            clock_ghz,
            partition_base: b.partition.base,
            partition_size: b.partition.size,
            device: b.gpu,
            lease_mem: state.lease_mem,
            lease_ttl_ms: state.lease_ttl_ms,
            qos: state.qos.load(Ordering::SeqCst),
        }
    }

    fn client(&self, client: ClientId) -> CudaResult<Arc<ClientShared>> {
        self.shared
            .clients
            .read()
            .get(&client)
            .cloned()
            .ok_or(CudaError::InvalidValue)
    }

    fn check_alive(&self, client: ClientId) -> CudaResult<()> {
        let state = self.client(client)?;
        Shared::check_alive(&state)
    }

    fn connect(
        &mut self,
        mem_requirement: u64,
        hint: Option<PlacementHint>,
        uid: u32,
        qos_request: u8,
    ) -> CudaResult<ClientInfo> {
        // Admission under the uid's lease terms, before anything is
        // carved: a zero-stream lease denies outright, and a partition
        // request beyond the memory cap is OOM to the tenant (the same
        // error an honest over-asker would see from the pool).
        let mut lease = self.plane.lease_for(uid);
        // QoS grant: the class the tenant asked for, clamped to the
        // lease's ceiling. Tenants that did not ask (or pre-v5 clients,
        // whose frames decode as best-effort) stay best-effort even
        // under a latency-ceiling lease.
        let granted = match QosClass::from_wire(qos_request) {
            QosClass::Latency if lease.qos == QosClass::Latency => QosClass::Latency,
            _ => QosClass::BestEffort,
        };
        lease.qos = granted;
        if lease.streams == 0 {
            return Err(CudaError::Rejected(
                "lease denies admission (streams=0)".into(),
            ));
        }
        if mem_requirement > lease.mem_bytes {
            return Err(CudaError::OutOfMemory);
        }
        // Route first: the policy sees every pool's fit-probe, so the
        // device it returns can always carve the partition (the placement
        // proptests pin this down against the real buddy allocator).
        let loads: Vec<DeviceLoad> = self
            .pools
            .iter()
            .map(|p| DeviceLoad {
                used_bytes: p.used_bytes(),
                can_fit: p.can_alloc(mem_requirement),
            })
            .collect();
        let gpu = choose_device(self.policy, &mut self.rr_cursor, hint, &loads)
            .map_err(placement_to_cuda)?;
        let partition = self.pools[gpu as usize]
            .alloc(mem_requirement)
            .map_err(|_| CudaError::OutOfMemory)?;
        let g = self.shared.gpu(gpu);
        let stream = {
            let mut dev = g.device.lock();
            match dev.create_stream(g.ctx) {
                Ok(s) => {
                    // A latency-class tenant's stream jumps the device's
                    // ready queue and claims freed SM capacity first at
                    // slice boundaries (gpu-sim's preemption lever).
                    dev.set_stream_latency(s, granted == QosClass::Latency);
                    s
                }
                Err(e) => {
                    drop(dev);
                    let _ = self.pools[gpu as usize].free(partition.base);
                    return Err(e.into());
                }
            }
        };
        let id = ClientId(self.next_client);
        self.next_client += 1;
        let binding = Binding {
            gpu,
            stream,
            partition,
        };
        let counters = Arc::new(TenantCounters::default());
        let telemetry = self
            .telemetry
            .then(|| crate::telemetry::TenantTelemetry::new(crate::telemetry::FLIGHT_RING));
        let state = Arc::new(ClientShared {
            id,
            dead: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            sticky: Mutex::new(None),
            heap: Mutex::new(RegionAllocator::new(partition)),
            events: Mutex::new(EventTable {
                events: HashMap::new(),
                next: 1,
            }),
            binding: RwLock::new(binding),
            gpu_tag: AtomicU32::new(gpu),
            stream_tag: AtomicU32::new(stream.0),
            lease_mem: lease.mem_bytes,
            lease_ttl_ms: lease.ttl_ms(),
            qos: AtomicU8::new(granted.to_wire()),
            counters: counters.clone(),
            telemetry: telemetry.clone(),
        });
        let info = self.client_info(&state, &binding);
        if granted == QosClass::Latency {
            self.shared
                .exec_gauges
                .qos_latency_sessions
                .fetch_add(1, Ordering::SeqCst);
        }
        self.shared.clients.write().insert(id, state);
        self.plane
            .admit(id.0, uid, gpu, partition.size, lease, counters, telemetry);
        self.log_event(
            "connect",
            format_args!("uid={uid} client={} device={gpu} qos={granted}", id.0),
        );
        Ok(info)
    }

    fn register_fatbin(&mut self, bytes: &[u8]) -> CudaResult<()> {
        let hash = fxhash(bytes);
        if self.registered_fatbins.contains(&hash) {
            return Ok(());
        }
        let images =
            ptx::fatbin::extract_ptx(bytes).map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        for (name, text) in images {
            self.register_ptx(&name, &text)?;
        }
        self.registered_fatbins.push(hash);
        Ok(())
    }

    /// Sandbox one PTX translation unit and load it on **every** GPU,
    /// registering the patched and native kernels into each device's
    /// (read-mostly) registry — a tenant may be placed on, or migrate
    /// to, any device, and its kernels must already be resident there
    /// (the §4.4 compile-at-init discipline, per device).
    fn register_ptx(&mut self, _name: &str, text: &str) -> CudaResult<()> {
        let module = ptx::parse(text).map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        let patched = fence::patch_module(&module, self.shared.protection)
            .map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        for g in &self.shared.gpus {
            let (native, sandboxed) = {
                let mut dev = g.device.lock();
                let native = dev.load_module(g.ctx, &module)?;
                let sandboxed = dev.load_module(g.ctx, &patched.module)?;
                (native, sandboxed)
            };
            let mut kernels = g.kernels.write();
            for (kname, k) in &native.functions {
                if k.kind == ptx::FunctionKind::Entry {
                    kernels.native.insert(
                        kname.clone(),
                        CudaFunction {
                            kernel: k.clone(),
                            module: native.clone(),
                        },
                    );
                }
            }
            for (kname, k) in &sandboxed.functions {
                if k.kind == ptx::FunctionKind::Entry {
                    kernels.pointer_to_symbol.insert(
                        kname.clone(),
                        CudaFunction {
                            kernel: k.clone(),
                            module: sandboxed.clone(),
                        },
                    );
                }
            }
            drop(kernels);
            // Registry changed: sessions drop their resolved-kernel
            // caches on the next launch (a re-registered name must not
            // keep serving the old module).
            g.kernels_gen.fetch_add(1, Ordering::Release);
        }
        Ok(())
    }
}

/// A handle to a running grdManager. Cloning is cheap; the manager's
/// threads are joined when the last handle drops (after every client has
/// disconnected) or eagerly via [`ManagerHandle::shutdown`].
///
/// **Drop order matters**: dropping the last handle *blocks* until every
/// connected [`GrdLib`](crate::GrdLib) (and raw connection) has dropped,
/// because joining the session threads is what guarantees no thread
/// leaks. Drop clients before the handle — on the same thread,
/// `drop(manager)` with a live client is a deadlock. [`Tenancy`]
/// (crate::Tenancy)'s field order encodes the safe sequence.
#[derive(Clone)]
pub struct ManagerHandle {
    inner: Arc<ManagerInner>,
}

struct ManagerInner {
    /// The node's lease/quota registry (shared with the control thread
    /// and any admin endpoints serving this manager).
    plane: Arc<ControlPlane>,
    /// Dropped first on shutdown: closes the listener so the acceptor
    /// stops taking new connections.
    dialer: Option<Box<dyn Dialer>>,
    /// Forces a kernel-blocked `accept` (socket transports) to return at
    /// shutdown; the in-process channel transport needs none.
    unblock: Option<transport::UnblockFn>,
    devices: Vec<SharedDevice>,
    ctrl_tx: Option<Sender<CtrlMsg>>,
    acceptor: Option<JoinHandle<()>>,
    control: Option<JoinHandle<()>>,
}

impl Drop for ManagerInner {
    fn drop(&mut self) {
        // 1. Close the listener: no new connections. Socket listeners
        //    block in the kernel, so fire their wake-up hook too.
        self.dialer.take();
        if let Some(unblock) = self.unblock.take() {
            unblock();
        }
        // 2. Join the acceptor; it joins every session, and sessions end
        //    when their client half drops — so this blocks until all
        //    tenants have disconnected, like the old explicit shutdown.
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // 3. All session-held control senders are gone now; dropping ours
        //    lets the control thread drain and exit.
        self.ctrl_tx.take();
        if let Some(c) = self.control.take() {
            let _ = c.join();
        }
    }
}

impl ManagerHandle {
    /// Open a new transport connection to this manager.
    pub(crate) fn dial(&self) -> Result<Box<dyn Connection>, transport::TransportError> {
        match &self.inner.dialer {
            Some(d) => d.dial(),
            None => Err(transport::TransportError::Disconnected),
        }
    }

    /// One-shot query over a fresh connection (cold paths: stats and
    /// benchmarking probes).
    fn query(&self, req: &proto::Request) -> Option<proto::Response> {
        let conn = self.dial().ok()?;
        conn.send(req.encode()).ok()?;
        let frame = conn.recv().ok()?;
        proto::Response::decode(&frame).ok()
    }

    fn stats_rpc(&self) -> Option<proto::StatsSnapshot> {
        match self.query(&proto::Request::Stats)? {
            proto::Response::Stats(s) => Some(s),
            _ => None,
        }
    }

    /// Interception statistics accumulated so far, both launch paths
    /// merged (Table 5's historical aggregate view).
    pub fn interception_stats(&self) -> InterceptionStats {
        self.launch_stats().combined()
    }

    /// Interception statistics split by launch path: runtime-level
    /// `cudaLaunchKernel` vs driver-level `cuLaunchKernel` (Table 5).
    pub fn launch_stats(&self) -> LaunchStats {
        self.stats_rpc().map(|s| s.launch).unwrap_or_default()
    }

    /// High-water mark of data-plane operations executing simultaneously
    /// across tenants (stays 1 under [`DispatchMode::Serial`]).
    pub fn max_concurrent_data_ops(&self) -> u32 {
        self.stats_rpc()
            .map(|s| s.max_concurrent_data_ops)
            .unwrap_or(0)
    }

    /// Current device time (cycles), for benchmarking.
    pub fn device_now(&self) -> u64 {
        match self.query(&proto::Request::DeviceNow) {
            Some(proto::Response::Cycles(c)) => c,
            _ => 0,
        }
    }

    /// The first (or only) shared device, for out-of-band inspection in
    /// tests/benches — the single-GPU view of [`ManagerHandle::devices`].
    pub fn device(&self) -> &SharedDevice {
        &self.inner.devices[0]
    }

    /// The whole device set, indexed by GPU ordinal.
    pub fn devices(&self) -> &[SharedDevice] {
        &self.inner.devices
    }

    /// Number of GPUs this manager owns.
    pub fn device_count(&self) -> usize {
        self.inner.devices.len()
    }

    /// Per-device pool load and tenant counts, as the control plane sees
    /// them (the same answer a tenant gets from `Request::DeviceInfo`).
    pub fn device_infos(&self) -> CudaResult<Vec<proto::DeviceInfo>> {
        match self.ctrl(CtrlOp::DeviceInfo)? {
            CtrlOut::Devices(d) => Ok(d),
            _ => Err(CudaError::InvalidValue),
        }
    }

    /// Migrate a tenant's partition to `dst_gpu`, live: drains the
    /// source, copies allocations offset-stable, rebinds the session.
    /// Returns the new `(partition_base, partition_size)`. This is the
    /// operator-side entry (tests, rebalancers); tenants use
    /// [`GrdLib::migrate`](crate::GrdLib::migrate), which also refreshes
    /// their cached pointers.
    ///
    /// # Errors
    ///
    /// [`CudaError::OutOfMemory`] when `dst_gpu`'s pool cannot host the
    /// partition; [`CudaError::Rejected`] for unknown devices or a tenant
    /// already killed by Guardian.
    pub fn migrate_partition(&self, client: ClientId, dst_gpu: u32) -> CudaResult<(u64, u64)> {
        match self.ctrl(CtrlOp::Migrate { client, dst_gpu })? {
            CtrlOut::Connected(info) => Ok((info.partition_base, info.partition_size)),
            _ => Err(CudaError::InvalidValue),
        }
    }

    /// One rebalance step: migrate one tenant from the most- to the
    /// least-loaded device if that narrows the pool-byte spread. Returns
    /// what moved, or `None` when already balanced. Call in a loop (or
    /// from a periodic supervisor) to converge.
    ///
    /// # Errors
    ///
    /// Propagates migration failures; `Disconnected` once the manager is
    /// gone.
    pub fn rebalance(&self) -> CudaResult<Option<(ClientId, u32, u32)>> {
        match self.ctrl(CtrlOp::Rebalance)? {
            CtrlOut::Rebalanced(moved) => Ok(moved),
            _ => Err(CudaError::InvalidValue),
        }
    }

    fn ctrl(&self, op: CtrlOp) -> CudaResult<CtrlOut> {
        match &self.inner.ctrl_tx {
            Some(tx) => ctrl_call(tx, op),
            None => Err(CudaError::Disconnected),
        }
    }

    /// The node's lease/quota registry — lease defaults and overrides,
    /// live-tenant and per-uid usage tables, metrics rendering.
    pub fn control_plane(&self) -> &Arc<ControlPlane> {
        &self.inner.plane
    }

    /// The admin plane's handle into this manager, for serving
    /// `guardianctl` (see [`crate::control::serve_admin`]) or driving
    /// lease operations programmatically.
    pub fn admin(&self) -> AdminApi {
        AdminApi {
            plane: self.inner.plane.clone(),
            ctrl: self
                .inner
                .ctrl_tx
                .clone()
                .expect("ctrl_tx lives as long as ManagerInner"),
        }
    }

    /// Revoke a tenant's lease by force: the session is drained through
    /// the migration barrier, the partition reclaimed, and the tenant's
    /// next operation answers `Rejected`.
    ///
    /// # Errors
    ///
    /// [`CudaError::InvalidValue`] for unknown clients.
    pub fn revoke(&self, client: ClientId) -> CudaResult<()> {
        self.ctrl(CtrlOp::Revoke {
            client,
            expired: false,
        })
        .map(|_| ())
    }

    /// Eagerly shut down: drop this handle and, if it is the last one,
    /// join the manager's threads once every client has disconnected.
    /// Plain `drop` does the same; this method exists to make teardown
    /// points explicit in tests and benches.
    pub fn shutdown(self) {
        drop(self);
    }
}

/// The admin plane's view of one manager: answers the
/// [`AdminRequest`] message family by combining the lease/quota
/// registry with one-shot queries through the serialized control
/// thread. Cloneable; [`crate::control::serve_admin`] takes one per
/// endpoint.
#[derive(Clone)]
pub struct AdminApi {
    plane: Arc<ControlPlane>,
    ctrl: Sender<CtrlMsg>,
}

impl AdminApi {
    /// The registry this API serves.
    pub fn control_plane(&self) -> &Arc<ControlPlane> {
        &self.plane
    }

    fn devices(&self) -> CudaResult<Vec<proto::DeviceInfo>> {
        match ctrl_call(&self.ctrl, CtrlOp::DeviceInfo)? {
            CtrlOut::Devices(d) => Ok(d),
            _ => Err(CudaError::InvalidValue),
        }
    }

    /// Answer one admin request. Never panics on hostile input — errors
    /// come back as [`AdminResponse::Error`] with this node's id, like
    /// every other response.
    pub fn handle(&self, req: AdminRequest) -> AdminResponse {
        let node = self.plane.node().to_string();
        let err = |msg: String| AdminResponse::Error {
            node: node.clone(),
            msg,
        };
        match req {
            AdminRequest::Devices => match self.devices() {
                Ok(devices) => AdminResponse::Devices { node, devices },
                Err(e) => err(e.to_string()),
            },
            AdminRequest::Tenants => AdminResponse::Tenants {
                node,
                tenants: self.plane.tenants_table(),
            },
            AdminRequest::LeaseSet {
                uid,
                mem_bytes,
                streams,
                ttl_ms,
                qos,
            } => {
                self.plane
                    .set_override(uid, LeaseSpec::from_wire(mem_bytes, streams, ttl_ms, qos));
                // Re-apply the (possibly lowered) QoS ceiling to the
                // uid's live tenants through the serialized control
                // thread — it owns the client map and device streams.
                match ctrl_call(&self.ctrl, CtrlOp::Reclass { uid }) {
                    Ok(_) => AdminResponse::Ok { node },
                    Err(e) => err(format!("reclass uid {uid}: {e}")),
                }
            }
            AdminRequest::LeaseRevoke { client } => {
                let r = ctrl_call(
                    &self.ctrl,
                    CtrlOp::Revoke {
                        client: ClientId(client),
                        expired: false,
                    },
                );
                match r {
                    Ok(_) => AdminResponse::Ok { node },
                    Err(e) => err(format!("revoke client {client}: {e}")),
                }
            }
            AdminRequest::Quota { uid } => AdminResponse::Quota {
                node,
                entries: self.plane.quota_table(uid),
            },
            AdminRequest::Metrics => match self.devices() {
                Ok(devices) => AdminResponse::Metrics {
                    node,
                    text: self.plane.render_metrics(&devices),
                },
                Err(e) => err(e.to_string()),
            },
            AdminRequest::Trace { uid } => AdminResponse::Trace {
                node,
                events: self.plane.trace_snapshot(uid),
            },
        }
    }
}

/// Spawn a grdManager on a device.
///
/// `fatbins` are sandboxed and pre-compiled at initialization (the offline
/// phase + "compile at init to avoid JIT overhead", §4.4). Clients may
/// register more fatbins later.
///
/// # Errors
///
/// Fails when the partition pool cannot be reserved or any initial fatbin
/// fails to sandbox/load.
pub fn spawn_manager(
    device: SharedDevice,
    config: ManagerConfig,
    fatbins: &[&[u8]],
) -> CudaResult<ManagerHandle> {
    spawn_manager_over(device, config, fatbins, BoundTransport::channel())
}

/// Spawn a grdManager serving an explicit transport — this is how the
/// manager ends up behind a Unix socket ([`BoundTransport::uds`]) or a
/// shared-memory ring ([`BoundTransport::shm`]) so tenants can be real OS
/// processes; [`spawn_manager`] is the in-process special case.
///
/// # Errors
///
/// As [`spawn_manager`].
pub fn spawn_manager_over(
    device: SharedDevice,
    config: ManagerConfig,
    fatbins: &[&[u8]],
    transport_over: BoundTransport,
) -> CudaResult<ManagerHandle> {
    spawn_manager_multi(vec![device], config, fatbins, transport_over)
}

/// Spawn a grdManager owning a whole **device set**: one partition pool,
/// kernel registry, and fault cursor per GPU. Tenants are routed across
/// the set at `Connect` by [`ManagerConfig::placement`] or an explicit
/// [`PlacementHint`], and can be migrated between devices live
/// ([`ManagerHandle::migrate_partition`]). A one-element set is exactly
/// the old single-GPU manager — [`spawn_manager_over`] delegates here.
///
/// # Errors
///
/// As [`spawn_manager`]; additionally fails on an empty device set or a
/// `pool_bytes_per_gpu` whose length does not match it.
pub fn spawn_manager_multi(
    devices: Vec<SharedDevice>,
    config: ManagerConfig,
    fatbins: &[&[u8]],
    transport_over: BoundTransport,
) -> CudaResult<ManagerHandle> {
    if devices.is_empty() {
        return Err(CudaError::Rejected("empty device set".into()));
    }
    if let Some(per) = &config.pool_bytes_per_gpu {
        if per.len() != devices.len() {
            return Err(CudaError::Rejected(format!(
                "pool_bytes_per_gpu has {} entries for {} devices",
                per.len(),
                devices.len()
            )));
        }
    }
    let mut gpus = Vec::with_capacity(devices.len());
    let mut pools = Vec::with_capacity(devices.len());
    for (i, device) in devices.iter().enumerate() {
        let ctx = device.lock().create_context()?;
        // Reserve this device's partition pool: all of free memory
        // rounded down to a power of two (or the configured size),
        // self-aligned for fencing.
        let pool_bytes = match (&config.pool_bytes_per_gpu, config.pool_bytes) {
            (Some(per), _) => per[i],
            (None, Some(b)) => b,
            (None, None) => {
                // Target the largest power of two ≤ half of the
                // device's *total* memory, then halve until it fits in
                // what is actually free. Sizing from free memory alone
                // undercounts: the context's scratch allocation (1 MiB)
                // has already been carved, so `free/2` lands just under
                // the power-of-two boundary and the pool silently loses
                // a whole doubling.
                let (spec_mem, free) = {
                    let dev = device.lock();
                    let spec_mem = dev.spec().global_mem_bytes;
                    (spec_mem, spec_mem - dev.used_bytes())
                };
                let mut pool = 1u64 << (63 - (spec_mem / 2).leading_zeros());
                while pool > free {
                    pool >>= 1;
                }
                pool
            }
        };
        let pool_base = device.lock().malloc_aligned(ctx, pool_bytes, pool_bytes)?;
        gpus.push(GpuShared {
            device: device.clone(),
            ctx,
            kernels: RwLock::new(KernelTable::default()),
            kernels_gen: AtomicU64::new(0),
            fault_cursor: Mutex::new(0),
        });
        pools.push(PartitionAllocator::new(pool_base, pool_bytes));
    }
    let node_id = config
        .node_id
        .clone()
        .unwrap_or_else(|| format!("grd-{}", std::process::id()));
    let plane = Arc::new(ControlPlane::new(
        node_id,
        config.lease_default.unwrap_or_default(),
        config.admission.clone(),
    ));
    let shared = Arc::new(Shared {
        gpus,
        protection: config.protection,
        native_when_standalone: config.native_when_standalone,
        dispatch: config.dispatch,
        launch_ack: config.launch_ack,
        clients: RwLock::new(HashMap::new()),
        stats: LaunchStatsAtomic::default(),
        serial_gate: Mutex::new(()),
        inflight: AtomicU32::new(0),
        max_inflight: AtomicU32::new(0),
        exec_gauges: plane.exec_gauges(),
        qos_inflight_budget: config.qos_inflight_budget,
    });
    let mut control = Control {
        shared: shared.clone(),
        pools,
        policy: config.placement,
        rr_cursor: 0,
        next_client: 1,
        registered_fatbins: Vec::new(),
        plane: plane.clone(),
        activity_marks: HashMap::new(),
        telemetry: config.telemetry,
        log_level: config.log_level,
    };
    // Offline phase: sandbox + load the initial fatbins (on every GPU)
    // before any tenant can connect, so registration errors surface here.
    for fb in fatbins {
        control.register_fatbin(fb)?;
    }
    let BoundTransport {
        listener,
        dialer,
        unblock,
    } = transport_over;
    let (ctrl_tx, ctrl_rx) = unbounded();
    let control_join = std::thread::Builder::new()
        .name("grdManager".into())
        .spawn(move || control.run(ctrl_rx))
        .expect("spawn grdManager thread");
    // Resolve the automatic driver here so the acceptor gets a concrete
    // choice: serial dispatch keeps threads (a blocked lockstep enqueue
    // must never stall an executor worker that other sessions share,
    // and per-session threads keep its makespans bit-for-bit
    // reproducible); concurrent dispatch gets the executor pool.
    let driver = match config.session_driver {
        SessionDriver::Auto => match config.dispatch {
            DispatchMode::Serial => SessionDriver::ThreadPerSession,
            DispatchMode::Concurrent => SessionDriver::EventPool { workers: 0 },
        },
        d => d,
    };
    let acceptor_join = session::spawn_acceptor(listener, shared, ctrl_tx.clone(), driver);
    Ok(ManagerHandle {
        inner: Arc::new(ManagerInner {
            plane,
            dialer: Some(dialer),
            unblock,
            devices,
            ctrl_tx: Some(ctrl_tx),
            acceptor: Some(acceptor_join),
            control: Some(control_join),
        }),
    })
}

fn fxhash(bytes: &[u8]) -> u64 {
    // FNV-1a; used only to dedupe repeat fatbin registrations.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
