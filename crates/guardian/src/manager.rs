//! The GPU manager (`grdManager`, §4.2): the only entity with GPU access.
//!
//! Applications never touch the device; their `grdLib` forwards every CUDA
//! runtime/driver call over an IPC channel to this manager, which:
//!
//! * assigns each tenant a contiguous power-of-two **partition** and serves
//!   its allocations from it (§4.2.1);
//! * checks every host-initiated transfer against the partition bounds
//!   table (§4.2.2);
//! * swaps every kernel launch for its **sandboxed** twin (the
//!   `pointerToSymbol` lookup), appends the partition bounds to the kernel
//!   arguments, and issues it on the tenant's stream (§4.2.3);
//! * runs tenants' streams concurrently on the single shared context
//!   (§4.2.4), terminating — only — the offending tenant when address
//!   checking detects an out-of-bounds access.

use crate::alloc::{PartitionAllocator, RegionAllocator};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use cuda_rt::{CudaError, CudaResult, DevicePtr, SharedDevice};
use gpu_sim::stream::CudaFunction;
use gpu_sim::{Command, CtxId, Event, HostSink, LaunchConfig, MemGuard, StreamId};
use parking_lot::Mutex;
use ptx_patcher::{fence, Protection};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Identifies a connected tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u32);

/// Nominal host clock used to convert measured nanoseconds into the
/// "CPU cycles" unit of the paper's Table 5.
pub const HOST_GHZ: f64 = 3.0;

/// Host-side interception cost statistics (Table 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterceptionStats {
    /// Launches measured.
    pub launches: u64,
    /// Total nanoseconds spent looking up the sandboxed kernel in the
    /// `pointerToSymbol` map.
    pub lookup_ns: u64,
    /// Total nanoseconds spent building the augmented parameter array.
    pub augment_ns: u64,
    /// Total nanoseconds spent enqueueing to the device.
    pub enqueue_ns: u64,
}

impl InterceptionStats {
    /// Average lookup cost in nominal CPU cycles.
    pub fn lookup_cycles(&self) -> f64 {
        cycles(self.lookup_ns, self.launches)
    }

    /// Average parameter-augmentation cost in nominal CPU cycles.
    pub fn augment_cycles(&self) -> f64 {
        cycles(self.augment_ns, self.launches)
    }

    /// Average enqueue cost in nominal CPU cycles.
    pub fn enqueue_cycles(&self) -> f64 {
        cycles(self.enqueue_ns, self.launches)
    }
}

fn cycles(ns: u64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        ns as f64 / n as f64 * HOST_GHZ
    }
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Bounds-enforcement mode applied to kernels.
    pub protection: Protection,
    /// Pool reserved for partitions (power of two). `None` = largest
    /// power of two ≤ half of device memory.
    pub pool_bytes: Option<u64>,
    /// Issue native (unpatched) kernels when only one client is connected
    /// (§4.2.3: standalone applications incur no overhead). Off by default
    /// so overhead experiments measure protection costs.
    pub native_when_standalone: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            protection: Protection::FenceBitwise,
            pool_bytes: None,
            native_when_standalone: false,
        }
    }
}

pub(crate) enum Request {
    Connect {
        mem_requirement: u64,
        reply: Sender<CudaResult<ClientInfo>>,
    },
    Disconnect {
        client: ClientId,
    },
    RegisterFatbin {
        client: ClientId,
        bytes: Vec<u8>,
        reply: Sender<CudaResult<()>>,
    },
    RegisterPtx {
        client: ClientId,
        name: String,
        text: String,
        reply: Sender<CudaResult<()>>,
    },
    Malloc {
        client: ClientId,
        bytes: u64,
        reply: Sender<CudaResult<DevicePtr>>,
    },
    Free {
        client: ClientId,
        ptr: DevicePtr,
        reply: Sender<CudaResult<()>>,
    },
    Memset {
        client: ClientId,
        dst: DevicePtr,
        byte: u8,
        len: u64,
        reply: Sender<CudaResult<()>>,
    },
    MemcpyH2D {
        client: ClientId,
        dst: DevicePtr,
        data: Vec<u8>,
        reply: Sender<CudaResult<()>>,
    },
    MemcpyD2H {
        client: ClientId,
        src: DevicePtr,
        len: u64,
        reply: Sender<CudaResult<Vec<u8>>>,
    },
    MemcpyD2D {
        client: ClientId,
        dst: DevicePtr,
        src: DevicePtr,
        len: u64,
        reply: Sender<CudaResult<()>>,
    },
    Launch {
        client: ClientId,
        kernel: String,
        cfg: LaunchConfig,
        args: Vec<u8>,
        #[allow(dead_code)] // kept for API fidelity (cu vs cuda launch)
        driver_level: bool,
        reply: Sender<CudaResult<()>>,
    },
    Sync {
        client: ClientId,
        reply: Sender<CudaResult<()>>,
    },
    EventCreate {
        client: ClientId,
        reply: Sender<CudaResult<u32>>,
    },
    EventRecord {
        client: ClientId,
        event: u32,
        reply: Sender<CudaResult<()>>,
    },
    EventElapsed {
        client: ClientId,
        start: u32,
        end: u32,
        reply: Sender<CudaResult<f32>>,
    },
    DeviceNow {
        reply: Sender<u64>,
    },
    Stats {
        reply: Sender<InterceptionStats>,
    },
}

/// Connection info returned to a new client.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClientInfo {
    pub id: ClientId,
    pub clock_ghz: f64,
    pub partition_base: u64,
    pub partition_size: u64,
}

struct ClientState {
    heap: RegionAllocator,
    stream: StreamId,
    events: HashMap<u32, Event>,
    next_event: u32,
    dead: bool,
}

struct Manager {
    device: SharedDevice,
    ctx: CtxId,
    protection: Protection,
    native_when_standalone: bool,
    partitions: PartitionAllocator,
    clients: HashMap<ClientId, ClientState>,
    next_client: u32,
    /// `pointerToSymbol`: kernel name → sandboxed CUfunction (§4.2.3).
    pointer_to_symbol: HashMap<String, CudaFunction>,
    /// Native (unpatched) kernels for the no-protection / standalone path.
    native_kernels: HashMap<String, CudaFunction>,
    registered_fatbins: Vec<u64>, // hashes, to dedupe repeat registrations
    stats: InterceptionStats,
    fault_cursor: usize,
}

/// A handle to a running grdManager thread. Cloning is cheap; the manager
/// thread exits when every handle and client has been dropped.
#[derive(Clone)]
pub struct ManagerHandle {
    pub(crate) tx: Sender<Request>,
    /// Kept for lifetime management of the shared device.
    pub(crate) device: SharedDevice,
    join: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

impl ManagerHandle {
    /// Interception statistics accumulated so far (Table 5).
    pub fn interception_stats(&self) -> InterceptionStats {
        let (tx, rx) = bounded(1);
        if self.tx.send(Request::Stats { reply: tx }).is_err() {
            return InterceptionStats::default();
        }
        rx.recv().unwrap_or_default()
    }

    /// Current device time (cycles), for benchmarking.
    pub fn device_now(&self) -> u64 {
        let (tx, rx) = bounded(1);
        if self.tx.send(Request::DeviceNow { reply: tx }).is_err() {
            return 0;
        }
        rx.recv().unwrap_or(0)
    }

    /// The shared device (for out-of-band inspection in tests/benches).
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// Drop the handle's sender and join the manager thread once all
    /// clients have disconnected.
    pub fn shutdown(self) {
        let ManagerHandle { tx, join, .. } = self;
        drop(tx);
        let handle = join.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Spawn a grdManager on a device.
///
/// `fatbins` are sandboxed and pre-compiled at initialization (the offline
/// phase + "compile at init to avoid JIT overhead", §4.4). Clients may
/// register more fatbins later.
///
/// # Errors
///
/// Fails when the partition pool cannot be reserved or any initial fatbin
/// fails to sandbox/load.
pub fn spawn_manager(
    device: SharedDevice,
    config: ManagerConfig,
    fatbins: &[&[u8]],
) -> CudaResult<ManagerHandle> {
    let ctx = device.lock().create_context()?;
    // Reserve the partition pool: all of free memory rounded down to a
    // power of two (or the configured size), self-aligned for fencing.
    let pool_bytes = match config.pool_bytes {
        Some(b) => b,
        None => {
            let spec_mem = device.lock().spec().global_mem_bytes;
            let free = spec_mem - device.lock().used_bytes();
            let half = free / 2;
            1u64 << (63 - half.leading_zeros())
        }
    };
    let pool_base = device.lock().malloc_aligned(ctx, pool_bytes, pool_bytes)?;
    let mut mgr = Manager {
        device,
        ctx,
        protection: config.protection,
        native_when_standalone: config.native_when_standalone,
        partitions: PartitionAllocator::new(pool_base, pool_bytes),
        clients: HashMap::new(),
        next_client: 1,
        pointer_to_symbol: HashMap::new(),
        native_kernels: HashMap::new(),
        registered_fatbins: Vec::new(),
        stats: InterceptionStats::default(),
        fault_cursor: 0,
    };
    for fb in fatbins {
        mgr.register_fatbin(fb)?;
    }
    let (tx, rx) = unbounded();
    let device = mgr.device.clone();
    let join = std::thread::Builder::new()
        .name("grdManager".into())
        .spawn(move || mgr.run(rx))
        .expect("spawn grdManager thread");
    Ok(ManagerHandle {
        tx,
        device,
        join: Arc::new(Mutex::new(Some(join))),
    })
}

impl Manager {
    fn run(mut self, rx: Receiver<Request>) {
        while let Ok(req) = rx.recv() {
            self.handle(req);
        }
        // All handles and clients dropped: release the context.
        let _ = self.device.lock().destroy_context(self.ctx);
    }

    fn handle(&mut self, req: Request) {
        match req {
            Request::Connect {
                mem_requirement,
                reply,
            } => {
                let _ = reply.send(self.connect(mem_requirement));
            }
            Request::Disconnect { client } => {
                if let Some(state) = self.clients.remove(&client) {
                    let _ = self.partitions.free(state.heap.partition().base);
                }
            }
            Request::RegisterFatbin {
                client,
                bytes,
                reply,
            } => {
                let r = self
                    .check_alive(client)
                    .and_then(|_| self.register_fatbin(&bytes));
                let _ = reply.send(r);
            }
            Request::RegisterPtx {
                client,
                name,
                text,
                reply,
            } => {
                let r = self
                    .check_alive(client)
                    .and_then(|_| self.register_ptx(&name, &text));
                let _ = reply.send(r);
            }
            Request::Malloc {
                client,
                bytes,
                reply,
            } => {
                let r = self.check_alive(client).and_then(|_| {
                    self.clients
                        .get_mut(&client)
                        .ok_or(CudaError::InvalidValue)?
                        .heap
                        .alloc(bytes)
                        .map_err(|_| CudaError::OutOfMemory)
                });
                let _ = reply.send(r);
            }
            Request::Free { client, ptr, reply } => {
                let r = self.check_alive(client).and_then(|_| {
                    self.clients
                        .get_mut(&client)
                        .ok_or(CudaError::InvalidValue)?
                        .heap
                        .free(ptr)
                        .map_err(|_| CudaError::InvalidValue)
                });
                let _ = reply.send(r);
            }
            Request::Memset {
                client,
                dst,
                byte,
                len,
                reply,
            } => {
                let r = self.transfer_checked(client, &[(dst, len)], |mgr, stream| {
                    mgr.enqueue_and_sync(stream, Command::Memset { dst, byte, len })
                });
                let _ = reply.send(r);
            }
            Request::MemcpyH2D {
                client,
                dst,
                data,
                reply,
            } => {
                let len = data.len() as u64;
                let r = self.transfer_checked(client, &[(dst, len)], |mgr, stream| {
                    mgr.enqueue_and_sync(stream, Command::MemcpyH2D { dst, data })
                });
                let _ = reply.send(r);
            }
            Request::MemcpyD2H {
                client,
                src,
                len,
                reply,
            } => {
                let sink = HostSink::new();
                let s2 = sink.clone();
                let r = self
                    .transfer_checked(client, &[(src, len)], move |mgr, stream| {
                        mgr.enqueue_and_sync(stream, Command::MemcpyD2H { src, len, sink: s2 })
                    })
                    .map(|()| sink.take());
                let _ = reply.send(r);
            }
            Request::MemcpyD2D {
                client,
                dst,
                src,
                len,
                reply,
            } => {
                let r = self.transfer_checked(client, &[(dst, len), (src, len)], |mgr, stream| {
                    mgr.enqueue_and_sync(stream, Command::MemcpyD2D { dst, src, len })
                });
                let _ = reply.send(r);
            }
            Request::Launch {
                client,
                kernel,
                cfg,
                args,
                driver_level: _,
                reply,
            } => {
                let _ = reply.send(self.launch(client, &kernel, cfg, &args));
            }
            Request::Sync { client, reply } => {
                let r = self.check_alive(client).and_then(|_| {
                    self.device.lock().synchronize();
                    self.reap_faults();
                    self.check_alive(client)
                });
                let _ = reply.send(r);
            }
            Request::EventCreate { client, reply } => {
                let r = self.check_alive(client).and_then(|_| {
                    let state = self
                        .clients
                        .get_mut(&client)
                        .ok_or(CudaError::InvalidValue)?;
                    let id = state.next_event;
                    state.next_event += 1;
                    state.events.insert(id, Event::new());
                    Ok(id)
                });
                let _ = reply.send(r);
            }
            Request::EventRecord {
                client,
                event,
                reply,
            } => {
                let r = self.check_alive(client).and_then(|_| {
                    let state = self.clients.get(&client).ok_or(CudaError::InvalidValue)?;
                    let ev = state
                        .events
                        .get(&event)
                        .cloned()
                        .ok_or(CudaError::InvalidValue)?;
                    self.device
                        .lock()
                        .enqueue(state.stream, Command::EventRecord { event: ev })
                        .map_err(CudaError::from)
                });
                let _ = reply.send(r);
            }
            Request::EventElapsed {
                client,
                start,
                end,
                reply,
            } => {
                let r = self.check_alive(client).and_then(|_| {
                    let state = self.clients.get(&client).ok_or(CudaError::InvalidValue)?;
                    let a = state
                        .events
                        .get(&start)
                        .and_then(|e| e.cycles())
                        .ok_or(CudaError::InvalidValue)?;
                    let b = state
                        .events
                        .get(&end)
                        .and_then(|e| e.cycles())
                        .ok_or(CudaError::InvalidValue)?;
                    let ghz = self.device.lock().spec().clock_ghz;
                    Ok(((b.saturating_sub(a)) as f64 / (ghz * 1e6)) as f32)
                });
                let _ = reply.send(r);
            }
            Request::DeviceNow { reply } => {
                let _ = reply.send(self.device.lock().now());
            }
            Request::Stats { reply } => {
                let _ = reply.send(self.stats);
            }
        }
    }

    fn connect(&mut self, mem_requirement: u64) -> CudaResult<ClientInfo> {
        let partition = self
            .partitions
            .alloc(mem_requirement)
            .map_err(|_| CudaError::OutOfMemory)?;
        let stream = self.device.lock().create_stream(self.ctx)?;
        let id = ClientId(self.next_client);
        self.next_client += 1;
        self.clients.insert(
            id,
            ClientState {
                heap: RegionAllocator::new(partition),
                stream,
                events: HashMap::new(),
                next_event: 1,
                dead: false,
            },
        );
        let clock_ghz = self.device.lock().spec().clock_ghz;
        Ok(ClientInfo {
            id,
            clock_ghz,
            partition_base: partition.base,
            partition_size: partition.size,
        })
    }

    fn check_alive(&self, client: ClientId) -> CudaResult<()> {
        match self.clients.get(&client) {
            None => Err(CudaError::InvalidValue),
            Some(s) if s.dead => Err(CudaError::Rejected(
                "client terminated by Guardian after out-of-bounds detection".into(),
            )),
            Some(_) => Ok(()),
        }
    }

    /// Run a transfer after verifying every `(addr, len)` range lies in
    /// the caller's partition (§4.2.2).
    fn transfer_checked(
        &mut self,
        client: ClientId,
        ranges: &[(u64, u64)],
        go: impl FnOnce(&mut Self, StreamId) -> CudaResult<()>,
    ) -> CudaResult<()> {
        self.check_alive(client)?;
        let state = self.clients.get(&client).ok_or(CudaError::InvalidValue)?;
        let part = state.heap.partition();
        for &(addr, len) in ranges {
            if !part.contains_range(addr, len) {
                return Err(CudaError::Rejected(format!(
                    "transfer [{addr:#x}, +{len}) outside partition [{:#x}, +{})",
                    part.base, part.size
                )));
            }
        }
        let stream = state.stream;
        go(self, stream)
    }

    fn enqueue_and_sync(&mut self, stream: StreamId, cmd: Command) -> CudaResult<()> {
        {
            let mut dev = self.device.lock();
            dev.enqueue(stream, cmd)?;
            dev.synchronize();
        }
        self.reap_faults();
        Ok(())
    }

    fn register_fatbin(&mut self, bytes: &[u8]) -> CudaResult<()> {
        let hash = fxhash(bytes);
        if self.registered_fatbins.contains(&hash) {
            return Ok(());
        }
        let images =
            ptx::fatbin::extract_ptx(bytes).map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        for (name, text) in images {
            self.register_ptx(&name, &text)?;
        }
        self.registered_fatbins.push(hash);
        Ok(())
    }

    /// Sandbox + load one PTX translation unit; register both the patched
    /// and the native kernels.
    fn register_ptx(&mut self, _name: &str, text: &str) -> CudaResult<()> {
        let module = ptx::parse(text).map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        let patched = fence::patch_module(&module, self.protection)
            .map_err(|e| CudaError::ModuleLoad(e.to_string()))?;
        let mut dev = self.device.lock();
        let native = dev.load_module(self.ctx, &module)?;
        let sandboxed = dev.load_module(self.ctx, &patched.module)?;
        drop(dev);
        for (kname, k) in &native.functions {
            if k.kind == ptx::FunctionKind::Entry {
                self.native_kernels.insert(
                    kname.clone(),
                    CudaFunction {
                        kernel: k.clone(),
                        module: native.clone(),
                    },
                );
            }
        }
        for (kname, k) in &sandboxed.functions {
            if k.kind == ptx::FunctionKind::Entry {
                self.pointer_to_symbol.insert(
                    kname.clone(),
                    CudaFunction {
                        kernel: k.clone(),
                        module: sandboxed.clone(),
                    },
                );
            }
        }
        Ok(())
    }

    fn launch(
        &mut self,
        client: ClientId,
        kernel: &str,
        cfg: LaunchConfig,
        args: &[u8],
    ) -> CudaResult<()> {
        self.check_alive(client)?;
        let use_native = self.protection == Protection::None
            || (self.native_when_standalone && self.clients.len() == 1);

        // (1) pointerToSymbol lookup (timed; Table 5 "Lookup GPU kernel").
        let t0 = Instant::now();
        let func = if use_native {
            self.native_kernels.get(kernel).cloned()
        } else {
            self.pointer_to_symbol.get(kernel).cloned()
        }
        .ok_or_else(|| CudaError::InvalidDeviceFunction(kernel.to_string()))?;
        let lookup_ns = t0.elapsed().as_nanos() as u64;

        // (2) Augment the parameter array with the partition bounds
        // (timed; Table 5 "Augment kernel params").
        let t1 = Instant::now();
        let state = self.clients.get(&client).ok_or(CudaError::InvalidValue)?;
        let part = state.heap.partition();
        let params = if use_native {
            args.to_vec()
        } else {
            let mut buf = vec![0u8; func.kernel.param_size];
            let n = args.len().min(buf.len());
            buf[..n].copy_from_slice(&args[..n]);
            let nparams = func.kernel.params.len();
            debug_assert!(nparams >= 2, "patched kernels carry 2 extra params");
            let (_, _, base_off) = func.kernel.params[nparams - 2];
            let (_, _, bound_off) = func.kernel.params[nparams - 1];
            let bound = match self.protection {
                Protection::FenceBitwise => part.mask(),
                Protection::FenceModulo => part.size,
                Protection::Check => part.end(),
                Protection::None => 0,
            };
            buf[base_off as usize..base_off as usize + 8].copy_from_slice(&part.base.to_le_bytes());
            buf[bound_off as usize..bound_off as usize + 8].copy_from_slice(&bound.to_le_bytes());
            buf
        };
        let augment_ns = t1.elapsed().as_nanos() as u64;

        // (3) Issue on the tenant's stream (Table 5 "Launch kernel").
        let t2 = Instant::now();
        let stream = state.stream;
        let r = self.device.lock().enqueue(
            stream,
            Command::Launch {
                func,
                cfg,
                params,
                guard: MemGuard::None,
            },
        );
        let enqueue_ns = t2.elapsed().as_nanos() as u64;

        self.stats.launches += 1;
        self.stats.lookup_ns += lookup_ns;
        self.stats.augment_ns += augment_ns;
        self.stats.enqueue_ns += enqueue_ns;
        r.map_err(CudaError::from)
    }

    /// Scan new device faults; a contained trap kills only the offending
    /// client (§4.2.4 / §5 — OOB fault isolation).
    fn reap_faults(&mut self) {
        let dev = self.device.lock();
        let log = dev.fault_log();
        let new = &log[self.fault_cursor.min(log.len())..];
        let hits: Vec<StreamId> = new.iter().map(|f| f.stream).collect();
        self.fault_cursor = log.len();
        drop(dev);
        for stream in hits {
            for state in self.clients.values_mut() {
                if state.stream == stream {
                    state.dead = true;
                }
            }
        }
    }
}

fn fxhash(bytes: &[u8]) -> u64 {
    // FNV-1a; used only to dedupe repeat fatbin registrations.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
