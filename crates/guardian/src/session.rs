//! Per-tenant data-plane sessions: the concurrent half of the dispatch
//! core.
//!
//! Every accepted transport connection gets its own session thread. The
//! session decodes frames and executes **data-plane** operations (memset,
//! memcpy, launch, sync, events) directly against fine-grained shared
//! state, so independent tenants no longer serialize through one manager
//! queue; **control-plane** operations (connect/disconnect, fatbin/PTX
//! registration, malloc/free) are forwarded to the serialized control
//! thread in [`crate::manager`], which remains the only mutator of the
//! partition table and kernel registry.
//!
//! Shared state is read-mostly where tenants share it — the
//! `pointerToSymbol` table behind an `RwLock`, partition bounds immutable
//! per client — and per-client where it is hot (each tenant's heap and
//! event table live in its own `ClientShared`, so sessions of different
//! tenants never contend on them).

use crate::alloc::{Partition, RegionAllocator};
use crate::control::{QosClass, TenantCounters};
use crate::manager::{
    ctrl_call, CtrlMsg, CtrlOp, CtrlOut, DispatchMode, LaunchAck, LaunchStatsAtomic, SessionDriver,
};
use crate::proto::{ConnectInfo, Payload, Request, Response, StatsSnapshot, Symbol};
use crate::telemetry::{self, ExecGauges, OpClass, TenantTelemetry, TraceEvent};
use crate::transport::frame::FrameView;
use crate::transport::{Connection, Listener};
use crate::ClientId;
use crossbeam::channel::Sender;
use cuda_rt::{CudaError, CudaResult, SharedDevice};
use gpu_sim::stream::{CudaFunction, ParamBuf, ParamPool};
use gpu_sim::{Command, CtxId, Event, HostSink, LaunchConfig, MemGuard, StreamId};
use parking_lot::{Mutex, RwLock};
use ptx_patcher::Protection;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Kernel registries shared by all sessions (read-mostly: written only
/// during registration, read on every launch).
#[derive(Default)]
pub(crate) struct KernelTable {
    /// `pointerToSymbol`: kernel name → sandboxed CUfunction (§4.2.3).
    pub pointer_to_symbol: HashMap<String, CudaFunction>,
    /// Native (unpatched) kernels for the no-protection / standalone path.
    pub native: HashMap<String, CudaFunction>,
}

/// Per-client event table (`cudaEvent_t` handles).
#[derive(Default)]
pub(crate) struct EventTable {
    pub events: HashMap<u32, Event>,
    pub next: u32,
}

/// Everything the manager keeps **per GPU**: the device itself, the
/// manager's one context on it, the sandboxed-kernel registry (each
/// device JITs its own copy of every module), and the fault-reaping
/// cursor into that device's log. Sessions of tenants on *different*
/// GPUs share none of this — that independence is what makes a second
/// device add throughput instead of lock contention.
pub(crate) struct GpuShared {
    pub device: SharedDevice,
    pub ctx: CtxId,
    pub kernels: RwLock<KernelTable>,
    /// Bumped on every registry write; session-side kernel caches
    /// compare against it so a re-registered name is never served from
    /// a stale resolved handle.
    pub kernels_gen: AtomicU64,
    /// How far into this device's fault log reaping has progressed.
    pub fault_cursor: Mutex<usize>,
}

/// A tenant's current placement: which GPU, which stream on it, and the
/// partition carved from that GPU's pool. Data-plane operations hold the
/// read lock for their whole duration; migration takes the write lock —
/// that acquisition is the **migration barrier** (it waits out in-flight
/// ops, and every later op sees the new device).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Binding {
    pub gpu: u32,
    pub stream: StreamId,
    pub partition: Partition,
}

/// State owned by one tenant but reachable by every session (for fault
/// reaping) — hot fields are per-client so tenants never contend.
pub(crate) struct ClientShared {
    pub id: ClientId,
    /// Set when Guardian terminates the client after OOB detection.
    pub dead: AtomicBool,
    /// Bumped by the control thread (under the binding write lock,
    /// *before* it drains the device) whenever this tenant's placement
    /// is about to change — migration or teardown. Sessions cache the
    /// binding and resolved kernels under the epoch they read, and
    /// re-validate it under the device lock at flush, so the steady
    /// state skips `binding.read()` entirely without weakening the
    /// migration barrier.
    pub epoch: AtomicU64,
    /// Deferred-mode launch error, surfaced at the next `Sync`.
    pub sticky: Mutex<Option<CudaError>>,
    pub heap: Mutex<RegionAllocator>,
    pub events: Mutex<EventTable>,
    /// Where the tenant currently lives; see [`Binding`].
    pub binding: RwLock<Binding>,
    /// Lock-free mirrors of `binding.gpu` / `binding.stream`, updated
    /// under the binding write lock. Fault reaping matches on these so it
    /// never takes a binding lock — a session reaping another device's
    /// faults while a migration holds a write lock must not deadlock.
    pub gpu_tag: AtomicU32,
    pub stream_tag: AtomicU32,
    /// Memory cap of the lease this tenancy was granted under
    /// (`u64::MAX` = uncapped); immutable for the tenancy's lifetime.
    pub lease_mem: u64,
    /// Lease TTL in milliseconds (0 = never expires); immutable.
    pub lease_ttl_ms: u64,
    /// Granted QoS class on the wire encoding ([`QosClass::to_wire`]).
    /// Written by the control thread — at admission, and again when a
    /// lease override demotes a live latency tenant — and read by the
    /// executor's drain gate, so demotion takes effect on the very next
    /// drain round without a reconnect.
    pub qos: AtomicU8,
    /// Usage counters the data plane bumps and the admin plane reads.
    pub counters: Arc<TenantCounters>,
    /// Latency histograms + flight recorder for this tenancy; `None`
    /// when the manager runs with telemetry disabled — the hot path
    /// then skips even the clock reads.
    pub telemetry: Option<Arc<TenantTelemetry>>,
}

impl ClientShared {
    /// Store a new binding (write lock already held by the caller) and
    /// refresh the reap tags.
    pub(crate) fn set_binding(&self, guard: &mut Binding, new: Binding) {
        *guard = new;
        self.gpu_tag.store(new.gpu, Ordering::SeqCst);
        self.stream_tag.store(new.stream.0, Ordering::SeqCst);
    }
}

/// State shared between the control plane and all data-plane sessions.
pub(crate) struct Shared {
    /// The device set, indexed by GPU ordinal.
    pub gpus: Vec<GpuShared>,
    pub protection: Protection,
    pub native_when_standalone: bool,
    pub dispatch: DispatchMode,
    pub launch_ack: LaunchAck,
    pub clients: RwLock<HashMap<ClientId, Arc<ClientShared>>>,
    pub stats: LaunchStatsAtomic,
    /// Serializes data-plane ops under [`DispatchMode::Serial`].
    pub serial_gate: Mutex<()>,
    /// Data-plane ops currently executing, and the high-water mark — the
    /// observable witness that tenants' dispatch genuinely overlaps.
    pub inflight: AtomicU32,
    pub max_inflight: AtomicU32,
    /// Executor instrumentation (drain batches, parks/wakes, re-arms),
    /// owned by the control plane so `/metrics` can read it.
    pub exec_gauges: Arc<ExecGauges>,
    /// Launches a best-effort tenant may hold in flight (admitted since
    /// its last sync) before the executor rate-gates its drain rounds.
    pub qos_inflight_budget: u64,
}

impl Shared {
    pub(crate) fn check_alive(client: &ClientShared) -> CudaResult<()> {
        if client.dead.load(Ordering::SeqCst) {
            Err(CudaError::Rejected(
                "client terminated by Guardian after out-of-bounds detection".into(),
            ))
        } else {
            Ok(())
        }
    }

    pub(crate) fn gpu(&self, index: u32) -> &GpuShared {
        &self.gpus[index as usize]
    }

    /// Scan new faults on one device; a contained trap kills only the
    /// offending client (§4.2.4 / §5 — OOB fault isolation). Any session
    /// may reap; the cursor lock is held until the dead flags are stored,
    /// so a fault consumed by one session's reap is always visible to the
    /// offender's next `check_alive` (cursor-advanced-but-not-yet-marked
    /// would let the offender's own sync slip through and return Ok).
    /// Matching uses the clients' lock-free `(gpu_tag, stream_tag)`
    /// mirrors: a fault can only be attributed to a tenant while it is
    /// bound to the faulting device, and migration drains the source
    /// device (and reaps it) before retagging, so no fault slips through
    /// a rebind.
    pub(crate) fn reap_faults(&self, gpu: u32) {
        let g = self.gpu(gpu);
        let mut cursor = g.fault_cursor.lock();
        let hits: Vec<StreamId> = {
            let dev = g.device.lock();
            let log = dev.fault_log();
            let start = (*cursor).min(log.len());
            *cursor = log.len();
            log[start..].iter().map(|f| f.stream).collect()
        };
        if hits.is_empty() {
            return;
        }
        let clients = self.clients.read();
        for state in clients.values() {
            if state.gpu_tag.load(Ordering::SeqCst) == gpu
                && hits.contains(&StreamId(state.stream_tag.load(Ordering::SeqCst)))
            {
                state.dead.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// What the caller driving a session should do after feeding it one
/// frame.
pub(crate) enum Step {
    /// Send this reply frame back to the peer.
    Reply(Vec<u8>),
    /// One-way request: nothing goes back.
    None,
    /// Send this reply, then drop the connection (malformed frame —
    /// the peer is broken or hostile; report once and hang up, as a
    /// socket server would).
    ReplyThenClose(Vec<u8>),
}

/// Launch descriptors admitted but not yet enqueued are flushed at this
/// many, bounding per-session memory and device-queue burstiness.
const LAUNCH_BUF: usize = 64;

/// One admitted-but-unflushed launch: the resolved kernel handle, the
/// geometry, and the raw (unaugmented) argument bytes — still a zero-copy
/// view into the receive buffer. Partition bounds are applied at flush,
/// under the epoch-validated binding.
struct LaunchItem {
    func: CudaFunction,
    cfg: LaunchConfig,
    args: Payload,
    driver_level: bool,
}

/// A session's epoch-validated snapshot of its tenant's placement and the
/// kernels it has resolved on that placement's device. Valid exactly
/// while `ClientShared::epoch` still equals `epoch` — the control thread
/// bumps it under the binding write lock before any migration/teardown
/// drain, so steady-state launches skip `binding.read()` and
/// `kernels.read()` entirely.
struct FastCache {
    epoch: u64,
    /// The device registry generation `funcs` was resolved against.
    kgen: u64,
    binding: Binding,
    funcs: HashMap<String, CudaFunction>,
}

/// Stage stamps for one admitted-but-unflushed launch; lives in a
/// scratch vector preallocated alongside `pending` so steady-state
/// pushes never touch the heap.
#[derive(Clone, Copy)]
struct LaunchSpan {
    t_decode: u64,
    t_admit: u64,
}

/// A session as a transport-agnostic state machine: everything one
/// tenant's server side *is*, minus the connection it is fed from. The
/// thread-per-session loop ([`run_session`]) and the epoll executor
/// ([`crate::exec`]) both drive one of these.
pub(crate) struct SessionCtx {
    shared: Arc<Shared>,
    ctrl: Sender<CtrlMsg>,
    client: Option<Arc<ClientShared>>,
    /// Peer uid the transport established at accept (`SO_PEERCRED` for
    /// sockets; our own uid in-process) — the quota identity a Connect
    /// on this session is admitted under.
    uid: u32,
    /// See [`FastCache`]; populated on the first buffered launch.
    cache: Option<FastCache>,
    /// Launches admitted but not yet enqueued (deferred+concurrent only).
    pending: Vec<LaunchItem>,
    /// Recycles kernel parameter buffers across flushes.
    params: Arc<ParamPool>,
    /// Augmented parameter buffers staged during one flush (storage
    /// reused across flushes).
    staged: Vec<ParamBuf>,
    /// Whether this manager's configuration admits launch buffering:
    /// deferred acks (no per-launch reply), concurrent dispatch (the
    /// serial gate must see one op at a time), and no standalone-native
    /// switching (its kernel choice depends on the live client count).
    buffering: bool,
    /// Per-pending-launch stage stamps (only pushed when the tenant has
    /// telemetry); parallel to `pending`.
    spans: Vec<LaunchSpan>,
    /// Decode stamp of the frame currently being dispatched; 0 when the
    /// tenant has no telemetry.
    t_decode: u64,
    /// Decode stamp of the oldest launch not yet covered by a sync —
    /// the open edge the launch-to-device-complete histogram closes.
    batch_open_ns: u64,
    /// Launches enqueued since the last sync closed the completion edge.
    unsynced_launches: u64,
}

impl SessionCtx {
    pub(crate) fn new(shared: Arc<Shared>, ctrl: Sender<CtrlMsg>, uid: u32) -> Self {
        let buffering = shared.launch_ack == LaunchAck::Deferred
            && shared.dispatch == DispatchMode::Concurrent
            && !(shared.native_when_standalone && shared.protection != Protection::None);
        SessionCtx {
            shared,
            ctrl,
            client: None,
            uid,
            cache: None,
            pending: Vec::with_capacity(if buffering { LAUNCH_BUF } else { 0 }),
            params: ParamPool::new(),
            staged: Vec::new(),
            buffering,
            spans: Vec::with_capacity(if buffering { LAUNCH_BUF } else { 0 }),
            t_decode: 0,
            batch_open_ns: 0,
            unsynced_launches: 0,
        }
    }

    /// Credit `n` handled frames to this session's tenant. The epoll
    /// executor calls this once per drain batch — one relaxed add for
    /// up to a whole batch of frames.
    pub(crate) fn note_frames(&self, n: u64) {
        if n > 0 {
            if let Some(c) = &self.client {
                c.counters.frames.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Decode and execute one frame. The decode borrows payloads from
    /// the frame's backing block, so bulk bytes (H2D data, launch args)
    /// are never copied on the way in.
    /// Credit one executor drain batch to the shared gauges.
    pub(crate) fn note_drain(&self, frames: u64) {
        if frames > 0 {
            self.shared.exec_gauges.note_drain(frames);
        }
    }

    /// Whether this session's tenant holds the latency QoS class right
    /// now (demotion flips the atomic mid-session). Tenancy-less
    /// sessions are best-effort.
    pub(crate) fn qos_is_latency(&self) -> bool {
        self.client
            .as_ref()
            .map(|c| c.qos.load(Ordering::Relaxed) == QosClass::Latency.to_wire())
            .unwrap_or(false)
    }

    /// Whether this session's tenant has admitted more launches since
    /// its last sync than the best-effort inflight budget allows.
    pub(crate) fn qos_over_budget(&self) -> bool {
        match &self.client {
            Some(c) => {
                c.counters.inflight.load(Ordering::Relaxed) >= self.shared.qos_inflight_budget
            }
            None => false,
        }
    }

    /// The executor gauge block shared with the control plane.
    pub(crate) fn exec_gauges(&self) -> Arc<ExecGauges> {
        self.shared.exec_gauges.clone()
    }

    pub(crate) fn handle_frame(&mut self, frame: &FrameView) -> Step {
        #[cfg(debug_assertions)]
        crate::alloc_audit::mark();
        // Stage stamp: frame decode. Tenants without telemetry skip the
        // clock read entirely, keeping the off arm honest for the
        // overhead gate.
        self.t_decode = match &self.client {
            Some(c) if c.telemetry.is_some() => telemetry::now_ns(),
            _ => 0,
        };
        let req = match Request::decode_view(frame) {
            Ok(req) => req,
            Err(e) => {
                let resp = Response::Error(CudaError::Rejected(format!("malformed frame: {e}")));
                return Step::ReplyThenClose(resp.encode());
            }
        };
        match dispatch(req, self) {
            Some(resp) => Step::Reply(resp.encode()),
            None => Step::None,
        }
    }

    /// Release the session's tenant, if any — the implicit disconnect
    /// when the connection drops, so crashed tenants cannot leak
    /// partitions. Idempotent.
    pub(crate) fn finish(&mut self) {
        self.flush_pending();
        if let Some(c) = self.client.take() {
            let _ = ctrl_call(&self.ctrl, CtrlOp::Disconnect { client: c.id });
        }
    }

    /// (Re)snapshot the tenant's binding and epoch under a brief read
    /// lock. Loading the epoch while the read lock is held pins the
    /// pair: no writer is active, so the epoch matches the binding.
    fn rebuild_cache(&mut self, c: &ClientShared) {
        let guard = c.binding.read();
        let binding = *guard;
        let epoch = c.epoch.load(Ordering::SeqCst);
        drop(guard);
        // Reuse the map's storage; `kgen: MAX` forces re-resolution
        // against the (possibly different) device's registry.
        let funcs = self
            .cache
            .take()
            .map(|f| {
                let mut m = f.funcs;
                m.clear();
                m
            })
            .unwrap_or_default();
        self.cache = Some(FastCache {
            epoch,
            kgen: u64::MAX,
            binding,
            funcs,
        });
    }

    /// Admit one launch onto the buffered hot path: resolve the kernel
    /// through the epoch-validated cache and queue a descriptor; the
    /// device is only touched at the next flush. Steady state this takes
    /// no locks (two relaxed-ish atomic loads) and no heap allocations.
    fn buffer_launch(
        &mut self,
        c: &Arc<ClientShared>,
        kernel: Symbol,
        cfg: LaunchConfig,
        args: Payload,
        driver_level: bool,
    ) {
        if let Err(e) = Shared::check_alive(c) {
            stick(c, e);
            return;
        }
        let mut warm = true;
        let epoch = c.epoch.load(Ordering::SeqCst);
        if self.cache.as_ref().map(|f| f.epoch) != Some(epoch) {
            warm = false;
            self.rebuild_cache(c);
        }
        let cache = self.cache.as_mut().expect("cache just built");
        let g = &self.shared.gpus[cache.binding.gpu as usize];
        let kgen = g.kernels_gen.load(Ordering::Acquire);
        if cache.kgen != kgen {
            cache.funcs.clear();
            cache.kgen = kgen;
            warm = false;
        }
        let func = match cache.funcs.get(kernel.as_str()) {
            Some(f) => f.clone(),
            None => {
                warm = false;
                match resolve_func(&self.shared, g, kernel.as_str()) {
                    Some(f) => {
                        cache.funcs.insert(kernel.as_str().to_string(), f.clone());
                        f
                    }
                    None => {
                        stick(
                            c,
                            CudaError::InvalidDeviceFunction(kernel.as_str().to_string()),
                        );
                        return;
                    }
                }
            }
        };
        // The op counts as in flight from admission until its flush —
        // that window is the pipelining depth the concurrency high-water
        // mark witnesses.
        let now = self.shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.shared.max_inflight.fetch_max(now, Ordering::SeqCst);
        // QoS bookkeeping: one launch admitted since the tenant's last
        // sync. A single relaxed add — inside the audited no-alloc
        // window — compared against the best-effort inflight budget by
        // the executor's drain gate.
        c.counters.inflight.fetch_add(1, Ordering::Relaxed);
        self.pending.push(LaunchItem {
            func,
            cfg,
            args,
            driver_level,
        });
        if c.telemetry.is_some() {
            // Stage stamp: session admission. Pushed within `spans`'
            // preallocated capacity, so it stays inside the audited
            // no-alloc window below.
            self.spans.push(LaunchSpan {
                t_decode: self.t_decode,
                t_admit: telemetry::now_ns(),
            });
        }
        // The steady state (warm cache, buffer below its preallocated
        // cap) must not touch the heap; armed by the stress tests'
        // counting allocator.
        #[cfg(debug_assertions)]
        if warm {
            crate::alloc_audit::assert_unchanged("steady-state launch admission");
        }
        let _ = warm;
        if self.pending.len() >= LAUNCH_BUF {
            self.flush_pending();
        }
        // Over-budget admission control (outside the audited no-alloc
        // window — event processing may touch the heap): a best-effort
        // tenant past its inflight budget flushes and drains its *own*
        // stream before another launch is admitted. This is what keeps
        // the device queue shallow for latency-class work — a storm's
        // un-synced backlog is bounded by the budget instead of by the
        // transport, so a priority sync never wades through thousands
        // of queued best-effort commands. Latency tenants are never
        // throttled.
        if !self.qos_is_latency() && self.qos_over_budget() {
            self.flush_pending();
            if let Some(c) = self.client.clone() {
                let b = *c.binding.read();
                self.shared
                    .gpu(b.gpu)
                    .device
                    .lock()
                    .synchronize_stream(b.stream);
                // Everything this tenant admitted has completed: the
                // budget refills.
                c.counters.inflight.store(0, Ordering::Relaxed);
                self.shared
                    .exec_gauges
                    .qos_gated_rounds
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Enqueue every buffered launch under **one** device-lock
    /// acquisition, re-validating the cached binding under that lock.
    /// Errors stick to the tenant (buffering only happens under deferred
    /// acks, where CUDA's asynchronous error model applies).
    pub(crate) fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let n = self.pending.len() as u32;
        let r = match self.client.clone() {
            Some(c) => {
                let r = self.flush_inner(&c);
                if let Err(e) = r {
                    stick(&c, e);
                }
                Ok(())
            }
            None => Ok(()),
        };
        let _: CudaResult<()> = r;
        self.shared.inflight.fetch_sub(n, Ordering::SeqCst);
        self.pending.clear();
        self.staged.clear();
        self.spans.clear();
    }

    fn flush_inner(&mut self, c: &Arc<ClientShared>) -> CudaResult<()> {
        loop {
            Shared::check_alive(c)?;
            let cache = self.cache.as_ref().expect("pending implies cache");
            let (epoch, b) = (cache.epoch, cache.binding);
            let g = &self.shared.gpus[b.gpu as usize];

            // Stage stamp: batch flush start (shared by every launch in
            // the batch).
            let t_flush = if c.telemetry.is_some() {
                telemetry::now_ns()
            } else {
                0
            };

            // (2) Augment every parameter array with the partition
            // bounds, outside the device lock (pure CPU work; Table 5
            // "Augment kernel params", amortized over the batch).
            let t0 = Instant::now();
            self.staged.clear();
            for item in &self.pending {
                self.staged
                    .push(build_params(&self.shared, &self.params, b.partition, item));
            }
            let augment_ns = t0.elapsed().as_nanos() as u64;

            // (3) One lock, whole batch (Table 5 "Launch kernel").
            let t1 = Instant::now();
            let mut dev = g.device.lock();
            if c.epoch.load(Ordering::SeqCst) != epoch {
                // Placement changed after the params were built. The
                // device mutex orders us against the migration/teardown
                // drain, so re-snapshot and re-resolve on the (possibly
                // new) device, then try again.
                drop(dev);
                self.rebuild_cache(c);
                self.re_resolve_pending()?;
                continue;
            }
            let mut first_err: CudaResult<()> = Ok(());
            let mut ok: u64 = 0;
            for (item, params) in self.pending.iter().zip(self.staged.drain(..)) {
                match dev.enqueue(
                    b.stream,
                    Command::Launch {
                        func: item.func.clone(),
                        cfg: item.cfg,
                        params,
                        guard: MemGuard::None,
                    },
                ) {
                    Ok(()) => ok += 1,
                    Err(e) => {
                        if first_err.is_ok() {
                            first_err = Err(e.into());
                        }
                    }
                }
            }
            drop(dev);
            let enqueue_ns = t1.elapsed().as_nanos() as u64;

            if let Some(tel) = &c.telemetry {
                // Stage stamp: device enqueue done. Close the enqueue
                // histogram for every launch in the batch and lay its
                // stage stamps into the flight recorder; the completion
                // edge stays open until the tenant's next sync.
                let t_enq = telemetry::now_ns();
                if self.unsynced_launches == 0 {
                    self.batch_open_ns = self.spans.first().map_or(t_flush, |s| s.t_decode);
                }
                self.unsynced_launches += ok;
                for (i, span) in self.spans.iter().enumerate() {
                    tel.record(OpClass::LaunchEnqueue, t_enq.saturating_sub(span.t_decode));
                    tel.recorder.record(TraceEvent {
                        seq: 0,
                        op: OpClass::LaunchEnqueue as u8,
                        outcome: u8::from(i as u64 >= ok),
                        client: c.id.0,
                        uid: self.uid,
                        stream: b.stream.0,
                        t_decode_ns: span.t_decode,
                        t_admit_ns: span.t_admit,
                        t_flush_ns: t_flush,
                        t_enqueue_ns: t_enq,
                        t_complete_ns: 0,
                    });
                }
            }

            // One atomic round per batch; cache hits make the lookup
            // cost ~0, and the shared ns totals are attributed to the
            // two API levels by launch count.
            let n = self.pending.len() as u64;
            let drv = self.pending.iter().filter(|i| i.driver_level).count() as u64;
            let rt = n - drv;
            self.shared
                .stats
                .record_batch(false, rt, 0, augment_ns * rt / n, enqueue_ns * rt / n);
            self.shared.stats.record_batch(
                true,
                drv,
                0,
                augment_ns * drv / n,
                enqueue_ns * drv / n,
            );
            c.counters.launches.fetch_add(ok, Ordering::Relaxed);
            return first_err;
        }
    }

    /// After a migration invalidated the cache, the buffered handles
    /// still point at the source GPU's modules: resolve each kernel by
    /// name on the new device before retrying the flush.
    fn re_resolve_pending(&mut self) -> CudaResult<()> {
        let cache = self.cache.as_mut().expect("cache rebuilt");
        let g = &self.shared.gpus[cache.binding.gpu as usize];
        cache.kgen = g.kernels_gen.load(Ordering::Acquire);
        cache.funcs.clear();
        let ks = g.kernels.read();
        let native = self.shared.protection == Protection::None;
        for item in &mut self.pending {
            let name = item.func.kernel.name.as_str();
            let f = if native {
                ks.native.get(name)
            } else {
                ks.pointer_to_symbol.get(name)
            };
            match f {
                Some(f) => item.func = f.clone(),
                None => return Err(CudaError::InvalidDeviceFunction(name.to_string())),
            }
        }
        Ok(())
    }
}

/// Record one op-class latency sample against the tenant, if its
/// telemetry is armed. `t0` is the frame's decode stamp.
fn note_op(c: &ClientShared, op: OpClass, t0: u64) {
    if let Some(tel) = &c.telemetry {
        tel.record(op, telemetry::now_ns().saturating_sub(t0));
    }
}

/// Record a deferred-path error against the tenant; it surfaces at the
/// next `Sync` (CUDA's asynchronous error model).
fn stick(c: &ClientShared, e: CudaError) {
    let mut sticky = c.sticky.lock();
    sticky.get_or_insert(e);
}

/// Resolve a kernel in the device's read-mostly registry (the slow path
/// behind the session cache).
fn resolve_func(shared: &Shared, g: &GpuShared, kernel: &str) -> Option<CudaFunction> {
    let ks = g.kernels.read();
    if shared.protection == Protection::None {
        ks.native.get(kernel).cloned()
    } else {
        ks.pointer_to_symbol.get(kernel).cloned()
    }
}

/// Build one launch's augmented parameter array from a pooled buffer.
fn build_params(
    shared: &Shared,
    pool: &Arc<ParamPool>,
    part: Partition,
    item: &LaunchItem,
) -> ParamBuf {
    let mut buf = pool.take();
    let data = buf.data_mut();
    if shared.protection == Protection::None {
        data.extend_from_slice(&item.args);
        return buf;
    }
    let psize = item.func.kernel.param_size;
    data.resize(psize, 0);
    let n = item.args.len().min(psize);
    data[..n].copy_from_slice(&item.args[..n]);
    let nparams = item.func.kernel.params.len();
    debug_assert!(nparams >= 2, "patched kernels carry 2 extra params");
    let (_, _, base_off) = item.func.kernel.params[nparams - 2];
    let (_, _, bound_off) = item.func.kernel.params[nparams - 1];
    let bound = match shared.protection {
        Protection::FenceBitwise => part.mask(),
        Protection::FenceModulo => part.size,
        Protection::Check => part.end(),
        Protection::None => 0,
    };
    data[base_off as usize..base_off as usize + 8].copy_from_slice(&part.base.to_le_bytes());
    data[bound_off as usize..bound_off as usize + 8].copy_from_slice(&bound.to_le_bytes());
    buf
}

/// Spawn the acceptor thread: accepts connections for the listener's
/// lifetime and hands each one to the configured [`SessionDriver`] —
/// a dedicated thread, or a cell in the shared epoll executor pool
/// (event-capable transports only; the in-process channel transport
/// always gets a thread). Exits only after every session has ended
/// (sessions end when their client half drops).
pub(crate) fn spawn_acceptor(
    listener: Box<dyn Listener>,
    shared: Arc<Shared>,
    ctrl: Sender<CtrlMsg>,
    driver: SessionDriver,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("grdAcceptor".into())
        .spawn(move || {
            // The pool is built lazily on the first adopted connection,
            // so channel-transport managers (most tests) never pay for
            // idle epoll workers.
            let pool_workers = match driver {
                SessionDriver::EventPool { workers } => Some(workers),
                _ => None,
            };
            let mut pool: Option<crate::exec::EventPool> = None;
            let mut sessions: Vec<JoinHandle<()>> = Vec::new();
            while let Ok(conn) = listener.accept() {
                // Reap completed sessions as we go: short-lived
                // connections (stats polls, departed tenants) must not
                // accumulate handles for the manager's whole lifetime.
                sessions.retain(|s| !s.is_finished());
                // SO_PEERCRED-style transports report the peer's uid at
                // accept; in-process transports (channel) have no peer —
                // the tenant is us, so fall back to our own uid.
                let uid = conn
                    .peer_uid()
                    .unwrap_or_else(crate::transport::peercred::current_uid);
                let ctx = SessionCtx::new(shared.clone(), ctrl.clone(), uid);
                if let Some(workers) = pool_workers {
                    if conn.enter_event_mode() {
                        pool.get_or_insert_with(|| {
                            crate::exec::EventPool::new(workers, shared.exec_gauges.clone())
                        })
                        .adopt(conn, ctx);
                        continue;
                    }
                }
                let session = std::thread::Builder::new()
                    .name("grdSession".into())
                    .spawn(move || run_session(conn, ctx))
                    .expect("spawn grdSession thread");
                sessions.push(session);
            }
            drop(ctrl);
            for s in sessions {
                let _ = s.join();
            }
            if let Some(pool) = pool {
                pool.shutdown();
            }
        })
        .expect("spawn grdAcceptor thread")
}

/// One tenant's server loop: decode → dispatch → reply, until the client
/// half of the connection drops.
pub(crate) fn run_session(conn: Box<dyn Connection>, mut ctx: SessionCtx) {
    while let Ok(frame) = conn.recv() {
        ctx.note_frames(1);
        let frame = FrameView::from(frame);
        let step = ctx.handle_frame(&frame);
        // The blocking transport has no "more input queued" signal, so
        // a thread-per-session server flushes after every frame — the
        // batching win comes from the event-driven executor's drains.
        ctx.flush_pending();
        match step {
            Step::Reply(r) => {
                if conn.send(r).is_err() {
                    break;
                }
            }
            Step::None => {}
            Step::ReplyThenClose(r) => {
                let _ = conn.send(r);
                break;
            }
        }
    }
    ctx.finish();
}

/// Resolve the session's tenant, or reply with the error for calls that
/// require a completed `Connect`.
macro_rules! require {
    ($client:expr) => {
        match $client.as_ref() {
            Some(c) => c.clone(),
            None => return Some(Response::Error(CudaError::InvalidValue)),
        }
    };
}

/// Dispatch one request. `None` means the request is one-way (no frame
/// goes back): `Disconnect` always, and `Launch` under deferred acks.
/// Takes the request by value so bulk payloads (H2D data, fatbins, PTX
/// text) move to their destination instead of being cloned on the hot
/// path.
fn dispatch(req: Request, ctx: &mut SessionCtx) -> Option<Response> {
    // Any non-Launch request is an ordering point: buffered launches
    // must reach the device before e.g. a Sync or D2H copy observes it.
    if !ctx.pending.is_empty() && !matches!(req, Request::Launch { .. }) {
        ctx.flush_pending();
    }
    let shared = ctx.shared.clone();
    let ctrl = ctx.ctrl.clone();
    let uid = ctx.uid;
    let client = &mut ctx.client;
    let shared = &shared;
    let ctrl = &ctrl;
    match req {
        // ---- control plane: forwarded to the serialized manager -------
        Request::Connect {
            mem_requirement,
            hint,
            qos,
        } => {
            // One connection is one tenant: a second Connect on a live
            // session would orphan the first tenant's partition (the
            // session cleanup only disconnects the client it tracks), so
            // a hostile peer could drain the pool. Reject it.
            if client.is_some() {
                return Some(Response::Error(CudaError::InvalidValue));
            }
            let t0 = telemetry::now_ns();
            let r = ctrl_call(
                ctrl,
                CtrlOp::Connect {
                    mem_requirement,
                    hint,
                    uid,
                    qos_request: qos,
                },
            );
            Some(match r {
                Ok(CtrlOut::Connected(info)) => {
                    *client = shared.clients.read().get(&info.id).cloned();
                    // Connect/admission latency: the control-thread
                    // round-trip that granted the tenancy.
                    if let Some(c) = client.as_ref() {
                        note_op(c, OpClass::Connect, t0);
                    }
                    Response::Connected(connect_info(shared, &info))
                }
                Ok(_) => Response::Error(CudaError::InvalidValue),
                Err(e) => Response::Error(e),
            })
        }
        Request::Migrate { device } => {
            let c = require!(client);
            Some(
                match ctrl_call(
                    ctrl,
                    CtrlOp::Migrate {
                        client: c.id,
                        dst_gpu: device,
                    },
                ) {
                    Ok(CtrlOut::Connected(info)) => {
                        Response::Connected(connect_info(shared, &info))
                    }
                    Ok(_) => Response::Error(CudaError::InvalidValue),
                    Err(e) => Response::Error(e),
                },
            )
        }
        Request::DeviceInfo => Some(match ctrl_call(ctrl, CtrlOp::DeviceInfo) {
            Ok(CtrlOut::Devices(devs)) => Response::Devices(devs),
            Ok(_) => Response::Error(CudaError::InvalidValue),
            Err(e) => Response::Error(e),
        }),
        Request::Binding => {
            let c = require!(client);
            let b = *c.binding.read();
            let clock_ghz = shared.gpu(b.gpu).device.lock().spec().clock_ghz;
            Some(Response::Connected(ConnectInfo {
                client: c.id.0,
                clock_ghz,
                partition_base: b.partition.base,
                partition_size: b.partition.size,
                deferred_launch: shared.launch_ack == LaunchAck::Deferred,
                device: b.gpu,
                lease_mem: c.lease_mem,
                lease_ttl_ms: c.lease_ttl_ms,
                qos: c.qos.load(Ordering::Relaxed),
            }))
        }
        Request::Disconnect => {
            if let Some(c) = client.take() {
                let _ = ctrl_call(ctrl, CtrlOp::Disconnect { client: c.id });
            }
            None
        }
        Request::RegisterFatbin { bytes } => {
            let c = require!(client);
            Some(unit_reply(ctrl_call(
                ctrl,
                CtrlOp::RegisterFatbin {
                    client: c.id,
                    bytes: bytes.into_vec(),
                },
            )))
        }
        Request::RegisterPtx { name, text } => {
            let c = require!(client);
            Some(unit_reply(ctrl_call(
                ctrl,
                CtrlOp::RegisterPtx {
                    client: c.id,
                    name,
                    text,
                },
            )))
        }
        Request::Malloc { bytes } => {
            let c = require!(client);
            Some(
                match ctrl_call(
                    ctrl,
                    CtrlOp::Malloc {
                        client: c.id,
                        bytes,
                    },
                ) {
                    Ok(CtrlOut::Ptr(p)) => Response::Ptr(p),
                    Ok(_) => Response::Error(CudaError::InvalidValue),
                    Err(e) => Response::Error(e),
                },
            )
        }
        Request::Free { ptr } => {
            let c = require!(client);
            Some(unit_reply(ctrl_call(
                ctrl,
                CtrlOp::Free { client: c.id, ptr },
            )))
        }

        // ---- data plane: executed here, concurrently across tenants ---
        Request::Memset { dst, byte, len } => {
            let c = require!(client);
            let r = with_dispatch(shared, || memset(shared, &c, dst, byte, len));
            note_op(&c, OpClass::Memcpy, ctx.t_decode);
            Some(result_reply(r))
        }
        Request::MemcpyH2D { dst, data } => {
            let c = require!(client);
            let r = with_dispatch(shared, || memcpy_h2d(shared, &c, dst, data));
            note_op(&c, OpClass::Memcpy, ctx.t_decode);
            Some(result_reply(r))
        }
        Request::MemcpyH2DAsync { dst, data } => {
            // One-way by definition (not by ack mode): replying — even
            // with an error, even with no tenant — would desynchronize
            // the peer's request/response stream. Failures stick to the
            // tenant and surface at its next Sync, like a deferred
            // launch's.
            let c = client.as_ref().cloned()?;
            if let Err(e) = with_dispatch(shared, || memcpy_h2d(shared, &c, dst, data)) {
                let mut sticky = c.sticky.lock();
                sticky.get_or_insert(e);
            }
            note_op(&c, OpClass::Memcpy, ctx.t_decode);
            None
        }
        Request::MemcpyD2H { src, len } => {
            let c = require!(client);
            let r = with_dispatch(shared, || memcpy_d2h(shared, &c, src, len));
            note_op(&c, OpClass::Memcpy, ctx.t_decode);
            Some(match r {
                Ok(data) => Response::Data(data),
                Err(e) => Response::Error(e),
            })
        }
        Request::MemcpyD2D { dst, src, len } => {
            let c = require!(client);
            let r = with_dispatch(shared, || memcpy_d2d(shared, &c, dst, src, len));
            note_op(&c, OpClass::Memcpy, ctx.t_decode);
            Some(result_reply(r))
        }
        Request::Launch {
            kernel,
            cfg,
            args,
            driver_level,
        } => {
            let Some(c) = client.as_ref().cloned() else {
                // Launch is one-way under deferred acks even with no
                // tenancy: replying would desynchronize the peer's
                // request/response stream (its next round-trip call
                // would read this frame as its own reply).
                return match shared.launch_ack {
                    LaunchAck::Eager => Some(Response::Error(CudaError::InvalidValue)),
                    LaunchAck::Deferred => None,
                };
            };
            if ctx.buffering {
                // Hot path: admit into the session-local batch without
                // touching the binding lock, kernel registry, or device.
                ctx.buffer_launch(&c, kernel, cfg, args, driver_level);
                return None;
            }
            let r = with_dispatch(shared, || {
                launch(shared, &c, &kernel, cfg, &args, driver_level)
            });
            note_op(&c, OpClass::LaunchEnqueue, ctx.t_decode);
            match shared.launch_ack {
                LaunchAck::Eager => Some(result_reply(r)),
                LaunchAck::Deferred => {
                    // True async enqueue: no frame goes back. Errors stick
                    // to the client and surface at the next Sync, matching
                    // CUDA's asynchronous error model.
                    if let Err(e) = r {
                        let mut sticky = c.sticky.lock();
                        sticky.get_or_insert(e);
                    }
                    None
                }
            }
        }
        Request::Sync => {
            let c = require!(client);
            let r = with_dispatch(shared, || sync(shared, &c));
            if let Some(tel) = &c.telemetry {
                let t0 = ctx.t_decode;
                let now = telemetry::now_ns();
                tel.record(OpClass::Sync, now.saturating_sub(t0));
                let mut t_complete = now;
                if ctx.unsynced_launches > 0 {
                    // Close the launch-to-device-complete edge: the
                    // device engine wall-stamped the last command it
                    // finished on this tenant's stream, and the sync
                    // just guaranteed that stamp covers every launch
                    // admitted since the edge opened.
                    let b = *c.binding.read();
                    let done = shared
                        .gpu(b.gpu)
                        .device
                        .lock()
                        .stream_last_done_wall_ns(b.stream);
                    let done = if done == 0 { now } else { done };
                    tel.hist(OpClass::LaunchComplete).record_n(
                        done.saturating_sub(ctx.batch_open_ns),
                        ctx.unsynced_launches,
                    );
                    ctx.unsynced_launches = 0;
                    ctx.batch_open_ns = 0;
                    t_complete = done;
                }
                tel.recorder.record(TraceEvent {
                    seq: 0,
                    op: OpClass::Sync as u8,
                    outcome: u8::from(r.is_err()),
                    client: c.id.0,
                    uid: ctx.uid,
                    stream: c.stream_tag.load(Ordering::Relaxed),
                    t_decode_ns: t0,
                    t_admit_ns: t0,
                    t_flush_ns: 0,
                    t_enqueue_ns: 0,
                    t_complete_ns: t_complete,
                });
            }
            Some(result_reply(r))
        }
        Request::EventCreate => {
            let c = require!(client);
            Some(match with_dispatch(shared, || event_create(&c)) {
                Ok(id) => Response::EventId(id),
                Err(e) => Response::Error(e),
            })
        }
        Request::EventRecord { event } => {
            let c = require!(client);
            Some(result_reply(with_dispatch(shared, || {
                event_record(shared, &c, event)
            })))
        }
        Request::EventElapsed { start, end } => {
            let c = require!(client);
            Some(
                match with_dispatch(shared, || event_elapsed(shared, &c, start, end)) {
                    Ok(ms) => Response::ElapsedMs(ms),
                    Err(e) => Response::Error(e),
                },
            )
        }

        // ---- connection-scoped queries (no tenancy required) ----------
        Request::DeviceNow => {
            // Each device has an independent virtual clock: a bound
            // tenant gets *its* GPU's time (anything else makes its
            // cycle deltas meaningless); tenancy-less probes read GPU 0.
            let gpu = client.as_ref().map(|c| c.binding.read().gpu).unwrap_or(0);
            Some(Response::Cycles(shared.gpu(gpu).device.lock().now()))
        }
        Request::Stats => Some(Response::Stats(StatsSnapshot {
            launch: shared.stats.snapshot(),
            max_concurrent_data_ops: shared.max_inflight.load(Ordering::SeqCst),
        })),
    }
}

fn connect_info(shared: &Shared, info: &crate::manager::ClientInfo) -> ConnectInfo {
    ConnectInfo {
        client: info.id.0,
        clock_ghz: info.clock_ghz,
        partition_base: info.partition_base,
        partition_size: info.partition_size,
        deferred_launch: shared.launch_ack == LaunchAck::Deferred,
        device: info.device,
        lease_mem: info.lease_mem,
        lease_ttl_ms: info.lease_ttl_ms,
        qos: info.qos,
    }
}

fn unit_reply(r: CudaResult<CtrlOut>) -> Response {
    match r {
        Ok(_) => Response::Unit,
        Err(e) => Response::Error(e),
    }
}

fn result_reply(r: CudaResult<()>) -> Response {
    match r {
        Ok(()) => Response::Unit,
        Err(e) => Response::Error(e),
    }
}

/// Run a data-plane op under the configured dispatch mode, tracking the
/// concurrency high-water mark. Under [`DispatchMode::Serial`] the global
/// gate reproduces the old single-threaded dispatch core (the baseline
/// the `dispatch_throughput` bench compares against).
fn with_dispatch<R>(shared: &Shared, f: impl FnOnce() -> R) -> R {
    let _gate = match shared.dispatch {
        DispatchMode::Serial => Some(shared.serial_gate.lock()),
        DispatchMode::Concurrent => None,
    };
    let now = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    shared.max_inflight.fetch_max(now, Ordering::SeqCst);
    let r = f();
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    r
}

// ---- data-plane operations -------------------------------------------------
//
// Every operation reads the client's binding once, up front, and holds
// the read guard for its whole duration: the op executes entirely against
// one (gpu, stream, partition) triple, and a concurrent migration — which
// needs the write lock — waits for it to finish (and vice versa).

/// Verify every `(addr, len)` range lies in the caller's partition
/// (§4.2.2 — the host-transfer bounds table).
fn transfer_checked(
    client: &ClientShared,
    part: Partition,
    ranges: &[(u64, u64)],
) -> CudaResult<()> {
    Shared::check_alive(client)?;
    for &(addr, len) in ranges {
        if !part.contains_range(addr, len) {
            return Err(CudaError::Rejected(format!(
                "transfer [{addr:#x}, +{len}) outside partition [{:#x}, +{})",
                part.base, part.size
            )));
        }
    }
    Ok(())
}

fn enqueue_and_sync(shared: &Shared, b: &Binding, cmd: Command) -> CudaResult<()> {
    {
        let g = shared.gpu(b.gpu);
        let mut dev = g.device.lock();
        dev.enqueue(b.stream, cmd)?;
        dev.synchronize();
    }
    shared.reap_faults(b.gpu);
    Ok(())
}

fn memset(shared: &Shared, c: &ClientShared, dst: u64, byte: u8, len: u64) -> CudaResult<()> {
    let b = c.binding.read();
    transfer_checked(c, b.partition, &[(dst, len)])?;
    c.counters.note_transfer(len);
    enqueue_and_sync(shared, &b, Command::Memset { dst, byte, len })
}

fn memcpy_h2d(shared: &Shared, c: &ClientShared, dst: u64, data: Payload) -> CudaResult<()> {
    let b = c.binding.read();
    transfer_checked(c, b.partition, &[(dst, data.len() as u64)])?;
    c.counters.note_transfer(data.len() as u64);
    enqueue_and_sync(
        shared,
        &b,
        Command::MemcpyH2D {
            dst,
            data: data.into_vec(),
        },
    )
}

fn memcpy_d2h(shared: &Shared, c: &ClientShared, src: u64, len: u64) -> CudaResult<Vec<u8>> {
    let b = c.binding.read();
    transfer_checked(c, b.partition, &[(src, len)])?;
    c.counters.note_transfer(len);
    let sink = HostSink::new();
    enqueue_and_sync(
        shared,
        &b,
        Command::MemcpyD2H {
            src,
            len,
            sink: sink.clone(),
        },
    )?;
    Ok(sink.take())
}

fn memcpy_d2d(shared: &Shared, c: &ClientShared, dst: u64, src: u64, len: u64) -> CudaResult<()> {
    let b = c.binding.read();
    transfer_checked(c, b.partition, &[(dst, len), (src, len)])?;
    c.counters.note_transfer(len);
    enqueue_and_sync(shared, &b, Command::MemcpyD2D { dst, src, len })
}

/// The interception path of §4.2.3: `pointerToSymbol` lookup, parameter
/// augmentation with the caller's bounds, enqueue on the caller's stream.
/// Each step is timed into the per-path Table 5 statistics.
fn launch(
    shared: &Shared,
    c: &ClientShared,
    kernel: &str,
    cfg: LaunchConfig,
    args: &[u8],
    driver_level: bool,
) -> CudaResult<()> {
    Shared::check_alive(c)?;
    let b = c.binding.read();
    let g = shared.gpu(b.gpu);
    let use_native = shared.protection == Protection::None
        || (shared.native_when_standalone && shared.clients.read().len() == 1);

    // (1) pointerToSymbol lookup in the bound GPU's registry (timed;
    // Table 5 "Lookup GPU kernel").
    let t0 = Instant::now();
    let func = {
        let kernels = g.kernels.read();
        if use_native {
            kernels.native.get(kernel).cloned()
        } else {
            kernels.pointer_to_symbol.get(kernel).cloned()
        }
    }
    .ok_or_else(|| CudaError::InvalidDeviceFunction(kernel.to_string()))?;
    let lookup_ns = t0.elapsed().as_nanos() as u64;

    // (2) Augment the parameter array with the partition bounds
    // (timed; Table 5 "Augment kernel params").
    let t1 = Instant::now();
    let part = b.partition;
    let params = if use_native {
        args.to_vec()
    } else {
        let mut buf = vec![0u8; func.kernel.param_size];
        let n = args.len().min(buf.len());
        buf[..n].copy_from_slice(&args[..n]);
        let nparams = func.kernel.params.len();
        debug_assert!(nparams >= 2, "patched kernels carry 2 extra params");
        let (_, _, base_off) = func.kernel.params[nparams - 2];
        let (_, _, bound_off) = func.kernel.params[nparams - 1];
        let bound = match shared.protection {
            Protection::FenceBitwise => part.mask(),
            Protection::FenceModulo => part.size,
            Protection::Check => part.end(),
            Protection::None => 0,
        };
        buf[base_off as usize..base_off as usize + 8].copy_from_slice(&part.base.to_le_bytes());
        buf[bound_off as usize..bound_off as usize + 8].copy_from_slice(&bound.to_le_bytes());
        buf
    };
    let augment_ns = t1.elapsed().as_nanos() as u64;

    // (3) Issue on the tenant's stream (Table 5 "Launch kernel").
    let t2 = Instant::now();
    let r = g.device.lock().enqueue(
        b.stream,
        Command::Launch {
            func,
            cfg,
            params: params.into(),
            guard: MemGuard::None,
        },
    );
    let enqueue_ns = t2.elapsed().as_nanos() as u64;

    shared
        .stats
        .record(driver_level, lookup_ns, augment_ns, enqueue_ns);
    if r.is_ok() {
        c.counters.launches.fetch_add(1, Ordering::Relaxed);
        c.counters.inflight.fetch_add(1, Ordering::Relaxed);
        // Same over-budget admission control as the buffered path: a
        // best-effort tenant past its inflight budget drains its own
        // stream before the next launch, keeping the device queue
        // shallow for latency-class work.
        if c.qos.load(Ordering::Relaxed) != QosClass::Latency.to_wire()
            && c.counters.inflight.load(Ordering::Relaxed) >= shared.qos_inflight_budget
        {
            shared.gpu(b.gpu).device.lock().synchronize_stream(b.stream);
            c.counters.inflight.store(0, Ordering::Relaxed);
            shared
                .exec_gauges
                .qos_gated_rounds
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    r.map_err(CudaError::from)
}

fn sync(shared: &Shared, c: &ClientShared) -> CudaResult<()> {
    Shared::check_alive(c)?;
    let b = c.binding.read();
    // Latency tenants wait only on their own stream: with the priority ready
    // lane and kernel-slice preemption their work finishes promptly, and a
    // sync must not be held hostage draining other tenants' backlog.
    // Best-effort tenants keep the device-wide drain.
    if c.qos.load(Ordering::Relaxed) == QosClass::Latency.to_wire() {
        shared.gpu(b.gpu).device.lock().synchronize_stream(b.stream);
    } else {
        shared.gpu(b.gpu).device.lock().synchronize();
    }
    // Everything admitted up to here has completed: the tenant's
    // inflight-launch budget refills.
    c.counters.inflight.store(0, Ordering::Relaxed);
    shared.reap_faults(b.gpu);
    if let Some(e) = c.sticky.lock().take() {
        return Err(e);
    }
    Shared::check_alive(c)
}

fn event_create(c: &ClientShared) -> CudaResult<u32> {
    Shared::check_alive(c)?;
    let mut table = c.events.lock();
    let id = table.next;
    table.next += 1;
    table.events.insert(id, Event::new());
    Ok(id)
}

fn event_record(shared: &Shared, c: &ClientShared, event: u32) -> CudaResult<()> {
    Shared::check_alive(c)?;
    let b = c.binding.read();
    let ev = c
        .events
        .lock()
        .events
        .get(&event)
        .cloned()
        .ok_or(CudaError::InvalidValue)?;
    shared
        .gpu(b.gpu)
        .device
        .lock()
        .enqueue(b.stream, Command::EventRecord { event: ev })
        .map_err(CudaError::from)
}

fn event_elapsed(shared: &Shared, c: &ClientShared, start: u32, end: u32) -> CudaResult<f32> {
    Shared::check_alive(c)?;
    let bind = c.binding.read();
    let (a, b) = {
        let table = c.events.lock();
        let a = table
            .events
            .get(&start)
            .and_then(Event::cycles)
            .ok_or(CudaError::InvalidValue)?;
        let b = table
            .events
            .get(&end)
            .and_then(Event::cycles)
            .ok_or(CudaError::InvalidValue)?;
        (a, b)
    };
    let ghz = shared.gpu(bind.gpu).device.lock().spec().clock_ghz;
    Ok(((b.saturating_sub(a)) as f64 / (ghz * 1e6)) as f32)
}

#[cfg(test)]
mod tests {
    //! Raw-protocol sessions: behaviours only reachable by a peer that
    //! speaks frames directly (the in-tree `GrdLib` always connects
    //! exactly once, first), which is exactly what a socket transport
    //! would expose.

    use crate::manager::{spawn_manager, LaunchAck, ManagerConfig};
    use crate::proto::{Request, Response};
    use crate::GrdLib;
    use cuda_rt::{share_device, ArgPack, CudaApi, CudaError};
    use gpu_sim::spec::test_gpu;
    use gpu_sim::{Device, LaunchConfig};
    use ptx::fatbin::FatBin;

    fn mgr(pool: u64, ack: LaunchAck) -> crate::ManagerHandle {
        spawn_manager(
            share_device(Device::new(test_gpu())),
            ManagerConfig {
                pool_bytes: Some(pool),
                launch_ack: ack,
                ..ManagerConfig::default()
            },
            &[],
        )
        .unwrap()
    }

    /// A departing tenant's unsynchronized launches must be drained at
    /// disconnect, *before* its partition returns to the pool — else the
    /// stale commands would execute later, into whichever tenant the
    /// partition is reallocated to.
    #[test]
    fn disconnect_drains_pending_launches_before_partition_reuse() {
        let mut fb = FatBin::new();
        fb.push_ptx("app", crate::fixtures::FILL);
        let fb = fb.to_bytes().to_vec();
        // Pool holds exactly one partition, so B provably reuses A's.
        let mgr = spawn_manager(
            share_device(Device::new(test_gpu())),
            ManagerConfig {
                pool_bytes: Some(4 << 20),
                ..ManagerConfig::default()
            },
            &[&fb],
        )
        .unwrap();
        let (a_base, a_buf) = {
            let mut a = GrdLib::connect(&mgr, 4 << 20).unwrap();
            let buf = a.cuda_malloc(4 * 64).unwrap();
            let args = ArgPack::new().ptr(buf).u32(64).finish();
            a.cuda_launch_kernel(
                "fill",
                LaunchConfig::linear(2, 32),
                &args,
                Default::default(),
            )
            .unwrap();
            // No sync: the launch is still queued when A drops here.
            (a.partition().0, buf)
        };
        // B can only connect once A's partition is back in the pool.
        let mut b = None;
        for _ in 0..100 {
            if let Ok(lib) = GrdLib::connect(&mgr, 4 << 20) {
                b = Some(lib);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut b = b.expect("partition not reclaimed");
        assert_eq!(b.partition().0, a_base, "expected partition reuse");
        let buf = b.cuda_malloc(4 * 64).unwrap();
        assert_eq!(buf, a_buf, "expected allocation reuse");
        b.cuda_memcpy_h2d(buf, &[0u8; 4 * 64]).unwrap();
        b.cuda_device_synchronize().unwrap();
        let out = b.cuda_memcpy_d2h(buf, 4 * 64).unwrap();
        assert_eq!(
            out,
            vec![0u8; 4 * 64],
            "A's stale launch executed into B's partition"
        );
        drop(b);
        mgr.shutdown();
    }

    /// A second `Connect` on a live session is rejected instead of
    /// silently replacing the tracked tenant — otherwise the first
    /// tenant's partition would leak and a hostile peer could drain the
    /// pool one orphan at a time.
    #[test]
    fn double_connect_is_rejected_and_leaks_nothing() {
        let mgr = mgr(8 << 20, LaunchAck::Eager);
        let conn = mgr.dial().unwrap();
        conn.send(
            Request::Connect {
                mem_requirement: 4 << 20,
                hint: None,
                qos: 0,
            }
            .encode(),
        )
        .unwrap();
        let first = Response::decode(&conn.recv().unwrap()).unwrap();
        assert!(matches!(first, Response::Connected(_)), "{first:?}");
        conn.send(
            Request::Connect {
                mem_requirement: 4 << 20,
                hint: None,
                qos: 0,
            }
            .encode(),
        )
        .unwrap();
        let second = Response::decode(&conn.recv().unwrap()).unwrap();
        assert!(
            matches!(second, Response::Error(CudaError::InvalidValue)),
            "{second:?}"
        );
        // Dropping the connection disconnects the one real tenant; the
        // whole pool must come back (a leaked orphan would pin 4 MiB).
        drop(conn);
        let mut reclaimed = false;
        for _ in 0..100 {
            if GrdLib::connect(&mgr, 8 << 20).is_ok() {
                reclaimed = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(reclaimed, "partition leaked by rejected double connect");
        mgr.shutdown();
    }

    /// Under deferred acks, `Launch` must be one-way even when the
    /// session has no tenant: an error frame here would be read by the
    /// peer as the reply to its *next* round-trip call, desynchronizing
    /// the stream permanently.
    #[test]
    fn deferred_launch_without_tenancy_sends_no_frame() {
        let mgr = mgr(4 << 20, LaunchAck::Deferred);
        let conn = mgr.dial().unwrap();
        conn.send(
            Request::Launch {
                kernel: "nope".into(),
                cfg: LaunchConfig::linear(1, 1),
                args: vec![].into(),
                driver_level: false,
            }
            .encode(),
        )
        .unwrap();
        // The next round-trip call must receive *its own* reply, not a
        // stale launch error.
        conn.send(Request::DeviceNow.encode()).unwrap();
        let resp = Response::decode(&conn.recv().unwrap()).unwrap();
        assert!(matches!(resp, Response::Cycles(_)), "{resp:?}");
        // Eager mode keeps the synchronous error for the same probe.
        drop(conn);
        mgr.shutdown();
        let mgr = self::mgr(4 << 20, LaunchAck::Eager);
        let conn = mgr.dial().unwrap();
        conn.send(
            Request::Launch {
                kernel: "nope".into(),
                cfg: LaunchConfig::linear(1, 1),
                args: vec![].into(),
                driver_level: false,
            }
            .encode(),
        )
        .unwrap();
        let resp = Response::decode(&conn.recv().unwrap()).unwrap();
        assert!(
            matches!(resp, Response::Error(CudaError::InvalidValue)),
            "{resp:?}"
        );
        drop(conn);
        mgr.shutdown();
    }

    /// Hostile length fields — `dst`/`len` chosen so `dst + len` wraps
    /// past `u64::MAX` — must come back `Rejected`, not panic the session
    /// or wrap into another tenant's partition. Raw frames, because the
    /// in-tree stub never emits these.
    #[test]
    fn hostile_transfer_lengths_are_rejected_not_wrapped() {
        let mgr = mgr(8 << 20, LaunchAck::Eager);
        let conn = mgr.dial().unwrap();
        conn.send(
            Request::Connect {
                mem_requirement: 4 << 20,
                hint: None,
                qos: 0,
            }
            .encode(),
        )
        .unwrap();
        let Response::Connected(info) = Response::decode(&conn.recv().unwrap()).unwrap() else {
            panic!("connect failed");
        };
        let base = info.partition_base;
        let rejected = |resp: Response| {
            assert!(
                matches!(resp, Response::Error(CudaError::Rejected(_))),
                "{resp:?}"
            );
        };
        // In-partition start address, wrapping length.
        for req in [
            Request::Memset {
                dst: base,
                byte: 0xA5,
                len: u64::MAX,
            },
            Request::Memset {
                dst: base + 1,
                byte: 0,
                len: u64::MAX - base,
            },
            Request::MemcpyD2H {
                src: base,
                len: u64::MAX - 7,
            },
            Request::MemcpyD2D {
                dst: base,
                src: base,
                len: u64::MAX,
            },
            // Start address itself near the top of the address space.
            Request::Memset {
                dst: u64::MAX - 4,
                byte: 0,
                len: 64,
            },
            Request::MemcpyH2D {
                dst: u64::MAX,
                data: vec![0u8; 16].into(),
            },
        ] {
            conn.send(req.encode()).unwrap();
            rejected(Response::decode(&conn.recv().unwrap()).unwrap());
        }
        // The one-way async H2D path must not wrap either: the error is
        // sticky and surfaces at the next Sync instead of replying.
        conn.send(
            Request::MemcpyH2DAsync {
                dst: u64::MAX - 3,
                data: vec![0u8; 16].into(),
            }
            .encode(),
        )
        .unwrap();
        conn.send(Request::Sync.encode()).unwrap();
        rejected(Response::decode(&conn.recv().unwrap()).unwrap());
        // The session survived all of it: a well-formed op still works.
        conn.send(
            Request::Memset {
                dst: base,
                byte: 0,
                len: 64,
            }
            .encode(),
        )
        .unwrap();
        let resp = Response::decode(&conn.recv().unwrap()).unwrap();
        assert!(matches!(resp, Response::Unit), "{resp:?}");
        drop(conn);
        mgr.shutdown();
    }
}
