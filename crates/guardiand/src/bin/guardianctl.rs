//! `guardianctl`: operator CLI for a live `guardiand`.
//!
//! Speaks the v3 admin message family over the daemon's
//! `--admin-socket` uds endpoint (same-uid only). One request, one
//! response, exit:
//!
//! ```text
//! guardianctl --socket /run/guardian.admin devices
//! guardianctl --socket /run/guardian.admin tenants
//! guardianctl --socket /run/guardian.admin lease set 1000 mem=16M,streams=4,ttl=30s
//! guardianctl --socket /run/guardian.admin lease revoke 3
//! guardianctl --socket /run/guardian.admin quota [UID]
//! guardianctl --socket /run/guardian.admin metrics
//! guardianctl --socket /run/guardian.admin trace [--tenant UID] [--chrome out.json]
//! ```
//!
//! Tables print human-readable; `metrics` prints the raw Prometheus
//! text exposition (pipe it straight to a scrape file). `trace` dumps
//! the live flight recorders as a stage-latency table, and with
//! `--chrome` also writes a chrome://tracing / Perfetto JSON file with
//! one track per tenant uid. Exit status: 0 on success, 1 when the
//! daemon reports an error or cannot be reached, 2 on bad usage.

use guardian::proto::{AdminRequest, AdminResponse};
use guardian::telemetry::{OpClass, TraceEvent};
use guardian::transport::uds::UdsDialer;
use guardian::transport::Dialer;
use guardian::LeaseSpec;

const USAGE: &str = "usage: guardianctl --socket PATH \
    <devices | tenants | lease set UID SPEC | lease revoke CLIENT | quota [UID] | metrics \
    | trace [--tenant UID] [--chrome FILE]>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (socket, req, chrome) = match parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("guardianctl: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let conn = match UdsDialer::new(&socket).dial() {
        Ok(c) => c,
        Err(e) => fail(&format!("cannot dial {socket}: {e}")),
    };
    if let Err(e) = conn.send(req.encode()) {
        fail(&format!("send failed: {e}"));
    }
    let frame = match conn.recv() {
        Ok(f) => f,
        Err(e) => fail(&format!("no response: {e}")),
    };
    let resp = match AdminResponse::decode(&frame) {
        Ok(r) => r,
        Err(e) => fail(&format!("bad response frame: {e:?}")),
    };
    render(resp, chrome.as_deref());
}

/// Split the command line into the socket path, the admin request, and
/// the optional `--chrome` output path.
fn parse(args: &[String]) -> Result<(String, AdminRequest, Option<String>), String> {
    let mut socket = None;
    let mut words = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--socket needs a value".to_string())?,
                );
            }
            w => words.push(w.to_string()),
        }
    }
    let socket = socket.ok_or("--socket is required")?;
    let words: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
    let mut chrome = None;
    let req = match words.as_slice() {
        ["devices"] => AdminRequest::Devices,
        ["tenants"] => AdminRequest::Tenants,
        ["lease", "set", uid, spec] => {
            let uid: u32 = uid.parse().map_err(|e| format!("lease set UID: {e}"))?;
            let lease = LeaseSpec::parse(spec).map_err(|e| format!("lease set SPEC: {e}"))?;
            AdminRequest::LeaseSet {
                uid,
                mem_bytes: lease.mem_bytes,
                streams: lease.streams,
                ttl_ms: lease.ttl_ms(),
                qos: lease.qos.to_wire(),
            }
        }
        ["lease", "revoke", client] => AdminRequest::LeaseRevoke {
            client: client
                .parse()
                .map_err(|e| format!("lease revoke CLIENT: {e}"))?,
        },
        ["quota"] => AdminRequest::Quota { uid: None },
        ["quota", uid] => AdminRequest::Quota {
            uid: Some(uid.parse().map_err(|e| format!("quota UID: {e}"))?),
        },
        ["metrics"] => AdminRequest::Metrics,
        ["trace", rest @ ..] => {
            let (uid, c) = parse_trace(rest)?;
            chrome = c;
            AdminRequest::Trace { uid }
        }
        [] => return Err("a command is required".into()),
        other => return Err(format!("unknown command `{}`", other.join(" "))),
    };
    Ok((socket, req, chrome))
}

/// Parse `trace`'s flags: `--tenant UID` filters server-side, `--chrome
/// FILE` additionally writes a chrome://tracing JSON dump.
fn parse_trace(rest: &[&str]) -> Result<(Option<u32>, Option<String>), String> {
    let mut uid = None;
    let mut chrome = None;
    let mut it = rest.iter();
    while let Some(w) = it.next() {
        match *w {
            "--tenant" => {
                let v = it.next().ok_or("--tenant needs a value")?;
                uid = Some(v.parse().map_err(|e| format!("trace --tenant UID: {e}"))?);
            }
            "--chrome" => {
                chrome = Some(it.next().ok_or("--chrome needs a value")?.to_string());
            }
            other => return Err(format!("unknown trace flag `{other}`")),
        }
    }
    Ok((uid, chrome))
}

fn render(resp: AdminResponse, chrome: Option<&str>) {
    match resp {
        AdminResponse::Devices { node, devices } => {
            println!("node {node}: {} device(s)", devices.len());
            println!(
                "{:>3}  {:<18} {:>9} {:>10} {:>10} {:>7}",
                "idx", "name", "clock", "pool", "used", "tenants"
            );
            for d in devices {
                println!(
                    "{:>3}  {:<18} {:>6.2}GHz {:>10} {:>10} {:>7}",
                    d.index,
                    d.name,
                    d.clock_ghz,
                    fmt_bytes(d.pool_bytes),
                    fmt_bytes(d.used_bytes),
                    d.tenants
                );
            }
        }
        AdminResponse::Tenants { node, tenants } => {
            println!("node {node}: {} tenant(s)", tenants.len());
            println!(
                "{:>6} {:>6} {:>4} {:>10} {:>10} {:>10} {:>9} {:>8} {:>9} {:>9} {:>8} {:>10}",
                "client",
                "uid",
                "dev",
                "qos",
                "partition",
                "lease",
                "ttl",
                "age",
                "held",
                "launches",
                "inflight",
                "xfer"
            );
            for t in tenants {
                println!(
                    "{:>6} {:>6} {:>4} {:>10} {:>10} {:>10} {:>9} {:>7}s {:>9} {:>9} {:>8} {:>10}",
                    t.client,
                    t.uid,
                    t.device,
                    guardian::QosClass::from_wire(t.qos),
                    fmt_bytes(t.partition_size),
                    if t.lease_mem == u64::MAX {
                        "none".to_string()
                    } else {
                        fmt_bytes(t.lease_mem)
                    },
                    if t.lease_ttl_ms == 0 {
                        "none".to_string()
                    } else {
                        format!("{}ms", t.lease_ttl_ms)
                    },
                    t.age_ms / 1000,
                    fmt_bytes(t.bytes_held),
                    t.launches,
                    t.inflight,
                    fmt_bytes(t.transfer_bytes)
                );
            }
        }
        AdminResponse::Quota { node, entries } => {
            println!("node {node}: {} usage row(s)", entries.len());
            println!(
                "{:>6} {:>4} {:>5} {:>10} {:>9} {:>9} {:>10} {:>10}",
                "uid", "dev", "live", "held", "launches", "xfers", "xfer-bytes", "occupancy"
            );
            for u in entries {
                println!(
                    "{:>6} {:>4} {:>5} {:>10} {:>9} {:>9} {:>10} {:>9}s",
                    u.uid,
                    u.device,
                    u.live,
                    fmt_bytes(u.bytes_held),
                    u.launches,
                    u.transfers,
                    fmt_bytes(u.transfer_bytes),
                    u.occupancy_ms / 1000
                );
            }
        }
        AdminResponse::Metrics { text, .. } => print!("{text}"),
        AdminResponse::Trace { node, events } => {
            render_trace(&node, &events);
            if let Some(path) = chrome {
                match std::fs::write(path, chrome_trace_json(&events)) {
                    Ok(()) => eprintln!("guardianctl: wrote chrome trace to {path}"),
                    Err(e) => fail(&format!("cannot write {path}: {e}")),
                }
            }
        }
        AdminResponse::Ok { node } => println!("node {node}: ok"),
        AdminResponse::Error { node, msg } => fail(&format!("node {node}: {msg}")),
    }
}

/// Human table: one row per flight-recorder event, stage durations in
/// microseconds. `t+` is the event's decode stamp relative to the
/// oldest event in the dump.
fn render_trace(node: &str, events: &[TraceEvent]) {
    println!("node {node}: {} trace event(s)", events.len());
    if events.is_empty() {
        return;
    }
    let base = events.iter().map(|e| e.t_decode_ns).min().unwrap_or(0);
    println!(
        "{:>10} {:<15} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>3}",
        "t+us", "op", "uid", "client", "stream", "admit_us", "queue_us", "enq_us", "dev_us", "err"
    );
    for e in events {
        let op = OpClass::from_u8(e.op).map(|o| o.name()).unwrap_or("?");
        println!(
            "{:>10.1} {:<15} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>3}",
            (e.t_decode_ns - base) as f64 / 1e3,
            op,
            e.uid,
            e.client,
            e.stream,
            stage_us(e.t_decode_ns, e.t_admit_ns),
            stage_us(e.t_admit_ns, e.t_flush_ns),
            stage_us(e.t_flush_ns, e.t_enqueue_ns),
            stage_us(e.t_enqueue_ns.max(e.t_decode_ns), e.t_complete_ns),
            e.outcome
        );
    }
}

/// One stage's duration in whole microseconds, or `-` when the event
/// never reached the later stage (its stamp is 0).
fn stage_us(from: u64, to: u64) -> String {
    if to == 0 || from == 0 || to < from {
        "-".to_string()
    } else {
        format!("{}", (to - from) / 1000)
    }
}

/// chrome://tracing "trace event format" JSON: complete (`ph:"X"`)
/// slices, one track per tenant (`pid` = uid, `tid` = stream), `ts`/
/// `dur` in microseconds. Consecutive stage slices share boundaries, so
/// per-stage durations sum to the end-to-end latency by construction.
fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut slice = |name: &str, pid: u32, tid: u32, from: u64, to: u64| {
        if to == 0 || from == 0 || to <= from {
            return;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":\"{name}\",\"ph\":\"X\",\"cat\":\"guardian\",\
             \"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3}}}",
            from as f64 / 1e3,
            (to - from) as f64 / 1e3
        ));
    };
    for e in events {
        let (pid, tid) = (e.uid, e.stream);
        slice("decode+admit", pid, tid, e.t_decode_ns, e.t_admit_ns);
        slice("queued", pid, tid, e.t_admit_ns, e.t_flush_ns);
        slice("enqueue", pid, tid, e.t_flush_ns, e.t_enqueue_ns);
        let dev_from = if e.t_enqueue_ns != 0 {
            e.t_enqueue_ns
        } else {
            e.t_decode_ns
        };
        slice("device", pid, tid, dev_from, e.t_complete_ns);
    }
    out.push_str("\n]\n");
    out
}

/// Human byte sizes: exact power-of-two multiples print as `K`/`M`/`G`,
/// everything else prints raw so the operator never loses precision.
fn fmt_bytes(b: u64) -> String {
    const G: u64 = 1 << 30;
    const M: u64 = 1 << 20;
    const K: u64 = 1 << 10;
    if b == u64::MAX {
        "inf".to_string()
    } else if b >= G && b.is_multiple_of(G) {
        format!("{}G", b / G)
    } else if b >= M && b.is_multiple_of(M) {
        format!("{}M", b / M)
    } else if b >= K && b.is_multiple_of(K) {
        format!("{}K", b / K)
    } else {
        format!("{b}B")
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("guardianctl: {msg}");
    std::process::exit(1);
}
