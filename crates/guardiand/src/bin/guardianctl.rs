//! `guardianctl`: operator CLI for a live `guardiand`.
//!
//! Speaks the v3 admin message family over the daemon's
//! `--admin-socket` uds endpoint (same-uid only). One request, one
//! response, exit:
//!
//! ```text
//! guardianctl --socket /run/guardian.admin devices
//! guardianctl --socket /run/guardian.admin tenants
//! guardianctl --socket /run/guardian.admin lease set 1000 mem=16M,streams=4,ttl=30s
//! guardianctl --socket /run/guardian.admin lease revoke 3
//! guardianctl --socket /run/guardian.admin quota [UID]
//! guardianctl --socket /run/guardian.admin metrics
//! ```
//!
//! Tables print human-readable; `metrics` prints the raw Prometheus
//! text exposition (pipe it straight to a scrape file). Exit status:
//! 0 on success, 1 when the daemon reports an error or cannot be
//! reached, 2 on bad usage.

use guardian::proto::{AdminRequest, AdminResponse};
use guardian::transport::uds::UdsDialer;
use guardian::transport::Dialer;
use guardian::LeaseSpec;

const USAGE: &str = "usage: guardianctl --socket PATH \
    <devices | tenants | lease set UID SPEC | lease revoke CLIENT | quota [UID] | metrics>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (socket, req) = match parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("guardianctl: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let conn = match UdsDialer::new(&socket).dial() {
        Ok(c) => c,
        Err(e) => fail(&format!("cannot dial {socket}: {e}")),
    };
    if let Err(e) = conn.send(req.encode()) {
        fail(&format!("send failed: {e}"));
    }
    let frame = match conn.recv() {
        Ok(f) => f,
        Err(e) => fail(&format!("no response: {e}")),
    };
    let resp = match AdminResponse::decode(&frame) {
        Ok(r) => r,
        Err(e) => fail(&format!("bad response frame: {e:?}")),
    };
    render(resp);
}

/// Split the command line into the socket path and the admin request.
fn parse(args: &[String]) -> Result<(String, AdminRequest), String> {
    let mut socket = None;
    let mut words = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--socket needs a value".to_string())?,
                );
            }
            w => words.push(w.to_string()),
        }
    }
    let socket = socket.ok_or("--socket is required")?;
    let words: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
    let req = match words.as_slice() {
        ["devices"] => AdminRequest::Devices,
        ["tenants"] => AdminRequest::Tenants,
        ["lease", "set", uid, spec] => {
            let uid: u32 = uid.parse().map_err(|e| format!("lease set UID: {e}"))?;
            let lease = LeaseSpec::parse(spec).map_err(|e| format!("lease set SPEC: {e}"))?;
            AdminRequest::LeaseSet {
                uid,
                mem_bytes: lease.mem_bytes,
                streams: lease.streams,
                ttl_ms: lease.ttl_ms(),
            }
        }
        ["lease", "revoke", client] => AdminRequest::LeaseRevoke {
            client: client
                .parse()
                .map_err(|e| format!("lease revoke CLIENT: {e}"))?,
        },
        ["quota"] => AdminRequest::Quota { uid: None },
        ["quota", uid] => AdminRequest::Quota {
            uid: Some(uid.parse().map_err(|e| format!("quota UID: {e}"))?),
        },
        ["metrics"] => AdminRequest::Metrics,
        [] => return Err("a command is required".into()),
        other => return Err(format!("unknown command `{}`", other.join(" "))),
    };
    Ok((socket, req))
}

fn render(resp: AdminResponse) {
    match resp {
        AdminResponse::Devices { node, devices } => {
            println!("node {node}: {} device(s)", devices.len());
            println!(
                "{:>3}  {:<18} {:>9} {:>10} {:>10} {:>7}",
                "idx", "name", "clock", "pool", "used", "tenants"
            );
            for d in devices {
                println!(
                    "{:>3}  {:<18} {:>6.2}GHz {:>10} {:>10} {:>7}",
                    d.index,
                    d.name,
                    d.clock_ghz,
                    fmt_bytes(d.pool_bytes),
                    fmt_bytes(d.used_bytes),
                    d.tenants
                );
            }
        }
        AdminResponse::Tenants { node, tenants } => {
            println!("node {node}: {} tenant(s)", tenants.len());
            println!(
                "{:>6} {:>6} {:>4} {:>10} {:>10} {:>9} {:>8} {:>9} {:>9} {:>10}",
                "client",
                "uid",
                "dev",
                "partition",
                "lease",
                "ttl",
                "age",
                "held",
                "launches",
                "xfer"
            );
            for t in tenants {
                println!(
                    "{:>6} {:>6} {:>4} {:>10} {:>10} {:>9} {:>7}s {:>9} {:>9} {:>10}",
                    t.client,
                    t.uid,
                    t.device,
                    fmt_bytes(t.partition_size),
                    if t.lease_mem == u64::MAX {
                        "none".to_string()
                    } else {
                        fmt_bytes(t.lease_mem)
                    },
                    if t.lease_ttl_ms == 0 {
                        "none".to_string()
                    } else {
                        format!("{}ms", t.lease_ttl_ms)
                    },
                    t.age_ms / 1000,
                    fmt_bytes(t.bytes_held),
                    t.launches,
                    fmt_bytes(t.transfer_bytes)
                );
            }
        }
        AdminResponse::Quota { node, entries } => {
            println!("node {node}: {} usage row(s)", entries.len());
            println!(
                "{:>6} {:>4} {:>5} {:>10} {:>9} {:>9} {:>10} {:>10}",
                "uid", "dev", "live", "held", "launches", "xfers", "xfer-bytes", "occupancy"
            );
            for u in entries {
                println!(
                    "{:>6} {:>4} {:>5} {:>10} {:>9} {:>9} {:>10} {:>9}s",
                    u.uid,
                    u.device,
                    u.live,
                    fmt_bytes(u.bytes_held),
                    u.launches,
                    u.transfers,
                    fmt_bytes(u.transfer_bytes),
                    u.occupancy_ms / 1000
                );
            }
        }
        AdminResponse::Metrics { text, .. } => print!("{text}"),
        AdminResponse::Ok { node } => println!("node {node}: ok"),
        AdminResponse::Error { node, msg } => fail(&format!("node {node}: {msg}")),
    }
}

/// Human byte sizes: exact power-of-two multiples print as `K`/`M`/`G`,
/// everything else prints raw so the operator never loses precision.
fn fmt_bytes(b: u64) -> String {
    const G: u64 = 1 << 30;
    const M: u64 = 1 << 20;
    const K: u64 = 1 << 10;
    if b == u64::MAX {
        "inf".to_string()
    } else if b >= G && b.is_multiple_of(G) {
        format!("{}G", b / G)
    } else if b >= M && b.is_multiple_of(M) {
        format!("{}M", b / M)
    } else if b >= K && b.is_multiple_of(K) {
        format!("{}K", b / K)
    } else {
        format!("{b}B")
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("guardianctl: {msg}");
    std::process::exit(1);
}
