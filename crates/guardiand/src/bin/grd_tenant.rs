//! `grd-tenant`: one Guardian tenant as one OS process.
//!
//! Dials a `guardiand` daemon over uds or shm (optionally pinned to a
//! GPU via `--hint`), registers its kernels (the well-behaved `fill` and
//! the hostile `stomp`), announces itself with a
//! `ready <client> <partition-base> <partition-size> <device>` stdout
//! line, then runs the requested workload. See `guardiand::run_workload`
//! for the exit-code contract.

use guardiand::{dial_retry, run_workload, tenant_fatbin, TenantOpts};
use std::io::Write;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match TenantOpts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("grd-tenant: {e}");
            eprintln!(
                "usage: grd-tenant --transport uds|shm --socket PATH \
                 [--mem BYTES] [--workload fill|oob|storm|migrate] [--iters N] \
                 [--hold-ms N] [--hint GPU] [--qos latency|besteffort]"
            );
            std::process::exit(2);
        }
    };

    let mut lib = match dial_retry(
        opts.wire,
        &opts.socket,
        opts.mem,
        opts.hint,
        opts.qos,
        Duration::from_secs(10),
    ) {
        Ok(lib) => lib,
        Err(e) => {
            eprintln!("grd-tenant: connect failed: {e}");
            std::process::exit(3);
        }
    };
    if let Err(e) = cuda_rt::CudaApi::register_fatbin(&mut lib, &tenant_fatbin()) {
        eprintln!("grd-tenant: fatbin registration failed: {e}");
        std::process::exit(3);
    }

    let (base, size) = lib.partition();
    println!("ready {} {base} {size} {}", lib.client_id().0, lib.device());
    let _ = std::io::stdout().flush();
    if opts.hold_ms > 0 {
        std::thread::sleep(Duration::from_millis(opts.hold_ms));
    }

    std::process::exit(run_workload(&mut lib, opts.workload, opts.iters));
}
