//! `guardiand`: the grdManager as a standalone daemon process.
//!
//! Owns the (simulated) GPU and serves Guardian's wire protocol over a
//! Unix domain socket (`--uds PATH`) and/or a shared-memory-ring
//! endpoint (`--shm PATH`) — both at once fan into one manager, one
//! partition pool. Tenants are separate OS processes (`grd-tenant`, or
//! anything using `GrdLib::dial_uds`/`dial_shm`).
//!
//! The node control plane rides along: `--lease-default` admits every
//! connect under a memory/stream/TTL lease, `--max-connect-rate`
//! meters connects per uid at the accept loops, and `--admin-socket`
//! binds the operator endpoint `guardianctl` speaks (with an optional
//! plaintext-HTTP `/metrics` mirror via `--admin-http`).
//!
//! Prints one `guardiand: listening …` line to stdout once every
//! endpoint is bound, so supervisors (and the cross-process test suite)
//! can wait for readiness, then serves until killed.

use guardian::control::{serve_admin, serve_http_metrics};
use guardian::proto::{AdminRequest, AdminResponse};
use guardian::transport::UidPolicy;
use guardian::{spawn_manager_multi, BoundTransport, LaunchAck, ManagerConfig};
use guardiand::DaemonOpts;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match DaemonOpts::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("guardiand: {e}");
            eprintln!(
                "usage: guardiand [--uds PATH] [--shm PATH] [--gpus N] \
                 [--pool-bytes N[,N...]] [--protection fence|modulo|check|none] \
                 [--deferred] [--allow-uid UID[,UID...]] \
                 [--driver threads|event[:N]] [--lease-default SPEC] \
                 [--admin-socket PATH] [--max-connect-rate N] \
                 [--node-id NAME] [--admin-http ADDR] \
                 [--qos-budget N] [--slice-cycles N]"
            );
            std::process::exit(2);
        }
    };

    // SO_PEERCRED gate on every socket: the daemon's own uid unless an
    // explicit --allow-uid list was given. The connect-rate gate is
    // shared across endpoints so both meter one budget per uid.
    let policy = opts.uid_policy();
    let admission = opts.admission();
    let mut transports = Vec::new();
    if let Some(path) = &opts.uds {
        match BoundTransport::uds_gated(path, policy.clone(), admission.clone()) {
            Ok(t) => transports.push(t),
            Err(e) => fail(&format!("cannot bind uds endpoint {}: {e}", path.display())),
        }
    }
    if let Some(path) = &opts.shm {
        match BoundTransport::shm_gated(path, policy, admission.clone()) {
            Ok(t) => transports.push(t),
            Err(e) => fail(&format!("cannot bind shm endpoint {}: {e}", path.display())),
        }
    }
    let transport = if transports.len() == 1 {
        transports.pop().expect("one transport")
    } else {
        BoundTransport::merge(transports)
    };

    // --slice-cycles arms kernel-slice preemption on every simulated
    // device, so latency-class streams can claim SMs at slice
    // boundaries instead of waiting out whole thread blocks.
    let spec = {
        let mut s = gpu_sim::spec::test_gpu();
        s.kernel_slice_cycles = opts.slice_cycles;
        s
    };
    let devices: Vec<_> = (0..opts.gpus)
        .map(|i| cuda_rt::share_device(gpu_sim::Device::new_indexed(spec.clone(), i)))
        .collect();
    let (pool_bytes, pool_bytes_per_gpu) = opts.pool_config();
    let defaults = ManagerConfig::default();
    let config = ManagerConfig {
        protection: opts.protection,
        pool_bytes,
        pool_bytes_per_gpu,
        launch_ack: if opts.deferred {
            LaunchAck::Deferred
        } else {
            LaunchAck::Eager
        },
        session_driver: opts.driver,
        lease_default: opts.lease_default,
        node_id: opts.node_id.clone(),
        admission,
        log_level: opts.log_level,
        qos_inflight_budget: opts.qos_budget.unwrap_or(defaults.qos_inflight_budget),
        ..defaults
    };
    // Bound to a named variable: the handle must outlive the serve loop
    // (dropping it would tear the acceptor down).
    let manager = match spawn_manager_multi(devices, config, &[], transport) {
        Ok(m) => m,
        Err(e) => fail(&format!("cannot spawn manager: {e}")),
    };

    // The admin plane is operator-only: same-uid regardless of who the
    // tenant sockets admit, and never metered by the connect gate.
    let _admin = opts.admin_socket.as_ref().map(|path| {
        let transport = match BoundTransport::uds_with_policy(path, UidPolicy::same_user()) {
            Ok(t) => t,
            Err(e) => fail(&format!("cannot bind admin socket {}: {e}", path.display())),
        };
        let api = manager.admin();
        serve_admin(transport, move |req| api.handle(req))
    });
    let _http = opts.admin_http.as_ref().map(|addr| {
        let api = manager.admin();
        match serve_http_metrics(addr, move || match api.handle(AdminRequest::Metrics) {
            AdminResponse::Metrics { text, .. } => text,
            other => format!("# metrics unavailable: {other:?}\n"),
        }) {
            Ok(s) => s,
            Err(e) => fail(&format!("cannot bind admin http {addr}: {e}")),
        }
    });

    let endpoints: Vec<String> = [
        opts.uds.as_ref().map(|p| format!("uds:{}", p.display())),
        opts.shm.as_ref().map(|p| format!("shm:{}", p.display())),
        opts.admin_socket
            .as_ref()
            .map(|p| format!("admin:{}", p.display())),
        opts.admin_http.as_ref().map(|a| format!("http:{a}")),
    ]
    .into_iter()
    .flatten()
    .collect();
    println!(
        "guardiand: listening on {} ({} gpu{})",
        endpoints.join(" "),
        opts.gpus,
        if opts.gpus == 1 { "" } else { "s" }
    );
    let _ = std::io::stdout().flush();

    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("guardiand: {msg}");
    std::process::exit(1);
}
