//! # guardiand — Guardian's manager as an OS daemon
//!
//! The paper's deployment model (§4): one trusted `grdManager` process
//! owns the GPU; untrusted tenants are *separate OS processes* whose
//! intercepted CUDA calls cross a real IPC boundary. This crate packages
//! that model:
//!
//! * the **`guardiand`** binary serves a manager over a Unix-domain
//!   socket and/or a shared-memory-ring endpoint;
//! * the **`grd-tenant`** binary is a tenant process: it dials a daemon,
//!   registers its kernels, and runs one of a few canned workloads
//!   (well-behaved fill loops, an out-of-bounds attack, an unbounded
//!   launch storm) — the raw material of the cross-process isolation
//!   suite in `tests/process_isolation.rs`;
//! * this library holds the argument parsing and workload logic both
//!   binaries share, so the test suite can reason about exit codes and
//!   stdout lines instead of duplicating workload code.
//!
//! Exit-code contract for `grd-tenant` (asserted by the tests):
//! `0` — workload completed as intended (for `oob` that means Guardian
//! terminated *us*, and only us); `2` — bad usage; `3` — unexpected
//! runtime failure.

#![warn(missing_docs)]

use cuda_rt::{ArgPack, CudaApi, CudaError, CudaResult};
use gpu_sim::LaunchConfig;
use guardian::{GrdLib, PlacementHint, Protection, QosClass, SessionDriver};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Which wire the tenant uses to reach the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// Unix-domain-socket framing.
    Uds,
    /// Shared-memory rings (handshake over the socket path).
    Shm,
}

impl Wire {
    /// Parse `"uds"` / `"shm"`.
    ///
    /// # Errors
    ///
    /// A usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "uds" => Ok(Wire::Uds),
            "shm" => Ok(Wire::Shm),
            other => Err(format!("unknown transport `{other}` (want uds|shm)")),
        }
    }
}

/// A canned tenant workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `iters` fill launches with periodic syncs; verifies results.
    Fill,
    /// One out-of-bounds stomp aimed just past the tenant's own
    /// partition; expects Guardian to terminate this tenant.
    Oob,
    /// Unbounded launch storm (runs until killed or the daemon is gone).
    Storm,
    /// Unbounded migration ping-pong across the daemon's GPUs, verifying
    /// a data checksum after every hop (runs until killed or the daemon
    /// is gone). Prints `migrated <n> <device>` per hop.
    Migrate,
}

impl Workload {
    /// Parse `"fill"` / `"oob"` / `"storm"` / `"migrate"`.
    ///
    /// # Errors
    ///
    /// A usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fill" => Ok(Workload::Fill),
            "oob" => Ok(Workload::Oob),
            "storm" => Ok(Workload::Storm),
            "migrate" => Ok(Workload::Migrate),
            other => Err(format!(
                "unknown workload `{other}` (want fill|oob|storm|migrate)"
            )),
        }
    }
}

/// Parsed `grd-tenant` command line.
#[derive(Debug, Clone)]
pub struct TenantOpts {
    /// Transport to dial.
    pub wire: Wire,
    /// Daemon socket path.
    pub socket: PathBuf,
    /// Partition size to request at connect.
    pub mem: u64,
    /// Workload to run after connecting.
    pub workload: Workload,
    /// Iteration count for bounded workloads.
    pub iters: u32,
    /// Milliseconds to hold the tenancy idle between the `ready` banner
    /// and the workload. Lets a supervisor observe several tenants
    /// holding partitions *concurrently* (the isolation tests use this
    /// so a fast tenant cannot finish — and free its partition — before
    /// a slow sibling even connects).
    pub hold_ms: u64,
    /// GPU index to pin the tenancy to (strict placement hint), if any.
    pub hint: Option<u32>,
    /// QoS class to request at connect (`--qos latency|besteffort`,
    /// default best-effort). The daemon clamps the grant to the uid's
    /// lease ceiling.
    pub qos: QosClass,
}

impl TenantOpts {
    /// Parse `grd-tenant` arguments:
    /// `--transport uds|shm --socket PATH [--mem BYTES] [--workload W]
    /// [--iters N] [--hold-ms N] [--hint GPU] [--qos latency|besteffort]`.
    ///
    /// # Errors
    ///
    /// A usage message naming the offending flag.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut wire = None;
        let mut socket = None;
        let mut mem = 4 << 20;
        let mut workload = Workload::Fill;
        let mut iters = 50;
        let mut hold_ms = 0;
        let mut hint = None;
        let mut qos = QosClass::BestEffort;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--transport" => wire = Some(Wire::parse(&value("--transport")?)?),
                "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
                "--mem" => {
                    mem = value("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?;
                }
                "--workload" => workload = Workload::parse(&value("--workload")?)?,
                "--iters" => {
                    iters = value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?;
                }
                "--hold-ms" => {
                    hold_ms = value("--hold-ms")?
                        .parse()
                        .map_err(|e| format!("--hold-ms: {e}"))?;
                }
                "--hint" => {
                    hint = Some(
                        value("--hint")?
                            .parse()
                            .map_err(|e| format!("--hint: {e}"))?,
                    );
                }
                "--qos" => {
                    qos = QosClass::parse(&value("--qos")?).map_err(|e| format!("--qos: {e}"))?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(TenantOpts {
            wire: wire.ok_or("--transport is required")?,
            socket: socket.ok_or("--socket is required")?,
            mem,
            workload,
            iters,
            hold_ms,
            hint,
            qos,
        })
    }
}

/// Parsed `guardiand` command line.
#[derive(Debug, Clone)]
pub struct DaemonOpts {
    /// Unix-socket endpoint to serve, if any.
    pub uds: Option<PathBuf>,
    /// Shared-memory endpoint (handshake socket path) to serve, if any.
    pub shm: Option<PathBuf>,
    /// Number of simulated GPUs the daemon owns (default 1).
    pub gpus: u32,
    /// Partition pool sizes: empty = half of each device's memory; one
    /// entry = that size on every device; else one entry per device
    /// (`--pool-bytes` accepts a comma-separated list).
    pub pool_bytes: Vec<u64>,
    /// Bounds-enforcement mode.
    pub protection: Protection,
    /// Acknowledge launches at enqueue (`false`) or run them as one-way
    /// deferred sends (`true`).
    pub deferred: bool,
    /// Peer uids admitted at the sockets (`SO_PEERCRED`). Empty = only
    /// the uid the daemon runs as.
    pub allow_uids: Vec<u32>,
    /// Data-plane driver: `Auto` (default — event pool under concurrent
    /// dispatch, thread-per-session under serial), or an explicit
    /// `--driver threads` / `--driver event[:N]`.
    pub driver: SessionDriver,
    /// Lease every connect is admitted under unless a per-uid override
    /// exists (`--lease-default mem=16M,streams=4,ttl=30s`). `None` =
    /// uncapped, never-expiring leases.
    pub lease_default: Option<guardian::LeaseSpec>,
    /// Admin-plane uds socket (`guardianctl` endpoint), if any.
    pub admin_socket: Option<PathBuf>,
    /// Sustained connects-per-second each uid may attempt; `None` =
    /// unmetered admission.
    pub max_connect_rate: Option<f64>,
    /// Node id stamped into every admin response (default `grd-<pid>`).
    pub node_id: Option<String>,
    /// Plaintext-HTTP `/metrics` listen address (`127.0.0.1:9090`).
    pub admin_http: Option<String>,
    /// Severity floor for structured one-line-per-event stderr logging
    /// (`--log-level off|info|debug`, default `off`).
    pub log_level: guardian::LogLevel,
    /// In-flight launch budget for best-effort tenants while latency
    /// tenants are active (`--qos-budget N`); `None` = the manager's
    /// default.
    pub qos_budget: Option<u64>,
    /// Kernel-slice preemption grain in device cycles (`--slice-cycles
    /// N`, 0 = off): long kernels yield their SMs to latency-class work
    /// at each slice boundary.
    pub slice_cycles: u64,
}

/// Parse a `--driver` value: `threads`, `event`, or `event:N` where `N`
/// is the worker count (`event` alone sizes the pool to the CPU count).
fn parse_driver(s: &str) -> Result<SessionDriver, String> {
    match s {
        "threads" => Ok(SessionDriver::ThreadPerSession),
        "event" => Ok(SessionDriver::EventPool { workers: 0 }),
        other => match other.strip_prefix("event:") {
            Some(n) => {
                let workers = n.parse().map_err(|e| format!("--driver event:N: {e}"))?;
                Ok(SessionDriver::EventPool { workers })
            }
            None => Err(format!("unknown driver `{other}` (want threads|event[:N])")),
        },
    }
}

impl DaemonOpts {
    /// Parse `guardiand` arguments:
    /// `[--uds PATH] [--shm PATH] [--gpus N] [--pool-bytes N[,N...]]
    /// [--protection fence|modulo|check|none] [--deferred]
    /// [--allow-uid UID[,UID...]] [--driver threads|event[:N]]
    /// [--lease-default SPEC] [--admin-socket PATH]
    /// [--max-connect-rate N] [--node-id NAME] [--admin-http ADDR]
    /// [--log-level off|info|debug] [--qos-budget N] [--slice-cycles N]`.
    ///
    /// # Errors
    ///
    /// A usage message; at least one of `--uds`/`--shm` is required, and
    /// a multi-entry `--pool-bytes` must match `--gpus`.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = DaemonOpts {
            uds: None,
            shm: None,
            gpus: 1,
            pool_bytes: Vec::new(),
            protection: Protection::FenceBitwise,
            deferred: false,
            allow_uids: Vec::new(),
            driver: SessionDriver::Auto,
            lease_default: None,
            admin_socket: None,
            max_connect_rate: None,
            node_id: None,
            admin_http: None,
            log_level: guardian::LogLevel::Off,
            qos_budget: None,
            slice_cycles: 0,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--uds" => opts.uds = Some(PathBuf::from(value("--uds")?)),
                "--shm" => opts.shm = Some(PathBuf::from(value("--shm")?)),
                "--gpus" => {
                    opts.gpus = value("--gpus")?
                        .parse()
                        .map_err(|e| format!("--gpus: {e}"))?;
                }
                "--pool-bytes" => {
                    opts.pool_bytes = value("--pool-bytes")?
                        .split(',')
                        .map(|s| s.trim().parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("--pool-bytes: {e}"))?;
                }
                "--allow-uid" => {
                    let uids: Vec<u32> = value("--allow-uid")?
                        .split(',')
                        .map(|s| s.trim().parse::<u32>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("--allow-uid: {e}"))?;
                    opts.allow_uids.extend(uids);
                }
                "--protection" => {
                    opts.protection = match value("--protection")?.as_str() {
                        "fence" => Protection::FenceBitwise,
                        "modulo" => Protection::FenceModulo,
                        "check" => Protection::Check,
                        "none" => Protection::None,
                        other => {
                            return Err(format!(
                                "unknown protection `{other}` (want fence|modulo|check|none)"
                            ))
                        }
                    };
                }
                "--deferred" => opts.deferred = true,
                "--driver" => opts.driver = parse_driver(&value("--driver")?)?,
                "--lease-default" => {
                    opts.lease_default = Some(
                        guardian::LeaseSpec::parse(&value("--lease-default")?)
                            .map_err(|e| format!("--lease-default: {e}"))?,
                    );
                }
                "--admin-socket" => {
                    opts.admin_socket = Some(PathBuf::from(value("--admin-socket")?));
                }
                "--max-connect-rate" => {
                    let rate: f64 = value("--max-connect-rate")?
                        .parse()
                        .map_err(|e| format!("--max-connect-rate: {e}"))?;
                    if !rate.is_finite() || rate <= 0.0 {
                        return Err("--max-connect-rate must be a positive number".into());
                    }
                    opts.max_connect_rate = Some(rate);
                }
                "--node-id" => opts.node_id = Some(value("--node-id")?),
                "--admin-http" => opts.admin_http = Some(value("--admin-http")?),
                "--log-level" => {
                    opts.log_level = guardian::LogLevel::parse(&value("--log-level")?)
                        .map_err(|e| format!("--log-level: {e}"))?;
                }
                "--qos-budget" => {
                    opts.qos_budget = Some(
                        value("--qos-budget")?
                            .parse()
                            .map_err(|e| format!("--qos-budget: {e}"))?,
                    );
                }
                "--slice-cycles" => {
                    opts.slice_cycles = value("--slice-cycles")?
                        .parse()
                        .map_err(|e| format!("--slice-cycles: {e}"))?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if opts.uds.is_none() && opts.shm.is_none() {
            return Err("at least one of --uds/--shm is required".into());
        }
        if opts.gpus == 0 {
            return Err("--gpus must be at least 1".into());
        }
        if opts.pool_bytes.len() > 1 && opts.pool_bytes.len() != opts.gpus as usize {
            return Err(format!(
                "--pool-bytes lists {} sizes for {} gpus",
                opts.pool_bytes.len(),
                opts.gpus
            ));
        }
        Ok(opts)
    }

    /// The per-device pool configuration for `ManagerConfig`:
    /// `(uniform pool_bytes, per-device override)`.
    pub fn pool_config(&self) -> (Option<u64>, Option<Vec<u64>>) {
        match self.pool_bytes.len() {
            0 => (None, None),
            1 => (Some(self.pool_bytes[0]), None),
            _ => (None, Some(self.pool_bytes.clone())),
        }
    }

    /// The `SO_PEERCRED` policy for the daemon's sockets: the explicit
    /// `--allow-uid` list, or — by default — only the daemon's own uid.
    pub fn uid_policy(&self) -> guardian::transport::UidPolicy {
        if self.allow_uids.is_empty() {
            guardian::transport::UidPolicy::same_user()
        } else {
            guardian::transport::UidPolicy::Allow(self.allow_uids.clone())
        }
    }

    /// The per-uid connect-rate gate from `--max-connect-rate`, shared
    /// between the uds and shm accept loops so both sockets meter one
    /// token budget per uid. Burst is one second's worth of connects.
    pub fn admission(&self) -> Option<std::sync::Arc<guardian::Admission>> {
        self.max_connect_rate
            .map(|rate| std::sync::Arc::new(guardian::Admission::new(rate, rate.ceil() as u32)))
    }
}

/// The PTX every tenant registers: the well-behaved `fill` kernel plus
/// the `stomp` attack (both from `guardian::fixtures`), packaged as one
/// fatbin — registration itself thus crosses the process boundary.
pub fn tenant_fatbin() -> Vec<u8> {
    let mut fb = ptx::fatbin::FatBin::new();
    fb.push_ptx("app", guardian::fixtures::FILL);
    fb.push_ptx("attack", guardian::fixtures::STOMP);
    fb.to_bytes().to_vec()
}

/// Dial the daemon, retrying while it finishes starting up (the parent
/// spawns daemon and tenants concurrently; a bounded retry window
/// de-races them without any out-of-band synchronization). `hint` pins
/// the tenancy to a GPU (strict).
///
/// # Errors
///
/// The last dial error once `window` is exhausted.
pub fn dial_retry(
    wire: Wire,
    socket: &std::path::Path,
    mem: u64,
    hint: Option<u32>,
    qos: QosClass,
    window: Duration,
) -> CudaResult<GrdLib> {
    let deadline = Instant::now() + window;
    let hint = hint.map(PlacementHint::pin);
    loop {
        let r = match wire {
            Wire::Uds => GrdLib::dial_uds_opts(socket, mem, hint, qos),
            Wire::Shm => GrdLib::dial_shm_opts(socket, mem, hint, qos),
        };
        match r {
            Ok(lib) => return Ok(lib),
            // Pool exhaustion is a real answer, not a startup race.
            Err(CudaError::OutOfMemory) => return Err(CudaError::OutOfMemory),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Run a tenant workload to its exit code (the `grd-tenant` contract).
/// Emits `fill-ok` / `oob-terminated` progress lines on stdout.
pub fn run_workload(lib: &mut GrdLib, workload: Workload, iters: u32) -> i32 {
    match workload {
        Workload::Fill => run_fill(lib, iters),
        Workload::Oob => run_oob(lib),
        Workload::Storm => run_storm(lib),
        Workload::Migrate => run_migrate(lib),
    }
}

fn run_fill(lib: &mut GrdLib, iters: u32) -> i32 {
    let n = 64u32;
    let buf = match lib.cuda_malloc(4 * n as u64) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("grd-tenant: malloc failed: {e}");
            return 3;
        }
    };
    let args = ArgPack::new().ptr(buf).u32(n).finish();
    for i in 0..iters {
        let r = lib.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        );
        if let Err(e) = r {
            eprintln!("grd-tenant: launch {i} failed: {e}");
            return 3;
        }
        if i % 10 == 9 {
            if let Err(e) = lib.cuda_device_synchronize() {
                eprintln!("grd-tenant: sync at {i} failed: {e}");
                return 3;
            }
        }
    }
    if let Err(e) = lib.cuda_device_synchronize() {
        eprintln!("grd-tenant: final sync failed: {e}");
        return 3;
    }
    match lib.cuda_memcpy_d2h(buf, 4 * n as u64) {
        Ok(out) => {
            for i in 0..n {
                let got = u32::from_le_bytes(out[i as usize * 4..][..4].try_into().expect("4"));
                if got != i {
                    eprintln!("grd-tenant: out[{i}] = {got}, isolation broken?");
                    return 3;
                }
            }
            println!("fill-ok");
            0
        }
        Err(e) => {
            eprintln!("grd-tenant: readback failed: {e}");
            3
        }
    }
}

/// Launch `stomp` at the first byte past our own partition; Guardian
/// must terminate exactly this tenant. Success (exit 0) means we
/// observed our own death certificate.
fn run_oob(lib: &mut GrdLib) -> i32 {
    let (base, size) = lib.partition();
    let args = ArgPack::new().ptr(base + size).u32(0x4141_4141).finish();
    if let Err(e) = lib.cuda_launch_kernel(
        "stomp",
        LaunchConfig::linear(1, 1),
        &args,
        Default::default(),
    ) {
        eprintln!("grd-tenant: oob launch rejected at enqueue: {e}");
        return 3;
    }
    // Under checking-mode protection the fault surfaces at sync; under
    // fencing the store wraps into our own partition and we stay alive —
    // both are correct confinement, but this workload is only meaningful
    // under `--protection check`.
    if lib.cuda_device_synchronize().is_ok() {
        eprintln!("grd-tenant: oob sync succeeded (fencing mode? wrong daemon config)");
        return 3;
    }
    // Guardian must keep rejecting us — the kill is sticky.
    match lib.cuda_malloc(16) {
        Err(CudaError::Rejected(_)) => {
            println!("oob-terminated");
            0
        }
        r => {
            eprintln!("grd-tenant: expected sticky rejection, got {r:?}");
            3
        }
    }
}

/// Migration ping-pong: bounce the tenancy across the daemon's GPUs as
/// fast as migrations complete, carrying a seeded data pattern and
/// verifying it after every hop. Runs until killed or the daemon is
/// gone; data corruption is a tenant failure (exit 3).
fn run_migrate(lib: &mut GrdLib) -> i32 {
    let n_gpus = match lib.device_count() {
        Ok(n) if n >= 2 => n,
        Ok(n) => {
            eprintln!("grd-tenant: migrate workload needs >= 2 gpus, daemon has {n}");
            return 3;
        }
        Err(e) => {
            eprintln!("grd-tenant: device_count failed: {e}");
            return 3;
        }
    };
    let len = 4096usize;
    let pattern: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
    let mut buf = match lib.cuda_malloc(len as u64) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("grd-tenant: malloc failed: {e}");
            return 3;
        }
    };
    if let Err(e) = lib.cuda_memcpy_h2d(buf, &pattern) {
        eprintln!("grd-tenant: seed h2d failed: {e}");
        return 3;
    }
    let mut hops = 0u64;
    loop {
        let dst = (lib.device() + 1) % n_gpus;
        match lib.migrate(dst) {
            Ok(delta) => {
                buf = buf.wrapping_add(delta);
                hops += 1;
            }
            // The daemon went away (or the pool is momentarily taken);
            // a vanished daemon ends the ping-pong, not the tenant.
            Err(CudaError::Disconnected) => return 0,
            Err(e) => {
                eprintln!("grd-tenant: migrate to {dst} failed: {e}");
                return 3;
            }
        }
        match lib.cuda_memcpy_d2h(buf, len as u64) {
            Ok(back) => {
                if back != pattern {
                    eprintln!("grd-tenant: data corrupted after hop {hops}");
                    return 3;
                }
            }
            Err(CudaError::Disconnected) => return 0,
            Err(e) => {
                eprintln!("grd-tenant: readback after hop {hops} failed: {e}");
                return 3;
            }
        }
        println!("migrated {hops} {}", lib.device());
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
}

/// Launch storm: as fast as the transport carries frames, until killed.
/// Never syncs, so under deferred acks this is pure one-way traffic.
fn run_storm(lib: &mut GrdLib) -> i32 {
    let buf = match lib.cuda_malloc(4 * 64) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("grd-tenant: malloc failed: {e}");
            return 3;
        }
    };
    let args = ArgPack::new().ptr(buf).u32(64).finish();
    let mut n = 0u64;
    loop {
        let r = lib.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        );
        if r.is_err() {
            // The daemon went away first; that's the end of the storm,
            // not a tenant bug.
            return 0;
        }
        n += 1;
        if n.is_multiple_of(4096) {
            // Bound the one-way queue so a deferred-mode storm cannot
            // outrun the device unboundedly.
            let _ = lib.cuda_device_synchronize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_args_parse() {
        let args: Vec<String> = [
            "--transport",
            "shm",
            "--socket",
            "/tmp/g.sock",
            "--mem",
            "1048576",
            "--workload",
            "storm",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = TenantOpts::parse(&args).unwrap();
        assert_eq!(opts.wire, Wire::Shm);
        assert_eq!(opts.mem, 1 << 20);
        assert_eq!(opts.workload, Workload::Storm);
        assert!(TenantOpts::parse(&["--socket".into(), "/tmp/x".into()]).is_err());
        assert!(TenantOpts::parse(&["--bogus".into()]).is_err());
    }

    #[test]
    fn daemon_args_parse() {
        let args: Vec<String> = [
            "--uds",
            "/tmp/g.sock",
            "--pool-bytes",
            "8388608",
            "--deferred",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = DaemonOpts::parse(&args).unwrap();
        assert_eq!(
            opts.uds.as_deref(),
            Some(std::path::Path::new("/tmp/g.sock"))
        );
        assert_eq!(opts.gpus, 1);
        assert_eq!(opts.pool_config(), (Some(8 << 20), None));
        assert!(opts.deferred);
        assert_eq!(opts.driver, SessionDriver::Auto);
        // No endpoint at all is a usage error.
        assert!(DaemonOpts::parse(&[]).is_err());
    }

    #[test]
    fn daemon_driver_arg_parses() {
        let parse = |d: &str| {
            DaemonOpts::parse(&[
                "--uds".into(),
                "/tmp/g.sock".into(),
                "--driver".into(),
                d.into(),
            ])
        };
        assert_eq!(
            parse("threads").unwrap().driver,
            SessionDriver::ThreadPerSession
        );
        assert_eq!(
            parse("event").unwrap().driver,
            SessionDriver::EventPool { workers: 0 }
        );
        assert_eq!(
            parse("event:8").unwrap().driver,
            SessionDriver::EventPool { workers: 8 }
        );
        assert!(parse("event:").is_err());
        assert!(parse("fibers").is_err());
    }

    #[test]
    fn daemon_control_plane_args_parse() {
        let args: Vec<String> = [
            "--uds",
            "/tmp/g.sock",
            "--lease-default",
            "mem=16M,streams=4,ttl=30s",
            "--admin-socket",
            "/tmp/g.admin",
            "--max-connect-rate",
            "50",
            "--node-id",
            "node-a",
            "--admin-http",
            "127.0.0.1:9090",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = DaemonOpts::parse(&args).unwrap();
        let lease = opts.lease_default.unwrap();
        assert_eq!(lease.mem_bytes, 16 << 20);
        assert_eq!(lease.streams, 4);
        assert_eq!(lease.ttl_ms(), 30_000);
        assert_eq!(
            opts.admin_socket.as_deref(),
            Some(std::path::Path::new("/tmp/g.admin"))
        );
        assert_eq!(opts.max_connect_rate, Some(50.0));
        assert!(opts.admission().is_some());
        assert_eq!(opts.node_id.as_deref(), Some("node-a"));
        assert_eq!(opts.admin_http.as_deref(), Some("127.0.0.1:9090"));
        // A daemon without the flags runs unleased and unmetered.
        let bare = DaemonOpts::parse(&["--uds".into(), "/tmp/g.sock".into()]).unwrap();
        assert!(bare.lease_default.is_none());
        assert!(bare.admission().is_none());
        // Malformed values are usage errors, not panics.
        let bad = |flag: &str, v: &str| {
            DaemonOpts::parse(&["--uds".into(), "/tmp/g.sock".into(), flag.into(), v.into()])
        };
        assert!(bad("--lease-default", "mem=banana").is_err());
        assert!(bad("--max-connect-rate", "0").is_err());
        assert!(bad("--max-connect-rate", "nan").is_err());
    }

    #[test]
    fn qos_args_parse() {
        let t = TenantOpts::parse(&[
            "--transport".into(),
            "uds".into(),
            "--socket".into(),
            "/tmp/x".into(),
            "--qos".into(),
            "latency".into(),
        ])
        .unwrap();
        assert_eq!(t.qos, QosClass::Latency);
        // Default request is best-effort; bad classes are usage errors.
        let bare = TenantOpts::parse(&[
            "--transport".into(),
            "uds".into(),
            "--socket".into(),
            "/tmp/x".into(),
        ])
        .unwrap();
        assert_eq!(bare.qos, QosClass::BestEffort);
        assert!(TenantOpts::parse(&[
            "--transport".into(),
            "uds".into(),
            "--socket".into(),
            "/tmp/x".into(),
            "--qos".into(),
            "turbo".into(),
        ])
        .is_err());

        let d = DaemonOpts::parse(&[
            "--uds".into(),
            "/tmp/g.sock".into(),
            "--qos-budget".into(),
            "32".into(),
            "--slice-cycles".into(),
            "2000".into(),
        ])
        .unwrap();
        assert_eq!(d.qos_budget, Some(32));
        assert_eq!(d.slice_cycles, 2000);
        let bare = DaemonOpts::parse(&["--uds".into(), "/tmp/g.sock".into()]).unwrap();
        assert_eq!(bare.qos_budget, None);
        assert_eq!(bare.slice_cycles, 0);
        let bad = |flag: &str, v: &str| {
            DaemonOpts::parse(&["--uds".into(), "/tmp/g.sock".into(), flag.into(), v.into()])
        };
        assert!(bad("--qos-budget", "many").is_err());
        assert!(bad("--slice-cycles", "-1").is_err());
    }

    #[test]
    fn daemon_multi_gpu_args_parse() {
        let args: Vec<String> = [
            "--uds",
            "/tmp/g.sock",
            "--gpus",
            "2",
            "--pool-bytes",
            "8388608,4194304",
            "--allow-uid",
            "1000,1001",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = DaemonOpts::parse(&args).unwrap();
        assert_eq!(opts.gpus, 2);
        assert_eq!(opts.pool_config(), (None, Some(vec![8 << 20, 4 << 20])));
        match opts.uid_policy() {
            guardian::transport::UidPolicy::Allow(uids) => assert_eq!(uids, vec![1000, 1001]),
            other => panic!("expected explicit allowlist, got {other:?}"),
        }
        // Default policy is same-uid.
        let bare = DaemonOpts::parse(&["--uds".into(), "/tmp/g.sock".into()]).unwrap();
        match bare.uid_policy() {
            guardian::transport::UidPolicy::Allow(uids) => {
                assert_eq!(uids, vec![guardian::transport::peercred::current_uid()]);
            }
            other => panic!("expected same-uid default, got {other:?}"),
        }
        // Per-device pool list must match the gpu count.
        assert!(DaemonOpts::parse(&[
            "--uds".into(),
            "/tmp/g.sock".into(),
            "--gpus".into(),
            "3".into(),
            "--pool-bytes".into(),
            "1,2".into(),
        ])
        .is_err());
        // Tenant --hint parses.
        let t = TenantOpts::parse(&[
            "--transport".into(),
            "uds".into(),
            "--socket".into(),
            "/tmp/x".into(),
            "--hint".into(),
            "1".into(),
            "--workload".into(),
            "migrate".into(),
        ])
        .unwrap();
        assert_eq!(t.hint, Some(1));
        assert_eq!(t.workload, Workload::Migrate);
    }
}
