//! # guardiand — Guardian's manager as an OS daemon
//!
//! The paper's deployment model (§4): one trusted `grdManager` process
//! owns the GPU; untrusted tenants are *separate OS processes* whose
//! intercepted CUDA calls cross a real IPC boundary. This crate packages
//! that model:
//!
//! * the **`guardiand`** binary serves a manager over a Unix-domain
//!   socket and/or a shared-memory-ring endpoint;
//! * the **`grd-tenant`** binary is a tenant process: it dials a daemon,
//!   registers its kernels, and runs one of a few canned workloads
//!   (well-behaved fill loops, an out-of-bounds attack, an unbounded
//!   launch storm) — the raw material of the cross-process isolation
//!   suite in `tests/process_isolation.rs`;
//! * this library holds the argument parsing and workload logic both
//!   binaries share, so the test suite can reason about exit codes and
//!   stdout lines instead of duplicating workload code.
//!
//! Exit-code contract for `grd-tenant` (asserted by the tests):
//! `0` — workload completed as intended (for `oob` that means Guardian
//! terminated *us*, and only us); `2` — bad usage; `3` — unexpected
//! runtime failure.

#![warn(missing_docs)]

use cuda_rt::{ArgPack, CudaApi, CudaError, CudaResult};
use gpu_sim::LaunchConfig;
use guardian::{GrdLib, Protection};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Which wire the tenant uses to reach the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// Unix-domain-socket framing.
    Uds,
    /// Shared-memory rings (handshake over the socket path).
    Shm,
}

impl Wire {
    /// Parse `"uds"` / `"shm"`.
    ///
    /// # Errors
    ///
    /// A usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "uds" => Ok(Wire::Uds),
            "shm" => Ok(Wire::Shm),
            other => Err(format!("unknown transport `{other}` (want uds|shm)")),
        }
    }
}

/// A canned tenant workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `iters` fill launches with periodic syncs; verifies results.
    Fill,
    /// One out-of-bounds stomp aimed just past the tenant's own
    /// partition; expects Guardian to terminate this tenant.
    Oob,
    /// Unbounded launch storm (runs until killed or the daemon is gone).
    Storm,
}

impl Workload {
    /// Parse `"fill"` / `"oob"` / `"storm"`.
    ///
    /// # Errors
    ///
    /// A usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fill" => Ok(Workload::Fill),
            "oob" => Ok(Workload::Oob),
            "storm" => Ok(Workload::Storm),
            other => Err(format!("unknown workload `{other}` (want fill|oob|storm)")),
        }
    }
}

/// Parsed `grd-tenant` command line.
#[derive(Debug, Clone)]
pub struct TenantOpts {
    /// Transport to dial.
    pub wire: Wire,
    /// Daemon socket path.
    pub socket: PathBuf,
    /// Partition size to request at connect.
    pub mem: u64,
    /// Workload to run after connecting.
    pub workload: Workload,
    /// Iteration count for bounded workloads.
    pub iters: u32,
    /// Milliseconds to hold the tenancy idle between the `ready` banner
    /// and the workload. Lets a supervisor observe several tenants
    /// holding partitions *concurrently* (the isolation tests use this
    /// so a fast tenant cannot finish — and free its partition — before
    /// a slow sibling even connects).
    pub hold_ms: u64,
}

impl TenantOpts {
    /// Parse `grd-tenant` arguments:
    /// `--transport uds|shm --socket PATH [--mem BYTES] [--workload W]
    /// [--iters N]`.
    ///
    /// # Errors
    ///
    /// A usage message naming the offending flag.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut wire = None;
        let mut socket = None;
        let mut mem = 4 << 20;
        let mut workload = Workload::Fill;
        let mut iters = 50;
        let mut hold_ms = 0;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--transport" => wire = Some(Wire::parse(&value("--transport")?)?),
                "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
                "--mem" => {
                    mem = value("--mem")?.parse().map_err(|e| format!("--mem: {e}"))?;
                }
                "--workload" => workload = Workload::parse(&value("--workload")?)?,
                "--iters" => {
                    iters = value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?;
                }
                "--hold-ms" => {
                    hold_ms = value("--hold-ms")?
                        .parse()
                        .map_err(|e| format!("--hold-ms: {e}"))?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(TenantOpts {
            wire: wire.ok_or("--transport is required")?,
            socket: socket.ok_or("--socket is required")?,
            mem,
            workload,
            iters,
            hold_ms,
        })
    }
}

/// Parsed `guardiand` command line.
#[derive(Debug, Clone)]
pub struct DaemonOpts {
    /// Unix-socket endpoint to serve, if any.
    pub uds: Option<PathBuf>,
    /// Shared-memory endpoint (handshake socket path) to serve, if any.
    pub shm: Option<PathBuf>,
    /// Partition pool size; `None` = half of device memory.
    pub pool_bytes: Option<u64>,
    /// Bounds-enforcement mode.
    pub protection: Protection,
    /// Acknowledge launches at enqueue (`false`) or run them as one-way
    /// deferred sends (`true`).
    pub deferred: bool,
}

impl DaemonOpts {
    /// Parse `guardiand` arguments:
    /// `[--uds PATH] [--shm PATH] [--pool-bytes N]
    /// [--protection fence|modulo|check|none] [--deferred]`.
    ///
    /// # Errors
    ///
    /// A usage message; at least one of `--uds`/`--shm` is required.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = DaemonOpts {
            uds: None,
            shm: None,
            pool_bytes: None,
            protection: Protection::FenceBitwise,
            deferred: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--uds" => opts.uds = Some(PathBuf::from(value("--uds")?)),
                "--shm" => opts.shm = Some(PathBuf::from(value("--shm")?)),
                "--pool-bytes" => {
                    opts.pool_bytes = Some(
                        value("--pool-bytes")?
                            .parse()
                            .map_err(|e| format!("--pool-bytes: {e}"))?,
                    );
                }
                "--protection" => {
                    opts.protection = match value("--protection")?.as_str() {
                        "fence" => Protection::FenceBitwise,
                        "modulo" => Protection::FenceModulo,
                        "check" => Protection::Check,
                        "none" => Protection::None,
                        other => {
                            return Err(format!(
                                "unknown protection `{other}` (want fence|modulo|check|none)"
                            ))
                        }
                    };
                }
                "--deferred" => opts.deferred = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if opts.uds.is_none() && opts.shm.is_none() {
            return Err("at least one of --uds/--shm is required".into());
        }
        Ok(opts)
    }
}

/// The PTX every tenant registers: the well-behaved `fill` kernel plus
/// the `stomp` attack (both from `guardian::fixtures`), packaged as one
/// fatbin — registration itself thus crosses the process boundary.
pub fn tenant_fatbin() -> Vec<u8> {
    let mut fb = ptx::fatbin::FatBin::new();
    fb.push_ptx("app", guardian::fixtures::FILL);
    fb.push_ptx("attack", guardian::fixtures::STOMP);
    fb.to_bytes().to_vec()
}

/// Dial the daemon, retrying while it finishes starting up (the parent
/// spawns daemon and tenants concurrently; a bounded retry window
/// de-races them without any out-of-band synchronization).
///
/// # Errors
///
/// The last dial error once `window` is exhausted.
pub fn dial_retry(
    wire: Wire,
    socket: &std::path::Path,
    mem: u64,
    window: Duration,
) -> CudaResult<GrdLib> {
    let deadline = Instant::now() + window;
    loop {
        let r = match wire {
            Wire::Uds => GrdLib::dial_uds(socket, mem),
            Wire::Shm => GrdLib::dial_shm(socket, mem),
        };
        match r {
            Ok(lib) => return Ok(lib),
            // Pool exhaustion is a real answer, not a startup race.
            Err(CudaError::OutOfMemory) => return Err(CudaError::OutOfMemory),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Run a tenant workload to its exit code (the `grd-tenant` contract).
/// Emits `fill-ok` / `oob-terminated` progress lines on stdout.
pub fn run_workload(lib: &mut GrdLib, workload: Workload, iters: u32) -> i32 {
    match workload {
        Workload::Fill => run_fill(lib, iters),
        Workload::Oob => run_oob(lib),
        Workload::Storm => run_storm(lib),
    }
}

fn run_fill(lib: &mut GrdLib, iters: u32) -> i32 {
    let n = 64u32;
    let buf = match lib.cuda_malloc(4 * n as u64) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("grd-tenant: malloc failed: {e}");
            return 3;
        }
    };
    let args = ArgPack::new().ptr(buf).u32(n).finish();
    for i in 0..iters {
        let r = lib.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        );
        if let Err(e) = r {
            eprintln!("grd-tenant: launch {i} failed: {e}");
            return 3;
        }
        if i % 10 == 9 {
            if let Err(e) = lib.cuda_device_synchronize() {
                eprintln!("grd-tenant: sync at {i} failed: {e}");
                return 3;
            }
        }
    }
    if let Err(e) = lib.cuda_device_synchronize() {
        eprintln!("grd-tenant: final sync failed: {e}");
        return 3;
    }
    match lib.cuda_memcpy_d2h(buf, 4 * n as u64) {
        Ok(out) => {
            for i in 0..n {
                let got = u32::from_le_bytes(out[i as usize * 4..][..4].try_into().expect("4"));
                if got != i {
                    eprintln!("grd-tenant: out[{i}] = {got}, isolation broken?");
                    return 3;
                }
            }
            println!("fill-ok");
            0
        }
        Err(e) => {
            eprintln!("grd-tenant: readback failed: {e}");
            3
        }
    }
}

/// Launch `stomp` at the first byte past our own partition; Guardian
/// must terminate exactly this tenant. Success (exit 0) means we
/// observed our own death certificate.
fn run_oob(lib: &mut GrdLib) -> i32 {
    let (base, size) = lib.partition();
    let args = ArgPack::new().ptr(base + size).u32(0x4141_4141).finish();
    if let Err(e) = lib.cuda_launch_kernel(
        "stomp",
        LaunchConfig::linear(1, 1),
        &args,
        Default::default(),
    ) {
        eprintln!("grd-tenant: oob launch rejected at enqueue: {e}");
        return 3;
    }
    // Under checking-mode protection the fault surfaces at sync; under
    // fencing the store wraps into our own partition and we stay alive —
    // both are correct confinement, but this workload is only meaningful
    // under `--protection check`.
    if lib.cuda_device_synchronize().is_ok() {
        eprintln!("grd-tenant: oob sync succeeded (fencing mode? wrong daemon config)");
        return 3;
    }
    // Guardian must keep rejecting us — the kill is sticky.
    match lib.cuda_malloc(16) {
        Err(CudaError::Rejected(_)) => {
            println!("oob-terminated");
            0
        }
        r => {
            eprintln!("grd-tenant: expected sticky rejection, got {r:?}");
            3
        }
    }
}

/// Launch storm: as fast as the transport carries frames, until killed.
/// Never syncs, so under deferred acks this is pure one-way traffic.
fn run_storm(lib: &mut GrdLib) -> i32 {
    let buf = match lib.cuda_malloc(4 * 64) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("grd-tenant: malloc failed: {e}");
            return 3;
        }
    };
    let args = ArgPack::new().ptr(buf).u32(64).finish();
    let mut n = 0u64;
    loop {
        let r = lib.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        );
        if r.is_err() {
            // The daemon went away first; that's the end of the storm,
            // not a tenant bug.
            return 0;
        }
        n += 1;
        if n.is_multiple_of(4096) {
            // Bound the one-way queue so a deferred-mode storm cannot
            // outrun the device unboundedly.
            let _ = lib.cuda_device_synchronize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_args_parse() {
        let args: Vec<String> = [
            "--transport",
            "shm",
            "--socket",
            "/tmp/g.sock",
            "--mem",
            "1048576",
            "--workload",
            "storm",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = TenantOpts::parse(&args).unwrap();
        assert_eq!(opts.wire, Wire::Shm);
        assert_eq!(opts.mem, 1 << 20);
        assert_eq!(opts.workload, Workload::Storm);
        assert!(TenantOpts::parse(&["--socket".into(), "/tmp/x".into()]).is_err());
        assert!(TenantOpts::parse(&["--bogus".into()]).is_err());
    }

    #[test]
    fn daemon_args_parse() {
        let args: Vec<String> = [
            "--uds",
            "/tmp/g.sock",
            "--pool-bytes",
            "8388608",
            "--deferred",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = DaemonOpts::parse(&args).unwrap();
        assert_eq!(
            opts.uds.as_deref(),
            Some(std::path::Path::new("/tmp/g.sock"))
        );
        assert_eq!(opts.pool_bytes, Some(8 << 20));
        assert!(opts.deferred);
        // No endpoint at all is a usage error.
        assert!(DaemonOpts::parse(&[]).is_err());
    }
}
