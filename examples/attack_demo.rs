//! The Figure 1 attack under every sharing deployment: a malicious tenant
//! aims a store at a victim's buffer. Shows who gets hurt in each model.
//!
//! Run with: `cargo run --release -p bench --example attack_demo`

use cuda_rt::{share_device, ArgPack};
use gpu_sim::spec::rtx_a4000;
use gpu_sim::{Device, LaunchConfig};
use guardian::backends::{deploy, Deployment};
use ptx::fatbin::FatBin;

const EVIL: &str = r#"
.version 7.7
.target sm_86
.address_size 64
.visible .entry stomp(.param .u64 target, .param .u32 v)
{
    .reg .b32 %r<2>;
    .reg .b64 %rd<2>;
    ld.param.u64 %rd1, [target];
    ld.param.u32 %r1, [v];
    st.global.u32 [%rd1], %r1;
    ret;
}
"#;

fn main() {
    let mut fb = FatBin::new();
    fb.push_ptx("attack", EVIL);
    let fb = fb.to_bytes().to_vec();

    for deployment in [
        Deployment::GuardianNoProtection,
        Deployment::Mps,
        Deployment::Native,
        Deployment::GuardianFencing,
        Deployment::GuardianChecking,
    ] {
        let device = share_device(Device::new(rtx_a4000()));
        let mut t = deploy(&device, deployment, 2, 64 << 20, &[&fb]).expect("deploy");
        // Victim stores a secret.
        let secret = 0xDEAD_BEEFu32;
        let victim_buf = t.runtimes[1].cuda_malloc(4096).expect("victim malloc");
        t.runtimes[1]
            .cuda_memcpy_h2d(victim_buf, &secret.to_le_bytes())
            .expect("victim h2d");
        // Attacker launches a store aimed at the victim's address.
        let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
        let _ = t.runtimes[0].cuda_launch_kernel(
            "stomp",
            LaunchConfig::linear(1, 1),
            &args,
            Default::default(),
        );
        let attacker_alive = t.runtimes[0].cuda_device_synchronize().is_ok();
        let victim_read = t.runtimes[1].cuda_memcpy_d2h(victim_buf, 4);
        let (victim_alive, intact) = match victim_read {
            Ok(bytes) => {
                let v = u32::from_le_bytes(bytes.try_into().unwrap());
                (t.runtimes[1].cuda_device_synchronize().is_ok(), v == secret)
            }
            Err(_) => (false, false),
        };
        println!(
            "{deployment:<42} attacker alive: {:<5} victim alive: {:<5} data intact: {}",
            attacker_alive, victim_alive, intact
        );
        // `t` drops here: tenants disconnect, then the manager joins.
    }
    println!("\nExpected: no-protection corrupts silently; MPS kills everyone;\nnative survives by not sharing spatially; Guardian fencing keeps the\nvictim intact with everyone alive; checking terminates only the attacker.");
}
