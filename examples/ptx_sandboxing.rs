//! Offline sandboxing walkthrough: the paper's Listing 1, mechanically.
//! Prints a kernel before and after each Guardian instrumentation mode.
//!
//! Run with: `cargo run --release -p bench --example ptx_sandboxing`

use ptx_patcher::{patch_module, Protection};

const KERNEL: &str = r#"
.version 7.7
.target sm_86
.address_size 64
.visible .entry kernel(
    .param .u64 kernel_param_0,
    .param .u32 kernel_param_1)
{
    .reg .b32 %r<3>;
    .reg .b64 %rd<5>;
    ld.param.u64 %rd1, [kernel_param_0];
    ld.param.u32 %r1, [kernel_param_1];
    cvta.to.global.u64 %rd2, %rd1;
    mov.u32 %r2, %tid.x;
    mul.wide.s32 %rd3, %r1, 4;
    add.s64 %rd4, %rd2, %rd3;
    st.global.u32 [%rd4], %r2;
    ret;
}
"#;

fn main() {
    let module = ptx::parse(KERNEL).expect("parse");
    println!("=== original PTX (the paper's Listing 1 kernel, unpatched) ===");
    println!("{module}");
    for mode in [
        Protection::FenceBitwise,
        Protection::FenceModulo,
        Protection::Check,
    ] {
        let patched = patch_module(&module, mode).expect("patch");
        println!("=== sandboxed with {mode} ===");
        println!("{}", patched.module);
        let info = &patched.info[0];
        println!(
            "-- instrumented {} stores / {} loads, {} instructions added\n",
            info.stores, info.loads, info.added_instructions
        );
    }
    println!("The bitwise mode reproduces Listing 1: two extra parameters, extra");
    println!("registers, and an and.b64/or.b64 pair before the global store.");
}
