//! Quickstart: two tenants share one GPU safely under Guardian.
//!
//! Run with: `cargo run --release -p bench --example quickstart`

use cuda_rt::{share_device, ArgPack};
use gpu_sim::spec::rtx_a4000;
use gpu_sim::{Device, LaunchConfig};
use guardian::backends::{deploy, Deployment};
use ptx::fatbin::FatBin;

const KERNEL: &str = r#"
.version 7.7
.target sm_86
.address_size 64
.visible .entry scale_add(.param .u64 x, .param .u32 n, .param .f32 a)
{
    .reg .pred %p<2>;
    .reg .b32 %r<6>;
    .reg .f32 %f<3>;
    .reg .b64 %rd<5>;
    ld.param.u64 %rd1, [x];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    cvta.to.global.u64 %rd2, %rd1;
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra $L_end;
    mul.wide.u32 %rd3, %r5, 4;
    add.s64 %rd4, %rd2, %rd3;
    ld.global.f32 %f2, [%rd4];
    fma.rn.f32 %f2, %f2, %f1, %f1;
    st.global.f32 [%rd4], %f2;
$L_end:
    ret;
}
"#;

fn main() {
    // 1. Bring up a simulated RTX A4000 and a Guardian deployment with two
    //    tenants, 64 MiB partition each. The kernel fatbin is sandboxed
    //    offline by the manager at startup.
    let mut fb = FatBin::new();
    fb.push_ptx("app", KERNEL);
    let fb = fb.to_bytes().to_vec();
    let device = share_device(Device::new(rtx_a4000()));
    let mut tenancy =
        deploy(&device, Deployment::GuardianFencing, 2, 64 << 20, &[&fb]).expect("deploy guardian");

    // 2. Each tenant works in its own partition, through the standard
    //    CUDA-style API. Guardian is transparent.
    for (i, api) in tenancy.runtimes.iter_mut().enumerate() {
        let n = 1024u32;
        let buf = api.cuda_malloc(4 * n as u64).expect("malloc");
        let host: Vec<u8> = (0..n).flat_map(|v| (v as f32).to_le_bytes()).collect();
        api.cuda_memcpy_h2d(buf, &host).expect("h2d");
        let args = ArgPack::new().ptr(buf).u32(n).f32(2.0).finish();
        api.cuda_launch_kernel(
            "scale_add",
            LaunchConfig::linear(8, 128),
            &args,
            Default::default(),
        )
        .expect("launch");
        api.cuda_device_synchronize().expect("sync");
        let out = api.cuda_memcpy_d2h(buf, 16).expect("d2h");
        let v0 = f32::from_le_bytes(out[0..4].try_into().unwrap());
        let v1 = f32::from_le_bytes(out[4..8].try_into().unwrap());
        println!("tenant {i}: x[0] = {v0}, x[1] = {v1} (expected 2.0, 4.0)");
    }

    // 3. Cross-tenant access is impossible: transfers are bounds-checked,
    //    kernels are fenced.
    let foreign = tenancy.runtimes[1].cuda_malloc(4096).expect("malloc");
    let denied = tenancy.runtimes[0].cuda_memcpy_d2h(foreign, 64);
    println!("tenant 0 reading tenant 1's buffer: {denied:?}");

    println!(
        "simulated device time: {:.3} ms",
        device.lock().elapsed_secs() * 1e3
    );
    // Teardown is Drop-based: tenants disconnect, then the manager handle
    // joins the grdManager's threads.
}
