//! The manager behind real IPC: one grdManager serving a Unix-socket
//! endpoint and a shared-memory-ring endpoint at the same time, with
//! tenants dialing in over both.
//!
//! The tenants here are threads (so the example is self-contained), but
//! every frame genuinely crosses the socket / ring — the exact same
//! wires `guardiand` serves to separate OS processes:
//!
//! ```console
//! $ guardiand --uds /tmp/guardian.sock --shm /tmp/guardian-shm.sock
//! $ grd-tenant --transport shm --socket /tmp/guardian-shm.sock --workload fill
//! ```

use cuda_rt::{share_device, ArgPack, CudaApi};
use gpu_sim::spec::test_gpu;
use gpu_sim::{Device, LaunchConfig};
use guardian::{spawn_manager_over, BoundTransport, GrdLib, ManagerConfig};
use ptx::fatbin::FatBin;

fn main() {
    let uds_path = std::env::temp_dir().join(format!("grd-example-{}.sock", std::process::id()));
    let shm_path =
        std::env::temp_dir().join(format!("grd-example-{}-shm.sock", std::process::id()));

    // One manager, one partition pool, two wire formats.
    let mut fb = FatBin::new();
    fb.push_ptx("app", guardian::fixtures::FILL);
    let fb = fb.to_bytes().to_vec();
    let transport = BoundTransport::merge(vec![
        BoundTransport::uds(&uds_path).expect("bind uds"),
        BoundTransport::shm(&shm_path).expect("bind shm"),
    ]);
    let manager = spawn_manager_over(
        share_device(Device::new(test_gpu())),
        ManagerConfig {
            pool_bytes: Some(16 << 20),
            ..ManagerConfig::default()
        },
        &[&fb],
        transport,
    )
    .expect("spawn manager");
    println!(
        "manager listening on uds:{} shm:{}",
        uds_path.display(),
        shm_path.display()
    );

    // Two tenants, one per transport. Nothing in the workload knows (or
    // could find out) which wire carries its CUDA calls.
    let mut handles = Vec::new();
    for (name, lib) in [
        (
            "uds-tenant",
            GrdLib::dial_uds(&uds_path, 4 << 20).expect("dial uds"),
        ),
        (
            "shm-tenant",
            GrdLib::dial_shm(&shm_path, 4 << 20).expect("dial shm"),
        ),
    ] {
        handles.push(std::thread::spawn(move || {
            let mut lib = lib;
            let (base, size) = lib.partition();
            let buf = lib.cuda_malloc(4 * 64).expect("malloc");
            let args = ArgPack::new().ptr(buf).u32(64).finish();
            for _ in 0..20 {
                lib.cuda_launch_kernel(
                    "fill",
                    LaunchConfig::linear(2, 32),
                    &args,
                    Default::default(),
                )
                .expect("launch");
            }
            lib.cuda_device_synchronize().expect("sync");
            let out = lib.cuda_memcpy_d2h(buf, 4 * 64).expect("readback");
            let first = u32::from_le_bytes(out[..4].try_into().expect("4 bytes"));
            let last = u32::from_le_bytes(out[252..256].try_into().expect("4 bytes"));
            println!(
                "{name}: partition [{base:#x}, +{size} bytes), fill verified \
                 (out[0]={first}, out[63]={last})"
            );
            assert_eq!((first, last), (0, 63));
            // Cross-partition transfers are rejected at the boundary,
            // wire or no wire.
            assert!(lib.cuda_memcpy_h2d(base + size, &[0u8; 4]).is_err());
        }));
    }
    for h in handles {
        h.join().expect("tenant thread");
    }
    manager.shutdown();
    let _ = std::fs::remove_file(&shm_path);
    println!("both tenants confined and verified; manager shut down cleanly");
}
