//! Three tenants train different networks concurrently on one GPU under
//! Guardian address fencing — the paper's headline scenario.
//!
//! Run with: `cargo run --release -p bench --example multi_tenant_training`

use cuda_rt::lockstep::Lockstep;
use cuda_rt::share_device;
use frameworks::{train, Network, TrainConfig};
use gpu_sim::spec::rtx_a4000;
use gpu_sim::Device;
use guardian::backends::{deploy, Deployment};

fn main() {
    let device = share_device(Device::new(rtx_a4000()));
    let tenancy = deploy(&device, Deployment::GuardianFencing, 3, 64 << 20, &[]).expect("deploy");
    let nets = [Network::Lenet, Network::Cifar10, Network::Siamese];
    // Round-robin lockstep makes the printed makespan reproducible.
    let runtimes = Lockstep::wrap_all(tenancy.runtimes);
    let mut handles = Vec::new();
    for (mut rt, net) in runtimes.into_iter().zip(nets) {
        handles.push(std::thread::spawn(move || {
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 4,
                batches_per_epoch: 2,
                lr: 0.2,
                seed: 42,
            };
            let report = train(rt.as_mut(), net, &cfg).expect("training");
            (net, report)
        }));
    }
    for h in handles {
        let (net, r) = h.join().expect("tenant");
        println!(
            "{net:?}: loss {:.3} -> {:.3}, final batch accuracy {:.0}%",
            r.first_epoch_loss,
            r.last_epoch_loss,
            r.final_accuracy * 100.0
        );
    }
    let mut dev = device.lock();
    dev.synchronize();
    println!(
        "makespan: {:.3} ms simulated, {} kernels launched, {} faults",
        dev.elapsed_secs() * 1e3,
        dev.total_launches(),
        dev.fault_log().len()
    );
    drop(dev);
    // The manager's threads are joined when `tenancy` drops here.
}
