//! Multi-tenant dispatch stress: 4+ tenants hammer the grdManager from
//! concurrent OS threads with interleaved mallocs, memcpys, memsets, and
//! launches. Asserts the dispatch core is deadlock-free, isolation
//! invariants hold under contention, out-of-bounds kills only the
//! offender, and — the point of the split control/data-plane design —
//! data-plane operations from distinct tenants genuinely overlap.
//!
//! CI runs this suite in `--release` so dispatch regressions and
//! deadlocks fail the pipeline.

use bench::stress_fatbin;
use cuda_rt::{share_device, ArgPack, CudaApi, CudaError};
use gpu_sim::spec::test_gpu;
use gpu_sim::{Device, LaunchConfig};
use guardian::{
    spawn_manager, DispatchMode, GrdLib, LaunchAck, ManagerConfig, ManagerHandle, Protection,
};
use std::alloc::{GlobalAlloc, Layout, System};

/// A pass-through allocator that reports every allocation into
/// `guardian::alloc_audit`, arming the library's debug assertion that
/// the steady-state launch admission path never touches the heap.
struct CountingAlloc;

// SAFETY: delegates entirely to `System`; the count bump is a
// thread-local Cell update and cannot itself allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        guardian::alloc_audit::note_alloc();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        guardian::alloc_audit::note_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn manager(dispatch: DispatchMode, protection: Protection, ack: LaunchAck) -> ManagerHandle {
    let device = share_device(Device::new(test_gpu()));
    let fb = stress_fatbin();
    spawn_manager(
        device,
        ManagerConfig {
            protection,
            dispatch,
            launch_ack: ack,
            ..ManagerConfig::default()
        },
        &[&fb],
    )
    .expect("spawn manager")
}

/// One tenant's stress loop: `iters` rounds of interleaved malloc /
/// memset / h2d / launch / sync / d2h-verify / free, with allocations
/// rotating so the per-client heap churns. Panics on any isolation or
/// correctness violation.
fn tenant_loop(mut lib: GrdLib, seed: u32, iters: usize) {
    const N: u32 = 64;
    let mut bufs: Vec<u64> = Vec::new();
    for i in 0..iters {
        let buf = lib.cuda_malloc(4 * N as u64).expect("malloc");
        // Pattern unique to this tenant and round.
        let tag = seed.wrapping_mul(0x9E37).wrapping_add(i as u32);
        lib.cuda_memset(buf, (tag & 0xFF) as u8, 4 * N as u64)
            .expect("memset");
        let host: Vec<u8> = (0..N).flat_map(|v| (v ^ tag).to_le_bytes()).collect();
        lib.cuda_memcpy_h2d(buf, &host).expect("h2d");
        let args = ArgPack::new().ptr(buf).u32(N).finish();
        lib.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        )
        .expect("launch");
        if i % 8 == 0 {
            lib.cuda_device_synchronize().expect("sync");
        }
        // Isolation/correctness invariant: after sync, the buffer holds
        // exactly what *this* tenant's kernel wrote — no cross-tenant
        // interference regardless of how the data planes interleave.
        if i % 16 == 0 {
            lib.cuda_device_synchronize().expect("sync before verify");
            let out = lib.cuda_memcpy_d2h(buf, 4 * N as u64).expect("d2h");
            for j in 0..N {
                let v = u32::from_le_bytes(out[j as usize * 4..][..4].try_into().unwrap());
                assert_eq!(v, j, "tenant {seed} round {i}: buffer corrupted");
            }
        }
        bufs.push(buf);
        // Free every other allocation to keep the heap churning without
        // unbounded growth.
        if bufs.len() >= 4 {
            let victim = bufs.remove(0);
            lib.cuda_free(victim).expect("free");
        }
    }
    lib.cuda_device_synchronize().expect("final sync");
    for b in bufs {
        lib.cuda_free(b).expect("final free");
    }
}

/// 4 tenants × hundreds of interleaved ops on concurrent OS threads:
/// deadlock-free, correct, and the data planes *demonstrably overlap*
/// (the high-water mark of simultaneously executing data-plane ops
/// exceeds 1 — impossible under the old single-queue dispatch).
#[test]
fn four_tenants_interleaved_ops_overlap_and_stay_isolated() {
    let mgr = manager(
        DispatchMode::Concurrent,
        Protection::FenceBitwise,
        LaunchAck::Eager,
    );
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let lib = GrdLib::connect(&mgr, 2 << 20).expect("connect");
        handles.push(std::thread::spawn(move || tenant_loop(lib, t, 200)));
    }
    for h in handles {
        h.join().expect("tenant thread");
    }
    let overlap = mgr.max_concurrent_data_ops();
    assert!(
        overlap >= 2,
        "data-plane ops never overlapped (max in-flight {overlap}); \
         dispatch has regressed to serial"
    );
    mgr.shutdown();
}

/// The serial baseline (the old dispatch core, kept for lockstep
/// determinism) must never overlap: the witness stays at exactly 1.
#[test]
fn serial_baseline_never_overlaps() {
    let mgr = manager(
        DispatchMode::Serial,
        Protection::FenceBitwise,
        LaunchAck::Eager,
    );
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let lib = GrdLib::connect(&mgr, 2 << 20).expect("connect");
        handles.push(std::thread::spawn(move || tenant_loop(lib, t, 50)));
    }
    for h in handles {
        h.join().expect("tenant thread");
    }
    assert_eq!(
        mgr.max_concurrent_data_ops(),
        1,
        "serial dispatch leaked concurrency"
    );
    mgr.shutdown();
}

/// Under full 4-tenant stress, an out-of-bounds attacker is terminated
/// while the other three tenants run to completion unharmed.
#[test]
fn oob_kills_only_the_offender_under_stress() {
    let mgr = manager(
        DispatchMode::Concurrent,
        Protection::Check,
        LaunchAck::Eager,
    );
    // Three well-behaved tenants under way...
    let mut handles = Vec::new();
    for t in 0..3u32 {
        let lib = GrdLib::connect(&mgr, 2 << 20).expect("connect");
        handles.push(std::thread::spawn(move || tenant_loop(lib, t, 100)));
    }
    // ...while the fourth aims a store outside its own partition.
    let mut evil = GrdLib::connect(&mgr, 2 << 20).expect("connect evil");
    let (base, size) = evil.partition();
    let args = ArgPack::new()
        .ptr(base + size + 4096)
        .u32(0x41414141)
        .finish();
    evil.cuda_launch_kernel(
        "stomp",
        LaunchConfig::linear(1, 1),
        &args,
        Default::default(),
    )
    .expect("attack enqueues");
    // Address checking detects the violation; Guardian terminates the
    // offender at its next synchronization point...
    assert!(evil.cuda_device_synchronize().is_err(), "offender survived");
    assert!(
        matches!(evil.cuda_malloc(16), Err(CudaError::Rejected(_))),
        "terminated client can still allocate"
    );
    // ...and the innocent tenants' stress loops finish clean (their
    // panics would propagate through join).
    for h in handles {
        h.join().expect("innocent tenant was harmed");
    }
    // Disconnect the offender before shutdown: the manager handle's drop
    // joins session threads, which end when their client half drops.
    drop(evil);
    mgr.shutdown();
}

/// Deferred-ack mode: launches are true one-way enqueues, and launch
/// errors surface at the next synchronization point (CUDA's asynchronous
/// error model) instead of at the call site.
#[test]
fn deferred_ack_surfaces_launch_errors_at_sync() {
    let mgr = manager(
        DispatchMode::Concurrent,
        Protection::FenceBitwise,
        LaunchAck::Deferred,
    );
    let mut lib = GrdLib::connect(&mgr, 2 << 20).expect("connect");
    // A launch of a nonexistent kernel "succeeds" at the call site...
    let r = lib.cuda_launch_kernel(
        "no_such_kernel",
        LaunchConfig::linear(1, 1),
        &[],
        Default::default(),
    );
    assert!(r.is_ok(), "deferred launch should not block on errors");
    // ...and the error arrives, sticky, at the synchronization point.
    assert!(
        matches!(
            lib.cuda_device_synchronize(),
            Err(CudaError::InvalidDeviceFunction(_))
        ),
        "deferred launch error did not surface at sync"
    );
    // The error is consumed: the tenant continues afterwards.
    lib.cuda_device_synchronize()
        .expect("error was not sticky-once");
    drop(lib);
    mgr.shutdown();
}

/// The steady-state launch admission path performs zero heap
/// allocations. After a warmup phase (session cache resolved, buffer
/// pools and stream queues at capacity), the audit is armed and every
/// subsequent warm admission `debug_assert!`s that the allocation
/// counter did not move between frame decode and batch admission
/// (see `guardian::alloc_audit`). Runs meaningfully in debug builds;
/// in release the assertions compile out and this degrades to a smoke
/// test of the same path.
#[test]
fn steady_state_launch_path_is_allocation_free() {
    let mgr = manager(
        DispatchMode::Concurrent,
        Protection::FenceBitwise,
        LaunchAck::Deferred,
    );
    let mut lib = GrdLib::connect(&mgr, 2 << 20).expect("connect");
    let buf = lib.cuda_malloc(4 * 64).expect("malloc");
    let args = ArgPack::new().ptr(buf).u32(64).finish();
    let burst = |lib: &mut GrdLib| {
        for _ in 0..256 {
            lib.cuda_launch_kernel(
                "fill",
                LaunchConfig::linear(2, 32),
                &args,
                Default::default(),
            )
            .expect("launch");
        }
        lib.cuda_device_synchronize().expect("sync");
    };
    // Warmup: resolve the kernel into the session cache, grow the
    // pending buffer, param pool, and device queue to steady state.
    burst(&mut lib);
    guardian::alloc_audit::arm(true);
    burst(&mut lib);
    guardian::alloc_audit::arm(false);
    lib.cuda_free(buf).expect("free");
    drop(lib);
    mgr.shutdown();
}

/// QoS bookkeeping rides the audited launch admission window without
/// adding heap touches: the per-tenant inflight tick, the class check,
/// and the executor gauge updates are all plain atomics. Same shape as
/// the steady-state test above, but with a latency-class tenant and a
/// deliberately tight inflight budget so the over-budget comparison is
/// exercised on every warm admission — if QoS bookkeeping ever grows an
/// allocation, this trips in debug builds before the integrated suite
/// does.
#[test]
fn qos_bookkeeping_is_allocation_free() {
    let device = share_device(Device::new(test_gpu()));
    let fb = stress_fatbin();
    let mgr = spawn_manager(
        device,
        ManagerConfig {
            dispatch: DispatchMode::Concurrent,
            launch_ack: LaunchAck::Deferred,
            qos_inflight_budget: 8,
            ..ManagerConfig::default()
        },
        &[&fb],
    )
    .expect("spawn manager");
    let mut lib =
        GrdLib::connect_opts(&mgr, 2 << 20, None, guardian::QosClass::Latency).expect("connect");
    assert_eq!(lib.qos(), guardian::QosClass::Latency);
    let buf = lib.cuda_malloc(4 * 64).expect("malloc");
    let args = ArgPack::new().ptr(buf).u32(64).finish();
    let burst = |lib: &mut GrdLib| {
        for _ in 0..256 {
            lib.cuda_launch_kernel(
                "fill",
                LaunchConfig::linear(2, 32),
                &args,
                Default::default(),
            )
            .expect("launch");
        }
        lib.cuda_device_synchronize().expect("sync");
    };
    burst(&mut lib);
    guardian::alloc_audit::arm(true);
    burst(&mut lib);
    guardian::alloc_audit::arm(false);
    drop(lib);
    mgr.shutdown();
}

/// Telemetry recording itself is allocation-free after construction:
/// histogram recording, quantile-free snapshots aside, and flight-ring
/// writes all run inside an armed audit window without moving the
/// counter. This is the direct witness behind running the steady-state
/// test above with telemetry on (the manager default) — if recording
/// ever grows a heap touch, this trips before the integrated path does.
#[test]
fn telemetry_recording_is_allocation_free() {
    use guardian::telemetry::{FlightRecorder, Histogram, TraceEvent};
    let hist = Histogram::new();
    let ring = FlightRecorder::new(64);
    // Touch both once so any lazy setup happens before arming.
    hist.record(1_000);
    ring.record(TraceEvent::default());
    guardian::alloc_audit::arm(true);
    guardian::alloc_audit::mark();
    for i in 0..10_000u64 {
        hist.record(i * 37 + 1);
        ring.record(TraceEvent {
            op: (i % 5) as u8,
            client: i as u32,
            t_decode_ns: i,
            t_enqueue_ns: i + 10,
            ..TraceEvent::default()
        });
    }
    guardian::alloc_audit::assert_unchanged("telemetry recording");
    guardian::alloc_audit::arm(false);
    assert_eq!(hist.snapshot().count(), 10_001);
    assert_eq!(ring.recorded(), 10_001);
}

/// Deferred-ack throughput path under multi-tenant stress: hundreds of
/// fire-and-forget launches from 4 tenants complete without deadlock and
/// with correct results at the synchronization points.
#[test]
fn deferred_ack_stress_completes() {
    let mgr = manager(
        DispatchMode::Concurrent,
        Protection::FenceBitwise,
        LaunchAck::Deferred,
    );
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let lib = GrdLib::connect(&mgr, 2 << 20).expect("connect");
        handles.push(std::thread::spawn(move || tenant_loop(lib, t, 100)));
    }
    for h in handles {
        h.join().expect("tenant thread");
    }
    mgr.shutdown();
}
