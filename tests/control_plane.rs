//! Node control plane, end to end over real OS processes: a live
//! `guardiand` with an admin socket, operated by the real `guardianctl`
//! binary, with tenants dialing over uds.
//!
//! Covers the control-plane acceptance story: `guardianctl` lists
//! devices and tenants, sets and revokes leases, and scrapes
//! Prometheus-text metrics; a TTL-expired lease is reclaimed by the
//! manager without any operator action (the partition becomes
//! re-allocatable); and a per-uid connect-rate gate sheds a reconnect
//! storm without wedging the daemon for later, slower clients.
//!
//! Wired as an integration test of the `guardiand` crate so
//! `CARGO_BIN_EXE_*` resolves to the daemon and ctl binaries. CI runs
//! it in release under a hard timeout.

use cuda_rt::CudaApi;
use guardian::GrdLib;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DAEMON_BIN: &str = env!("CARGO_BIN_EXE_guardiand");
const CTL_BIN: &str = env!("CARGO_BIN_EXE_guardianctl");

/// Generous deadline for any single cross-process step.
const STEP_TIMEOUT: Duration = Duration::from_secs(60);

fn temp_sock(tag: &str) -> PathBuf {
    guardian::fixtures::temp_socket_path(&format!("cp-{tag}"))
}

/// A `guardiand` child with a tenant socket and an admin socket; killed
/// and cleaned up on drop.
struct Daemon {
    child: Child,
    socket: PathBuf,
    admin: PathBuf,
}

impl Daemon {
    /// Spawn a daemon serving uds tenants plus the admin plane.
    fn spawn(tag: &str, extra_args: &[&str]) -> Daemon {
        let socket = temp_sock(&format!("{tag}-t"));
        let admin = temp_sock(&format!("{tag}-a"));
        let child = Command::new(DAEMON_BIN)
            .arg("--uds")
            .arg(&socket)
            .arg("--admin-socket")
            .arg(&admin)
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn guardiand");
        Daemon {
            child,
            socket,
            admin,
        }
    }

    /// Run `guardianctl` against this daemon's admin socket, retrying
    /// dial failures through the daemon's startup window. Returns
    /// `(exit_code, stdout)`.
    fn ctl(&self, args: &[&str]) -> (i32, String) {
        let deadline = Instant::now() + STEP_TIMEOUT;
        loop {
            let out = Command::new(CTL_BIN)
                .arg("--socket")
                .arg(&self.admin)
                .args(args)
                .output()
                .expect("run guardianctl");
            let stderr = String::from_utf8_lossy(&out.stderr);
            if stderr.contains("cannot dial") && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            return (
                out.status.code().unwrap_or(-1),
                String::from_utf8_lossy(&out.stdout).into_owned(),
            );
        }
    }

    /// As [`Daemon::ctl`], asserting success.
    fn ctl_ok(&self, args: &[&str]) -> String {
        let (code, out) = self.ctl(args);
        assert_eq!(code, 0, "guardianctl {args:?} failed; stdout: {out}");
        out
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
        let _ = std::fs::remove_file(&self.admin);
    }
}

/// Dial the daemon's tenant socket, retrying through startup races and
/// not-yet-reclaimed partitions.
fn dial_until(socket: &PathBuf, mem: u64) -> GrdLib {
    let deadline = Instant::now() + STEP_TIMEOUT;
    loop {
        match GrdLib::dial_uds(socket, mem) {
            Ok(lib) => return lib,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not connect to daemon within {STEP_TIMEOUT:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

// ---- admin tables and metrics -------------------------------------------------

/// `guardianctl devices|tenants|quota|metrics` against a live daemon:
/// every table carries the node id, the tenant table shows the live
/// tenancy with its uid and usage, and the metrics scrape is
/// well-formed Prometheus text exposition.
#[test]
fn guardianctl_lists_devices_tenants_and_scrapes_metrics() {
    let pool = (8u64 << 20).to_string();
    let daemon = Daemon::spawn("tables", &["--pool-bytes", &pool, "--node-id", "ctl-node"]);
    let mut lib = dial_until(&daemon.socket, 2 << 20);
    // Generate some accountable usage.
    let buf = lib.cuda_malloc(4096).expect("malloc");
    lib.cuda_memcpy_h2d(buf, &[1u8; 256]).expect("h2d");
    lib.cuda_device_synchronize().expect("sync");

    let devices = daemon.ctl_ok(&["devices"]);
    assert!(devices.contains("node ctl-node"), "no node id: {devices}");
    assert!(devices.contains("8M"), "no pool column: {devices}");

    let uid = guardian::transport::peercred::current_uid().to_string();
    let tenants = daemon.ctl_ok(&["tenants"]);
    assert!(tenants.contains("1 tenant(s)"), "wrong count: {tenants}");
    assert!(
        tenants.split_whitespace().any(|w| w == uid),
        "tenant row missing uid {uid}: {tenants}"
    );

    let quota = daemon.ctl_ok(&["quota", &uid]);
    assert!(
        quota.split_whitespace().any(|w| w == uid),
        "quota row missing uid {uid}: {quota}"
    );

    let metrics = daemon.ctl_ok(&["metrics"]);
    assert!(
        metrics.contains("# TYPE guardian_device_pool_bytes gauge"),
        "not Prometheus text: {metrics}"
    );
    assert!(
        metrics.contains("guardian_device_pool_bytes{node=\"ctl-node\",device=\"0\"} 8388608"),
        "pool gauge missing: {metrics}"
    );
    assert!(
        metrics.contains("guardian_uid_transfer_bytes_total"),
        "transfer counter missing: {metrics}"
    );
    drop(lib);
}

// ---- lease set / revoke -------------------------------------------------------

/// `guardianctl lease set` changes admission terms for future connects
/// (streams=0 denies outright), and `lease revoke` of a live tenancy
/// reclaims its partition for the next tenant.
#[test]
fn lease_set_gates_admission_and_revoke_reclaims() {
    let pool = (4u64 << 20).to_string();
    let daemon = Daemon::spawn("lease", &["--pool-bytes", &pool]);
    // Make sure the daemon is up before making admission stricter.
    drop(dial_until(&daemon.socket, 1 << 20));

    let uid = guardian::transport::peercred::current_uid().to_string();
    daemon.ctl_ok(&["lease", "set", &uid, "streams=0"]);
    assert!(
        GrdLib::dial_uds(&daemon.socket, 1 << 20).is_err(),
        "streams=0 lease must deny admission"
    );

    // Restore admission and take the whole pool.
    daemon.ctl_ok(&["lease", "set", &uid, "streams=4"]);
    let mut held = dial_until(&daemon.socket, 4 << 20);
    let client = held.client_id().0.to_string();
    let ptr = held.cuda_malloc(4096).expect("malloc under lease");
    held.cuda_memcpy_h2d(ptr, &[9u8; 64]).expect("h2d");

    // Revoke it by client id; the pool's single partition comes back.
    daemon.ctl_ok(&["lease", "revoke", &client]);
    let mut next = dial_until(&daemon.socket, 4 << 20);
    let buf = next.cuda_malloc(4096).expect("malloc in reclaimed pool");
    next.cuda_memcpy_h2d(buf, &[3u8; 64]).expect("h2d");
    next.cuda_device_synchronize().expect("sync");
    assert_eq!(next.cuda_memcpy_d2h(buf, 64).expect("d2h"), vec![3u8; 64]);

    // The revoked tenancy is dead: its next device call fails.
    assert!(
        held.cuda_device_synchronize().is_err(),
        "revoked tenant must not keep computing"
    );
    // Revoking an unknown client is an error, not a panic.
    let (code, _) = daemon.ctl(&["lease", "revoke", "99999"]);
    assert_eq!(code, 1, "bogus revoke must fail");
    drop((held, next));
}

// ---- TTL expiry ---------------------------------------------------------------

/// A tenancy admitted under `--lease-default ttl=…` is reclaimed by the
/// manager when the TTL lapses — no operator in the loop — and its
/// memory is immediately re-allocatable. The expiry shows up in the
/// metrics exposition.
#[test]
fn ttl_expiry_reclaims_partition_without_operator() {
    let pool = (4u64 << 20).to_string();
    let daemon = Daemon::spawn(
        "ttl",
        &["--pool-bytes", &pool, "--lease-default", "ttl=400ms"],
    );
    let mut leased = dial_until(&daemon.socket, 4 << 20);
    let ptr = leased.cuda_malloc(4096).expect("malloc under lease");
    leased.cuda_memcpy_h2d(ptr, &[5u8; 64]).expect("h2d");

    // No admin call from here on: the sweep alone must reclaim. The
    // pool holds exactly one partition, so this connect can only
    // succeed once the expired tenancy is gone.
    let mut next = dial_until(&daemon.socket, 4 << 20);
    let buf = next.cuda_malloc(4096).expect("malloc after expiry");
    next.cuda_memcpy_h2d(buf, &[8u8; 64]).expect("h2d");
    next.cuda_device_synchronize().expect("sync");
    assert_eq!(next.cuda_memcpy_d2h(buf, 64).expect("d2h"), vec![8u8; 64]);
    assert!(
        leased.cuda_device_synchronize().is_err(),
        "expired tenant must not keep computing"
    );

    let metrics = daemon.ctl_ok(&["metrics"]);
    let expired = metrics
        .lines()
        .find(|l| l.starts_with("guardian_leases_expired_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(expired >= 1, "expiry not accounted: {metrics}");
    drop((leased, next));
}

// ---- connect-rate admission ---------------------------------------------------

/// With `--max-connect-rate`, a reconnect storm from one uid is shed at
/// the accept loop (dropped pre-handshake, counted in metrics) while
/// the daemon keeps serving: a patient client still gets in afterwards.
#[test]
fn connect_rate_gate_sheds_reconnect_storm() {
    let pool = (32u64 << 20).to_string();
    let daemon = Daemon::spawn("rate", &["--pool-bytes", &pool, "--max-connect-rate", "1"]);
    // Prove the daemon is up with one admitted connection before the
    // storm: any dial failure past this point is the daemon talking,
    // not a not-yet-bound socket.
    let mut held = vec![dial_until(&daemon.socket, 256 << 10)];
    // Hammer connects, holding every admitted one alive — with nothing
    // released, a failed dial can only be the rate gate (never an
    // allocator still reclaiming a just-dropped partition). At one
    // token a second the gate must shed a burst's worth long before
    // the loaded-machine deadline.
    let mut rejected = 0;
    let deadline = Instant::now() + STEP_TIMEOUT;
    while rejected < 5 {
        assert!(
            Instant::now() < deadline,
            "rate gate shed only {rejected} connects in {STEP_TIMEOUT:?} \
             ({} admitted)",
            held.len()
        );
        // 256 KiB partitions: the 32 MiB pool outlasts a worst-case
        // minute of 1/s admissions, so exhaustion is impossible here.
        match GrdLib::dial_uds(&daemon.socket, 256 << 10) {
            Ok(lib) => held.push(lib),
            Err(cuda_rt::CudaError::OutOfMemory) => {
                panic!("pool exhausted — the rate gate admitted everything")
            }
            Err(_) => rejected += 1,
        }
    }

    // The rejections are visible to operators, and the gate meters
    // rather than wedges: a retrying client connects once tokens
    // refill.
    let metrics = daemon.ctl_ok(&["metrics"]);
    let shed = metrics
        .lines()
        .find(|l| l.starts_with("guardian_admission_rejected_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(shed >= 5, "rejections not accounted: {metrics}");
    drop(held);
    let lib = dial_until(&daemon.socket, 1 << 20);
    drop(lib);
}
