//! Cross-process isolation: the multi-tenant, OOB-offender-only, and
//! crash-reaping guarantees re-run with tenants as **real OS processes**
//! against a **real `guardiand` daemon process**, over both socket
//! transports.
//!
//! Everything the in-process suites assert about Guardian's isolation
//! story is only credible if it survives a genuine IPC boundary: here
//! every CUDA call crosses a Unix socket or a shared-memory ring between
//! processes, tenants are spawned with `spawn_tenant`, and the harshest
//! case — `kill -9` of a tenant mid-launch-storm — must still end with
//! the manager reclaiming the dead tenant's partition.
//!
//! Wired as an integration test of the `guardiand` crate so
//! `CARGO_BIN_EXE_*` resolves to the daemon and tenant binaries. CI runs
//! it in release under a hard timeout: a deadlocked cross-process
//! handshake fails the job fast instead of hanging it.

use cuda_rt::CudaApi;
use guardian::GrdLib;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, Receiver};
use std::time::{Duration, Instant};

const DAEMON_BIN: &str = env!("CARGO_BIN_EXE_guardiand");
const TENANT_BIN: &str = env!("CARGO_BIN_EXE_grd-tenant");
const CTL_BIN: &str = env!("CARGO_BIN_EXE_guardianctl");

/// Generous deadline for any single cross-process step (debug builds on
/// loaded CI machines are slow; correctness, not latency, is on trial).
const STEP_TIMEOUT: Duration = Duration::from_secs(60);

fn temp_sock(tag: &str) -> PathBuf {
    guardian::fixtures::temp_socket_path(&format!("pi-{tag}"))
}

/// A `guardiand` child process; killed and cleaned up on drop.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    /// Spawn a daemon serving `wire` at a fresh socket path.
    fn spawn(wire: &str, extra_args: &[&str]) -> Daemon {
        let socket = temp_sock(wire);
        let endpoint_flag = match wire {
            "uds" => "--uds",
            "shm" => "--shm",
            other => panic!("unknown wire {other}"),
        };
        let child = Command::new(DAEMON_BIN)
            .arg(endpoint_flag)
            .arg(&socket)
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn guardiand");
        Daemon { child, socket }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// A tenant child process plus a non-blocking view of its stdout.
struct Tenant {
    child: Child,
    lines: Receiver<String>,
}

/// Fork a real tenant process running `workload` against the daemon at
/// `socket` — the cross-process analogue of `GrdLib::connect`.
/// `hold_ms` keeps the tenancy idle between `ready` and the workload so
/// the caller can observe several tenants holding partitions at once.
fn spawn_tenant(
    wire: &str,
    socket: &PathBuf,
    mem: u64,
    workload: &str,
    iters: u32,
    hold_ms: u64,
) -> Tenant {
    spawn_tenant_hinted(wire, socket, mem, workload, iters, hold_ms, None)
}

/// [`spawn_tenant`] with a GPU pin (`--hint`) for multi-GPU daemons.
#[allow(clippy::too_many_arguments)]
fn spawn_tenant_hinted(
    wire: &str,
    socket: &PathBuf,
    mem: u64,
    workload: &str,
    iters: u32,
    hold_ms: u64,
    hint: Option<u32>,
) -> Tenant {
    let mut cmd = Command::new(TENANT_BIN);
    cmd.args(["--transport", wire])
        .arg("--socket")
        .arg(socket)
        .args(["--mem", &mem.to_string()])
        .args(["--workload", workload])
        .args(["--iters", &iters.to_string()])
        .args(["--hold-ms", &hold_ms.to_string()]);
    if let Some(h) = hint {
        cmd.args(["--hint", &h.to_string()]);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn grd-tenant");
    let stdout = child.stdout.take().expect("tenant stdout");
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Tenant { child, lines: rx }
}

impl Tenant {
    /// Wait for the tenant's `ready <client> <base> <size> <device>`
    /// banner; returns `(client, base, size)`.
    fn ready(&self) -> (u32, u64, u64) {
        let (client, base, size, _device) = self.ready_on();
        (client, base, size)
    }

    /// As [`Tenant::ready`], also returning the GPU index the daemon
    /// placed the tenant on.
    fn ready_on(&self) -> (u32, u64, u64, u32) {
        let deadline = Instant::now() + STEP_TIMEOUT;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let line = self
                .lines
                .recv_timeout(left)
                .expect("tenant never became ready");
            if let Some(rest) = line.strip_prefix("ready ") {
                let mut parts = rest.split_whitespace();
                let client = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("client id");
                let base = parts.next().and_then(|s| s.parse().ok()).expect("base");
                let size = parts.next().and_then(|s| s.parse().ok()).expect("size");
                let device = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                return (client, base, size, device);
            }
        }
    }

    /// Wait until the tenant has printed at least `n` lines starting
    /// with `prefix` (e.g. migration-hop progress).
    fn await_lines(&self, prefix: &str, n: usize) {
        let deadline = Instant::now() + STEP_TIMEOUT;
        let mut seen = 0;
        while seen < n {
            let left = deadline.saturating_duration_since(Instant::now());
            let line = self.lines.recv_timeout(left).unwrap_or_else(|_| {
                panic!("tenant printed only {seen}/{n} `{prefix}` lines in {STEP_TIMEOUT:?}")
            });
            if line.starts_with(prefix) {
                seen += 1;
            }
        }
    }

    /// Wait for exit, collecting the rest of stdout.
    fn join(mut self) -> (i32, Vec<String>) {
        let deadline = Instant::now() + STEP_TIMEOUT;
        let status = loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => break status,
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("tenant did not exit within {STEP_TIMEOUT:?}");
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        // Drain the rest of stdout without racing the reader thread: the
        // child may have exited before its buffered pipe data was
        // forwarded. The reader drops its sender at pipe EOF, so wait
        // for the disconnect rather than snapshotting with try_recv.
        let mut out = Vec::new();
        let drain_deadline = Instant::now() + STEP_TIMEOUT;
        loop {
            match self.lines.recv_timeout(Duration::from_millis(50)) {
                Ok(line) => out.push(line),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if Instant::now() > drain_deadline {
                        break;
                    }
                }
            }
        }
        (status.code().unwrap_or(-1), out)
    }

    /// SIGKILL, mid-whatever-it-was-doing.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9 tenant");
        let _ = self.child.wait();
    }
}

/// Dial the daemon from this (test) process, retrying through startup
/// races and not-yet-reclaimed partitions.
fn dial_until(wire: &str, socket: &PathBuf, mem: u64) -> GrdLib {
    dial_until_hinted(wire, socket, mem, None)
}

/// [`dial_until`] pinned to a GPU (strict placement hint).
fn dial_until_hinted(wire: &str, socket: &PathBuf, mem: u64, hint: Option<u32>) -> GrdLib {
    let hint = hint.map(guardian::PlacementHint::pin);
    let deadline = Instant::now() + STEP_TIMEOUT;
    loop {
        let r = match wire {
            "uds" => GrdLib::dial_uds_hinted(socket, mem, hint),
            "shm" => GrdLib::dial_shm_hinted(socket, mem, hint),
            other => panic!("unknown wire {other}"),
        };
        match r {
            Ok(lib) => return lib,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not connect to daemon over {wire} within {STEP_TIMEOUT:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Run `guardianctl` against `admin`, retrying dial failures through
/// the daemon's startup window. Returns `(exit_code, stdout)`.
fn ctl(admin: &PathBuf, args: &[&str]) -> (i32, String) {
    let deadline = Instant::now() + STEP_TIMEOUT;
    loop {
        let out = Command::new(CTL_BIN)
            .arg("--socket")
            .arg(admin)
            .args(args)
            .output()
            .expect("run guardianctl");
        let stderr = String::from_utf8_lossy(&out.stderr);
        if stderr.contains("cannot dial") && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        return (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        );
    }
}

// ---- multi-tenant isolation -------------------------------------------------

/// Three concurrent tenant *processes* all run their fill workloads to
/// verified completion: partitions are disjoint and transfers/launches
/// are confined even with every call crossing the process boundary.
fn multi_tenant_isolation(wire: &str) {
    let daemon = Daemon::spawn(wire, &["--pool-bytes", &(32u64 << 20).to_string()]);
    let tenants: Vec<Tenant> = (0..3)
        .map(|_| spawn_tenant(wire, &daemon.socket, 4 << 20, "fill", 40, 1500))
        .collect();
    let mut partitions = Vec::new();
    for t in &tenants {
        let (_, base, size) = t.ready();
        partitions.push((base, size));
    }
    // Disjoint partitions across processes.
    for (i, &(a_base, a_size)) in partitions.iter().enumerate() {
        for &(b_base, b_size) in &partitions[i + 1..] {
            assert!(
                a_base + a_size <= b_base || b_base + b_size <= a_base,
                "partitions overlap: {partitions:?}"
            );
        }
    }
    for t in tenants {
        let (code, out) = t.join();
        assert_eq!(code, 0, "tenant failed; stdout: {out:?}");
        assert!(out.iter().any(|l| l == "fill-ok"), "no fill-ok in {out:?}");
    }
}

#[test]
fn multi_tenant_isolation_across_processes_uds() {
    multi_tenant_isolation("uds");
}

#[test]
fn multi_tenant_isolation_across_processes_shm() {
    multi_tenant_isolation("shm");
}

// ---- OOB kills only the offender ---------------------------------------------

/// An out-of-bounds attacker process is terminated by Guardian — and
/// *only* it: the victim process, connected over the same daemon, keeps
/// computing and verifying results.
fn oob_kills_only_the_offender(wire: &str) {
    let daemon = Daemon::spawn(
        wire,
        &[
            "--pool-bytes",
            &(16u64 << 20).to_string(),
            "--protection",
            "check",
        ],
    );
    let victim = spawn_tenant(wire, &daemon.socket, 4 << 20, "fill", 80, 500);
    victim.ready();
    let offender = spawn_tenant(wire, &daemon.socket, 4 << 20, "oob", 1, 0);
    offender.ready();

    let (code, out) = offender.join();
    assert_eq!(code, 0, "offender saw the wrong ending; stdout: {out:?}");
    assert!(
        out.iter().any(|l| l == "oob-terminated"),
        "offender was not terminated by Guardian: {out:?}"
    );
    let (code, out) = victim.join();
    assert_eq!(code, 0, "victim must be unaffected; stdout: {out:?}");
    assert!(out.iter().any(|l| l == "fill-ok"), "no fill-ok in {out:?}");
}

#[test]
fn oob_kills_only_the_offender_uds() {
    oob_kills_only_the_offender("uds");
}

#[test]
fn oob_kills_only_the_offender_shm() {
    oob_kills_only_the_offender("shm");
}

// ---- crash reaping / kill -9 mid-storm ---------------------------------------

/// `kill -9` a tenant in the middle of a launch storm; the manager must
/// notice the vanished connection, drain the dead tenant's queued work,
/// and return its partition to the pool — proven by a new tenant
/// acquiring the *same* partition and using it. The pool holds exactly
/// one partition, so reclamation is the only way the second connect can
/// succeed.
fn sigkill_mid_storm_reclaims_partition(wire: &str, daemon_extra: &[&str]) {
    let pool = (4u64 << 20).to_string();
    let mut args = vec!["--pool-bytes", pool.as_str()];
    args.extend_from_slice(daemon_extra);
    let daemon = Daemon::spawn(wire, &args);

    let mut storm = spawn_tenant(wire, &daemon.socket, 4 << 20, "storm", 0, 0);
    let (_, storm_base, _) = storm.ready();
    // Let the storm rage long enough that frames are genuinely in flight
    // when the SIGKILL lands.
    std::thread::sleep(Duration::from_millis(200));
    storm.kill9();

    // The partition comes back (dial_until retries through OutOfMemory
    // while the manager reaps), and it is the same one.
    let mut lib = dial_until(wire, &daemon.socket, 4 << 20);
    assert_eq!(
        lib.partition().0,
        storm_base,
        "expected the dead tenant's partition to be reused"
    );
    // And it is fully usable: the dead tenant's drained storm left no
    // stale commands behind.
    let buf = lib
        .cuda_malloc(4096)
        .expect("malloc in reclaimed partition");
    lib.cuda_memcpy_h2d(buf, &[7u8; 64]).expect("h2d");
    lib.cuda_device_synchronize().expect("sync");
    assert_eq!(
        lib.cuda_memcpy_d2h(buf, 64).expect("d2h"),
        vec![7u8; 64],
        "reclaimed partition corrupted"
    );
}

#[test]
fn sigkill_mid_storm_reclaims_partition_uds() {
    sigkill_mid_storm_reclaims_partition("uds", &[]);
}

#[test]
fn sigkill_mid_storm_reclaims_partition_shm() {
    // Deferred acks: the storm is pure one-way ring traffic, the hardest
    // case for crash detection (no reply ever un-blocks the tenant).
    sigkill_mid_storm_reclaims_partition("shm", &["--deferred"]);
}

// ---- crash mid-migration ------------------------------------------------------

/// `kill -9` a tenant while it ping-pongs its partition between two
/// GPUs. Whatever instant the SIGKILL lands at — mid-copy, between
/// hops, mid-verify — the manager must end up with **both** devices'
/// pools fully reclaimed: the migration path frees the source as part
/// of the move, and the vanished-connection path frees wherever the
/// tenant died. Each device's pool holds exactly one partition, so a
/// pinned full-pool connect on *each* GPU is possible only if nothing
/// leaked on either side.
fn sigkill_mid_migration_reclaims_both_partitions(wire: &str) {
    let pool = (4u64 << 20).to_string();
    let daemon = Daemon::spawn(wire, &["--gpus", "2", "--pool-bytes", pool.as_str()]);

    let mut mig = spawn_tenant_hinted(wire, &daemon.socket, 4 << 20, "migrate", 0, 0, Some(0));
    let (_, _, _, device) = mig.ready_on();
    assert_eq!(device, 0, "hint-pinned tenant must start on device 0");
    // Let it complete a few hops so the kill genuinely races live
    // migration machinery, then strike.
    mig.await_lines("migrated ", 3);
    mig.kill9();

    // Both GPUs' pools come back whole (dial retries through the reap).
    let a = dial_until_hinted(wire, &daemon.socket, 4 << 20, Some(0));
    assert_eq!(a.device(), 0);
    let mut b = dial_until_hinted(wire, &daemon.socket, 4 << 20, Some(1));
    assert_eq!(b.device(), 1);
    // And the reclaimed partitions are usable: no stale copies or
    // commands from the dead migrator land in them.
    let buf = b.cuda_malloc(4096).expect("malloc on reclaimed device 1");
    b.cuda_memcpy_h2d(buf, &[0x5Au8; 256]).expect("h2d");
    b.cuda_device_synchronize().expect("sync");
    assert_eq!(
        b.cuda_memcpy_d2h(buf, 256).expect("d2h"),
        vec![0x5Au8; 256],
        "reclaimed partition corrupted"
    );
    drop((a, b));
}

#[test]
fn sigkill_mid_migration_reclaims_both_partitions_uds() {
    sigkill_mid_migration_reclaims_both_partitions("uds");
}

#[test]
fn sigkill_mid_migration_reclaims_both_partitions_shm() {
    sigkill_mid_migration_reclaims_both_partitions("shm");
}

// ---- lease lifecycle under crashes --------------------------------------------

/// A tenant *process* admitted under a short default TTL is reclaimed
/// by the manager alone when the lease lapses: the pool's only
/// partition becomes re-allocatable with no operator (and no tenant
/// cooperation — the tenant is mid-hold when the lease ends), and the
/// evicted process observes its tenancy as dead rather than hanging.
#[test]
fn ttl_expiry_evicts_tenant_process_and_reclaims_partition() {
    let pool = (4u64 << 20).to_string();
    let daemon = Daemon::spawn(
        "uds",
        &["--pool-bytes", &pool, "--lease-default", "ttl=400ms"],
    );
    // The tenant holds its partition idle well past the TTL before
    // trying to compute.
    let t = spawn_tenant("uds", &daemon.socket, 4 << 20, "fill", 10, 3000);
    t.ready();
    // Reclamation happens while the tenant still *thinks* it is holding:
    // this full-pool connect succeeds only once the lease was swept.
    let mut lib = dial_until("uds", &daemon.socket, 4 << 20);
    let buf = lib.cuda_malloc(4096).expect("malloc after expiry");
    lib.cuda_memcpy_h2d(buf, &[6u8; 64]).expect("h2d");
    lib.cuda_device_synchronize().expect("sync");
    assert_eq!(lib.cuda_memcpy_d2h(buf, 64).expect("d2h"), vec![6u8; 64]);
    // The evicted process fails fast (exit 3: runtime failure) instead
    // of computing on a partition it no longer owns.
    let (code, out) = t.join();
    assert_eq!(code, 3, "evicted tenant must fail its workload: {out:?}");
    assert!(
        !out.iter().any(|l| l == "fill-ok"),
        "evicted tenant must not verify a fill: {out:?}"
    );
}

/// `guardianctl lease revoke` of a tenant mid-launch-storm drains and
/// kills only the offender: a victim process computing alongside on the
/// same daemon finishes its workload untouched.
#[test]
fn revocation_mid_storm_kills_only_the_offender() {
    let admin = temp_sock("revoke-admin");
    let pool = (16u64 << 20).to_string();
    let admin_s = admin.display().to_string();
    let daemon = Daemon::spawn(
        "uds",
        &["--pool-bytes", &pool, "--admin-socket", admin_s.as_str()],
    );
    let victim = spawn_tenant("uds", &daemon.socket, 4 << 20, "fill", 80, 500);
    victim.ready();
    let storm = spawn_tenant("uds", &daemon.socket, 4 << 20, "storm", 0, 0);
    let (offender, _, _) = storm.ready();
    // Let frames be genuinely in flight when the revocation lands.
    std::thread::sleep(Duration::from_millis(200));
    let (code, out) = ctl(&admin, &["lease", "revoke", &offender.to_string()]);
    assert_eq!(code, 0, "revoke failed: {out}");

    // The storm ends (the tenant sees its tenancy die and exits clean —
    // same contract as daemon shutdown), the victim never notices.
    let (code, out) = storm.join();
    assert_eq!(code, 0, "revoked storm must exit cleanly: {out:?}");
    let (code, out) = victim.join();
    assert_eq!(code, 0, "victim must be unaffected: {out:?}");
    assert!(out.iter().any(|l| l == "fill-ok"), "no fill-ok in {out:?}");
    let _ = std::fs::remove_file(&admin);
}

/// `kill -9` of a *leased* tenant releases its quota hold: the usage it
/// accrued stays on the books (retired launches survive), but its held
/// bytes drop to zero and the partition returns to the pool.
#[test]
fn sigkill_of_leased_tenant_releases_quota() {
    let admin = temp_sock("quota-admin");
    let pool = (4u64 << 20).to_string();
    let admin_s = admin.display().to_string();
    let daemon = Daemon::spawn(
        "uds",
        &[
            "--pool-bytes",
            &pool,
            "--lease-default",
            "mem=8M",
            "--admin-socket",
            admin_s.as_str(),
        ],
    );
    let mut storm = spawn_tenant("uds", &daemon.socket, 4 << 20, "storm", 0, 0);
    storm.ready();
    std::thread::sleep(Duration::from_millis(200));
    storm.kill9();

    // Partition reclaimed (the pool holds exactly one), then released
    // again by a graceful disconnect.
    let lib = dial_until("uds", &daemon.socket, 4 << 20);
    drop(lib);

    // The uid's quota row converges to zero live tenancy and zero held
    // bytes while keeping the dead tenant's retired launches.
    let uid = guardian::transport::peercred::current_uid().to_string();
    let deadline = Instant::now() + STEP_TIMEOUT;
    loop {
        let (code, out) = ctl(&admin, &["quota", &uid]);
        assert_eq!(code, 0, "quota query failed: {out}");
        let row: Vec<&str> = out
            .lines()
            .map(|l| l.split_whitespace().collect::<Vec<_>>())
            .find(|f| f.first() == Some(&uid.as_str()))
            .unwrap_or_default();
        // uid dev live held launches xfers xfer-bytes occupancy
        if row.len() >= 5 && row[2] == "0" && row[3] == "0B" {
            let launches: u64 = row[4].parse().expect("launch count");
            assert!(launches > 0, "retired launches lost: {out}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "quota never released after SIGKILL: {out}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = std::fs::remove_file(&admin);
}

// ---- daemon robustness --------------------------------------------------------

/// A hostile peer speaking garbage at the socket must not take the
/// daemon down or wedge its accept loop: a well-behaved tenant connects
/// and works afterwards.
#[test]
fn garbage_handshake_does_not_wedge_the_daemon() {
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    let daemon = Daemon::spawn("uds", &["--pool-bytes", &(8u64 << 20).to_string()]);
    // Wait until the daemon accepts connections at all.
    let probe = dial_until("uds", &daemon.socket, 1 << 20);
    drop(probe);
    // Garbage preamble, then an abrupt hangup mid-"frame".
    if let Ok(mut s) = UnixStream::connect(&daemon.socket) {
        let _ = s.write_all(b"HTTP/1.1 GET /gpu\r\n");
    }
    if let Ok(mut s) = UnixStream::connect(&daemon.socket) {
        let _ = s.write_all(&[b'G', b'R', b'D', 250]); // wrong version
    }
    // The daemon still serves real tenants.
    let t = spawn_tenant("uds", &daemon.socket, 4 << 20, "fill", 10, 0);
    t.ready();
    let (code, out) = t.join();
    assert_eq!(code, 0, "tenant failed after garbage clients: {out:?}");
}

// ---- graceful exit frees the partition ----------------------------------------

/// A tenant process that exits cleanly (Drop sends `Disconnect`) frees
/// its partition for the next process — the polite twin of the SIGKILL
/// case, across both transports in one scenario.
#[test]
fn graceful_exit_frees_partition_for_next_process() {
    let pool = (4u64 << 20).to_string();
    let uds_sock = temp_sock("both-uds");
    let shm_sock = temp_sock("both-shm");
    let child = Command::new(DAEMON_BIN)
        .arg("--uds")
        .arg(&uds_sock)
        .arg("--shm")
        .arg(&shm_sock)
        .args(["--pool-bytes", pool.as_str()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn guardiand");
    let daemon = Daemon {
        child,
        socket: uds_sock.clone(),
    };
    // First tenant over uds takes the whole pool and exits cleanly.
    let t = spawn_tenant("uds", &uds_sock, 4 << 20, "fill", 10, 0);
    t.ready();
    let (code, _) = t.join();
    assert_eq!(code, 0);
    // Second tenant over *shm* gets the freed partition: both endpoints
    // front one pool.
    let t = spawn_tenant("shm", &shm_sock, 4 << 20, "fill", 10, 0);
    t.ready();
    let (code, out) = t.join();
    assert_eq!(code, 0, "shm tenant failed: {out:?}");
    drop(daemon);
    let _ = std::fs::remove_file(&shm_sock);
}
