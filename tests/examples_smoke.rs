//! Smoke test: every `examples/` binary runs to completion.
//!
//! Each example is a user-facing entry point (quickstart, attack demo,
//! sandboxing walkthrough, multi-tenant training); this keeps them from
//! silently rotting as the API evolves.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "ptx_sandboxing",
    "attack_demo",
    "multi_tenant_training",
    "socket_transports",
];

/// Operator-quickstart smoke: a `guardiand` with an admin socket comes
/// up and `guardianctl metrics` scrapes well-formed Prometheus text
/// from it — the exact two commands the README's Operations section
/// opens with.
#[test]
fn guardianctl_metrics_smoke() {
    use std::time::{Duration, Instant};

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let socket = guardian::fixtures::temp_socket_path("smoke-t");
    let admin = guardian::fixtures::temp_socket_path("smoke-a");
    let mut daemon = Command::new(&cargo)
        .args([
            "run",
            "--quiet",
            "-p",
            "guardiand",
            "--bin",
            "guardiand",
            "--",
        ])
        .arg("--uds")
        .arg(&socket)
        .arg("--admin-socket")
        .arg(&admin)
        .args(["--node-id", "smoke-node"])
        .current_dir(&workspace_root)
        .env("CARGO_NET_OFFLINE", "true")
        .spawn()
        .expect("spawn guardiand");

    // Scrape until the daemon finishes building + binding (one cargo
    // invocation may compile first; generous deadline).
    let deadline = Instant::now() + Duration::from_secs(240);
    let text = loop {
        let out = Command::new(&cargo)
            .args([
                "run",
                "--quiet",
                "-p",
                "guardiand",
                "--bin",
                "guardianctl",
                "--",
            ])
            .arg("--socket")
            .arg(&admin)
            .arg("metrics")
            .current_dir(&workspace_root)
            .env("CARGO_NET_OFFLINE", "true")
            .output()
            .expect("run guardianctl");
        if out.status.success() {
            break String::from_utf8_lossy(&out.stdout).into_owned();
        }
        assert!(
            Instant::now() < deadline,
            "guardianctl never scraped the daemon: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    let _ = daemon.kill();
    let _ = daemon.wait();
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&admin);
    assert!(
        text.contains("# TYPE guardian_device_pool_bytes gauge"),
        "not Prometheus text: {text}"
    );
    assert!(
        text.contains("node=\"smoke-node\""),
        "node label missing: {text}"
    );
    // Telemetry families render valid Prometheus text even on an idle
    // daemon: the histogram family carries HELP/TYPE lines, every op
    // series terminates in an +Inf bucket, and cumulative bucket counts
    // are monotonically non-decreasing within each series.
    assert!(
        text.contains("# HELP guardian_op_latency_seconds"),
        "latency HELP line missing: {text}"
    );
    assert!(
        text.contains("# TYPE guardian_op_latency_seconds histogram"),
        "latency TYPE line missing: {text}"
    );
    assert!(text.contains("le=\"+Inf\""), "+Inf bucket missing: {text}");
    assert!(
        text.contains("# TYPE guardian_exec_drain_batches_total counter"),
        "exec counter TYPE line missing: {text}"
    );
    let mut cum: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for line in text.lines() {
        if !line.starts_with("guardian_op_latency_seconds_bucket{") {
            continue;
        }
        let op_start = line.find("op=\"").expect("op label") + 4;
        let op = &line[op_start..op_start + line[op_start..].find('"').expect("op close")];
        let count: u64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparsable bucket line: {line}"));
        let prev = cum.entry(op).or_insert(0);
        assert!(
            count >= *prev,
            "bucket counts not cumulative for op {op}: {count} < {prev}"
        );
        *prev = count;
    }
    assert!(!cum.is_empty(), "no latency bucket series rendered: {text}");
    // The QoS families render as well-formed Prometheus text even on an
    // idle daemon: both gauges carry TYPE lines, the gated-rounds
    // counter exists (zero here — nothing to gate), and the per-class
    // latency histogram declares itself.
    for family in [
        "# TYPE guardian_qos_tenants gauge",
        "# TYPE guardian_qos_inflight_launches gauge",
        "# TYPE guardian_qos_gated_rounds_total counter",
        "# TYPE guardian_qos_latency_seconds histogram",
    ] {
        assert!(text.contains(family), "missing `{family}` in: {text}");
    }
    assert!(
        text.contains("guardian_qos_gated_rounds_total{node=\"smoke-node\"} 0"),
        "idle daemon gated a drain round: {text}"
    );
}

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(&workspace_root)
            .env("CARGO_NET_OFFLINE", "true")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
