//! Smoke test: every `examples/` binary runs to completion.
//!
//! Each example is a user-facing entry point (quickstart, attack demo,
//! sandboxing walkthrough, multi-tenant training); this keeps them from
//! silently rotting as the API evolves.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "ptx_sandboxing",
    "attack_demo",
    "multi_tenant_training",
    "socket_transports",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(&workspace_root)
            .env("CARGO_NET_OFFLINE", "true")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
