//! QoS classes, end to end over real OS processes: a latency-class
//! inference tenant keeps its (generous) launch-complete SLO while 15
//! best-effort tenant processes run an unbounded launch storm against
//! the same daemon, and an operator demoting a lease re-classes the
//! live tenant without a reconnect.
//!
//! Wired as an integration test of the `guardiand` crate so
//! `CARGO_BIN_EXE_*` resolves to the daemon/tenant/ctl binaries. CI
//! runs it in release under a hard timeout.

use cuda_rt::{ArgPack, CudaApi};
use gpu_sim::LaunchConfig;
use guardian::{GrdLib, QosClass};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DAEMON_BIN: &str = env!("CARGO_BIN_EXE_guardiand");
const TENANT_BIN: &str = env!("CARGO_BIN_EXE_grd-tenant");
const CTL_BIN: &str = env!("CARGO_BIN_EXE_guardianctl");

/// Generous deadline for any single cross-process step.
const STEP_TIMEOUT: Duration = Duration::from_secs(60);

/// Best-effort storm processes contending with the priority tenant.
const STORM_TENANTS: usize = 15;

fn temp_sock(tag: &str) -> PathBuf {
    guardian::fixtures::temp_socket_path(&format!("qos-{tag}"))
}

/// A `guardiand` child with a tenant socket and an admin socket; killed
/// and cleaned up on drop.
struct Daemon {
    child: Child,
    socket: PathBuf,
    admin: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str, extra_args: &[&str]) -> Daemon {
        let socket = temp_sock(&format!("{tag}-t"));
        let admin = temp_sock(&format!("{tag}-a"));
        let child = Command::new(DAEMON_BIN)
            .arg("--uds")
            .arg(&socket)
            .arg("--admin-socket")
            .arg(&admin)
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn guardiand");
        Daemon {
            child,
            socket,
            admin,
        }
    }

    /// Run `guardianctl` against this daemon's admin socket, retrying
    /// dial failures through the daemon's startup window.
    fn ctl_ok(&self, args: &[&str]) -> String {
        let deadline = Instant::now() + STEP_TIMEOUT;
        loop {
            let out = Command::new(CTL_BIN)
                .arg("--socket")
                .arg(&self.admin)
                .args(args)
                .output()
                .expect("run guardianctl");
            let stderr = String::from_utf8_lossy(&out.stderr);
            if stderr.contains("cannot dial") && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            assert_eq!(
                out.status.code(),
                Some(0),
                "guardianctl {args:?} failed: {stderr}"
            );
            return String::from_utf8_lossy(&out.stdout).into_owned();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
        let _ = std::fs::remove_file(&self.admin);
    }
}

/// A best-effort storm tenant process, killed on drop.
struct Storm(Child);

impl Drop for Storm {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_storm(socket: &PathBuf) -> Storm {
    let child = Command::new(TENANT_BIN)
        .args(["--transport", "uds"])
        .arg("--socket")
        .arg(socket)
        .args(["--mem", "1048576"])
        .args(["--workload", "storm"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn grd-tenant storm");
    Storm(child)
}

/// Dial the daemon's tenant socket with a QoS request, retrying through
/// the startup window.
fn dial_qos(socket: &PathBuf, mem: u64, qos: QosClass) -> GrdLib {
    let deadline = Instant::now() + STEP_TIMEOUT;
    loop {
        match GrdLib::dial_uds_qos(socket, mem, qos) {
            Ok(lib) => return lib,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not connect to daemon within {STEP_TIMEOUT:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Parse the value of the first metrics line starting with `name`.
fn metric(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

// ---- SLO under a best-effort storm -------------------------------------------

/// One latency-class inference tenant against 15 best-effort storm
/// processes: every inference round (launch + sync) completes inside a
/// generous SLO because the executor rate-gates the storm's drain
/// rounds (visible in `guardian_qos_gated_rounds_total`), and the
/// tenants table reports both classes.
#[test]
fn priority_tenant_meets_slo_under_best_effort_storm() {
    let pool = (32u64 << 20).to_string();
    // Deferred launch acks let the storm pipeline its launches — the
    // regime where an ungated backlog actually buries the device — and
    // kernel slicing lets the latency stream preempt mid-kernel.
    let daemon = Daemon::spawn(
        "slo",
        &[
            "--pool-bytes",
            &pool,
            "--deferred",
            "--qos-budget",
            "8",
            "--slice-cycles",
            "2000",
        ],
    );

    // The priority tenant connects first (so the daemon is up), then
    // the storm fills in around it.
    let mut prio = dial_qos(&daemon.socket, 1 << 20, QosClass::Latency);
    assert_eq!(prio.qos(), QosClass::Latency, "latency grant refused");
    prio.register_fatbin(&guardiand::tenant_fatbin())
        .expect("register");
    let buf = prio.cuda_malloc(4 * 64).expect("malloc");
    let args = ArgPack::new().ptr(buf).u32(64).finish();

    let storms: Vec<Storm> = (0..STORM_TENANTS)
        .map(|_| spawn_storm(&daemon.socket))
        .collect();
    // Let the storm actually build up before measuring.
    std::thread::sleep(Duration::from_millis(300));

    // Inference rounds: launch + sync, paced like a serving loop. The
    // SLO is deliberately generous (this is CI, not a latency rig) —
    // without gating, a 15-tenant storm backlog stalls a device-wide
    // sync for far longer than this.
    let rounds = 40;
    let mut worst = Duration::ZERO;
    for _ in 0..rounds {
        let t0 = Instant::now();
        prio.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        )
        .expect("priority launch");
        prio.cuda_device_synchronize().expect("priority sync");
        worst = worst.max(t0.elapsed());
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        worst < Duration::from_secs(5),
        "priority tenant broke its SLO: worst round {worst:?}"
    );

    // The gate actually fired, and both classes are visible to the
    // operator.
    let metrics = daemon.ctl_ok(&["metrics"]);
    assert!(
        metric(&metrics, "guardian_qos_gated_rounds_total") > 0,
        "storm was never rate-gated: {metrics}"
    );
    assert!(
        metric(&metrics, "guardian_qos_tenants{node=") > 0
            || metrics.contains("guardian_qos_tenants"),
        "qos tenant gauge missing: {metrics}"
    );
    let tenants = daemon.ctl_ok(&["tenants"]);
    assert!(
        tenants.contains("latency"),
        "no latency row in tenants table: {tenants}"
    );
    assert!(
        tenants.contains("besteffort"),
        "no besteffort row in tenants table: {tenants}"
    );

    // The storm never died under the gate (rate-limited, not starved).
    for mut s in storms {
        assert!(
            s.0.try_wait().expect("try_wait").is_none(),
            "a storm tenant exited during the run"
        );
    }
    drop(prio);
}

// ---- live demotion via lease override ----------------------------------------

/// `guardianctl lease set UID qos=besteffort` demotes a live
/// latency-class tenant in place: the tenants table re-classes it, the
/// tenant observes the demotion on refresh (no reconnect), and future
/// latency requests from that uid are clamped to best-effort.
#[test]
fn lease_demotion_reclasses_live_tenant() {
    let pool = (8u64 << 20).to_string();
    let daemon = Daemon::spawn("demote", &["--pool-bytes", &pool]);
    let mut lib = dial_qos(&daemon.socket, 1 << 20, QosClass::Latency);
    assert_eq!(lib.qos(), QosClass::Latency);
    let uid = guardian::transport::peercred::current_uid().to_string();

    let tenants = daemon.ctl_ok(&["tenants"]);
    assert!(tenants.contains("latency"), "grant not visible: {tenants}");

    daemon.ctl_ok(&["lease", "set", &uid, "qos=besteffort"]);
    let tenants = daemon.ctl_ok(&["tenants"]);
    assert!(
        tenants.contains("besteffort") && !tenants.contains("latency"),
        "live tenant not demoted: {tenants}"
    );
    // The tenant sees it too, on its next binding refresh — the
    // session was never torn down.
    lib.refresh().expect("refresh over live session");
    assert_eq!(
        lib.qos(),
        QosClass::BestEffort,
        "demotion invisible to tenant"
    );
    lib.cuda_device_synchronize()
        .expect("demoted tenant must keep computing");

    // The lowered ceiling clamps future grants for this uid.
    let lib2 = dial_qos(&daemon.socket, 1 << 20, QosClass::Latency);
    assert_eq!(
        lib2.qos(),
        QosClass::BestEffort,
        "ceiling did not clamp a new latency request"
    );
    drop((lib, lib2));
}
