//! Multi-tenant scheduling behaviour: spatial sharing beats time-sharing,
//! MPS dispatch serializes, and all Table 4 workload ids run end-to-end.

use bench::{run_workload, workload};
use gpu_sim::spec::test_gpu;
use guardian::backends::Deployment;

/// Spatial sharing (Guardian) finishes a 2-tenant mix faster than native
/// time-sharing — the Figure 6 headline.
#[test]
fn spatial_sharing_beats_time_sharing() {
    let spec = test_gpu();
    let jobs = workload('E'); // 2x gaussian: truly concurrent-friendly
    let native = run_workload(&spec, Deployment::Native, &jobs);
    let fenced = run_workload(&spec, Deployment::GuardianFencing, &jobs);
    assert!(
        fenced < native,
        "guardian {fenced} should beat time-shared native {native}"
    );
}

/// Guardian with protection is slower than Guardian without (the fencing
/// instructions cost cycles), and both complete.
#[test]
fn fencing_costs_more_than_no_protection() {
    let spec = test_gpu();
    let jobs = workload('A');
    let noprot = run_workload(&spec, Deployment::GuardianNoProtection, &jobs);
    let fenced = run_workload(&spec, Deployment::GuardianFencing, &jobs);
    assert!(
        fenced >= noprot,
        "fencing {fenced} must not be faster than no-protection {noprot}"
    );
    // And the overhead is bounded (paper: single-digit percent; allow 25%
    // slack for the scaled-down workloads).
    assert!(fenced < noprot * 1.25, "fencing {fenced} vs {noprot}");
}

/// Every Table 4 workload id completes under Guardian fencing.
#[test]
fn all_workloads_complete_under_guardian() {
    let spec = test_gpu();
    for id in ['A', 'C', 'E', 'G', 'I', 'J', 'M', 'N', 'O'] {
        let jobs = workload(id);
        let t = run_workload(&spec, Deployment::GuardianFencing, &jobs);
        assert!(t > 0.0, "workload {id} produced no device time");
    }
}

/// Regression: measured makespans are bit-for-bit reproducible. The seed
/// let OS thread scheduling pick the order tenant calls reached the
/// simulated device, so mode-comparison tests flapped; tenant API streams
/// are now serialized through a deterministic round-robin turnstile
/// (`cuda_rt::lockstep`).
#[test]
fn makespan_is_deterministic_across_runs() {
    let spec = test_gpu();
    let jobs = workload('A');
    let first = run_workload(&spec, Deployment::GuardianFencing, &jobs);
    let second = run_workload(&spec, Deployment::GuardianFencing, &jobs);
    assert_eq!(
        first.to_bits(),
        second.to_bits(),
        "two identical runs measured {first} vs {second}"
    );
}

/// The three Guardian protection modes order as fencing <= modulo <=
/// checking in execution time (paper §4.4 cost ladder).
#[test]
fn protection_mode_cost_ladder() {
    let spec = test_gpu();
    let jobs = workload('A');
    let fence = run_workload(&spec, Deployment::GuardianFencing, &jobs);
    let modulo = run_workload(&spec, Deployment::GuardianModulo, &jobs);
    let check = run_workload(&spec, Deployment::GuardianChecking, &jobs);
    assert!(fence <= modulo * 1.01, "fence {fence} <= modulo {modulo}");
    assert!(modulo <= check * 1.01, "modulo {modulo} <= check {check}");
}
