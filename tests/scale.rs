//! Event-driven data-plane scaling: 64 tenants over a real Unix socket,
//! multiplexed onto the epoll executor pool — the regime the event
//! driver exists for (hundreds of mostly-idle sessions on ~cores
//! pollers) — plus the serial baseline's determinism contract on the
//! same wire.
//!
//! CI runs this suite in `--release` under a kill-timeout, like the
//! cross-process isolation suite: a stuck epoll loop or a lost doorbell
//! wakeup shows up here as a hang, not a failure message.

use bench::stress_fatbin;
use cuda_rt::{share_device, ArgPack, CudaApi};
use gpu_sim::spec::test_gpu;
use gpu_sim::{Device, LaunchConfig};
use guardian::{
    spawn_manager_multi, BoundTransport, DispatchMode, GrdLib, LaunchAck, ManagerConfig,
    ManagerHandle, SessionDriver,
};

const TENANTS: usize = 64;
const LAUNCHES: usize = 40;

/// A uds-bound single-GPU manager with an explicit partition pool big
/// enough for one 2 MiB partition per tenant held *simultaneously*.
/// Explicit, because the default pool (half of free memory, floored to
/// a power of two) loses a whole doubling to the context's scratch
/// allocation. The DRAM is paged lazily, so the larger simulated device
/// costs nothing.
fn uds_manager(
    dispatch: DispatchMode,
    ack: LaunchAck,
    driver: SessionDriver,
    tag: &str,
) -> ManagerHandle {
    let pool = ((TENANTS as u64) * (2 << 20)).next_power_of_two();
    let mut spec = test_gpu();
    spec.global_mem_bytes = spec.global_mem_bytes.max(pool * 2);
    let fb = stress_fatbin();
    let bound = BoundTransport::uds(guardian::fixtures::temp_socket_path(&format!(
        "scale-{tag}"
    )))
    .expect("bind uds");
    spawn_manager_multi(
        vec![share_device(Device::new(spec))],
        ManagerConfig {
            dispatch,
            launch_ack: ack,
            session_driver: driver,
            pool_bytes: Some(pool),
            ..ManagerConfig::default()
        },
        &[&fb],
        bound,
    )
    .expect("spawn manager")
}

/// One tenant's loop: fire-and-forget launches with periodic syncs, then
/// a read-back verifying the kernel's output — so a frame lost or
/// reordered anywhere in the batched event-driven path is a test
/// failure, not just a slowdown.
fn tenant_loop(mut lib: GrdLib) {
    const N: u32 = 64;
    let buf = lib.cuda_malloc(4 * N as u64).expect("malloc");
    let args = ArgPack::new().ptr(buf).u32(N).finish();
    for i in 0..LAUNCHES {
        lib.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        )
        .expect("launch");
        if i % 10 == 9 {
            lib.cuda_device_synchronize().expect("sync");
        }
    }
    lib.cuda_device_synchronize().expect("final sync");
    let out = lib.cuda_memcpy_d2h(buf, 4 * N as u64).expect("d2h");
    for j in 0..N {
        let v = u32::from_le_bytes(out[j as usize * 4..][..4].try_into().unwrap());
        assert_eq!(v, j, "buffer corrupted at {j}");
    }
}

/// Drive 64 concurrent tenant threads through a manager and join them.
/// All 64 connect *before* any workload starts, so the manager provably
/// holds 64 live sessions — and the event pool 64 registered fds — at
/// once (no credit for early tenants finishing and freeing partitions).
fn run_tenants(mgr: &ManagerHandle) {
    let libs: Vec<GrdLib> = (0..TENANTS)
        .map(|_| GrdLib::connect(mgr, 2 << 20).expect("connect"))
        .collect();
    let handles: Vec<_> = libs
        .into_iter()
        .map(|lib| std::thread::spawn(move || tenant_loop(lib)))
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }
}

/// 64 tenants over uds on the epoll executor: every session is a state
/// machine on a ~cores worker pool, launches arrive in batched frames,
/// and all 64 read-backs verify.
#[test]
fn sixty_four_tenants_complete_on_the_event_pool() {
    let mgr = uds_manager(
        DispatchMode::Concurrent,
        LaunchAck::Deferred,
        SessionDriver::EventPool { workers: 0 },
        "event",
    );
    run_tenants(&mgr);
    mgr.shutdown();
}

/// The same 64-tenant workload on the thread-per-session baseline: the
/// two drivers must be observationally interchangeable.
#[test]
fn sixty_four_tenants_complete_on_thread_per_session() {
    let mgr = uds_manager(
        DispatchMode::Concurrent,
        LaunchAck::Deferred,
        SessionDriver::ThreadPerSession,
        "threads",
    );
    run_tenants(&mgr);
    mgr.shutdown();
}

/// Serial-mode determinism on the wire: a fixed multi-tenant workload,
/// interleaved deterministically, lands the simulated device on a
/// bit-for-bit identical cycle counter across independent manager
/// instances — under both eager acks and the deferred+batched path
/// (frame coalescing must not change what executes, only how frames
/// travel).
#[test]
fn serial_mode_makespans_are_bit_for_bit_reproducible() {
    fn makespan(ack: LaunchAck, tag: &str) -> u64 {
        let mgr = uds_manager(DispatchMode::Serial, ack, SessionDriver::Auto, tag);
        let mut libs: Vec<GrdLib> = (0..4)
            .map(|_| GrdLib::connect(&mgr, 2 << 20).expect("connect"))
            .collect();
        let bufs: Vec<u64> = libs
            .iter_mut()
            .map(|lib| lib.cuda_malloc(4 * 64).expect("malloc"))
            .collect();
        // One driver thread round-robins the tenants so the op order the
        // manager sees is fixed by construction; Serial dispatch then
        // owes us an identical device schedule.
        for round in 0..10 {
            for (lib, &buf) in libs.iter_mut().zip(&bufs) {
                let args = ArgPack::new().ptr(buf).u32(64).finish();
                lib.cuda_launch_kernel(
                    "fill",
                    LaunchConfig::linear(2, 32),
                    &args,
                    Default::default(),
                )
                .expect("launch");
                if round % 3 == 2 {
                    lib.cuda_device_synchronize().expect("sync");
                }
            }
        }
        for lib in &mut libs {
            lib.cuda_device_synchronize().expect("final sync");
        }
        let cycles = libs[0].device_now_cycles();
        drop(libs);
        mgr.shutdown();
        cycles
    }
    for ack in [LaunchAck::Eager, LaunchAck::Deferred] {
        let tag = match ack {
            LaunchAck::Eager => "serial-eager",
            LaunchAck::Deferred => "serial-deferred",
        };
        let first = makespan(ack, tag);
        let second = makespan(ack, tag);
        assert_eq!(
            first, second,
            "serial {tag} runs diverged: {first} vs {second} cycles"
        );
    }
}
