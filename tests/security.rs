//! End-to-end security matrix (paper §5): the Figure 1 attack and data
//! exfiltration attempts under every deployment, with a victim actively
//! training alongside the attacker.

use cuda_rt::{share_device, ArgPack, CudaApi};
use frameworks::{train, Network, TrainConfig};
use gpu_sim::spec::test_gpu;
use gpu_sim::{Device, LaunchConfig};
use guardian::backends::{deploy, Deployment};
use ptx::fatbin::FatBin;

const EVIL: &str = r#"
.version 7.7
.target sm_86
.address_size 64
.visible .entry stomp(.param .u64 target, .param .u32 v)
{
    .reg .b32 %r<2>;
    .reg .b64 %rd<2>;
    ld.param.u64 %rd1, [target];
    ld.param.u32 %r1, [v];
    st.global.u32 [%rd1], %r1;
    ret;
}
.visible .entry peek(.param .u64 target, .param .u64 out)
{
    .reg .b32 %r<2>;
    .reg .b64 %rd<3>;
    ld.param.u64 %rd1, [target];
    ld.param.u64 %rd2, [out];
    ld.global.u32 %r1, [%rd1];
    st.global.u32 [%rd2], %r1;
    ret;
}
"#;

fn evil_fatbin() -> Vec<u8> {
    let mut fb = FatBin::new();
    fb.push_ptx("attack", EVIL);
    fb.to_bytes().to_vec()
}

/// Under fencing, a malicious *read* of another tenant's memory returns
/// data from the attacker's own partition — never the victim's bytes.
#[test]
fn fencing_blocks_data_exfiltration() {
    let device = share_device(Device::new(test_gpu()));
    let fb = evil_fatbin();
    let mut t = deploy(&device, Deployment::GuardianFencing, 2, 4 << 20, &[&fb]).unwrap();
    let secret_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
    t.runtimes[1]
        .cuda_memcpy_h2d(secret_buf, &0x5EC2E7u32.to_le_bytes())
        .unwrap();
    let out = t.runtimes[0].cuda_malloc(4096).unwrap();
    t.runtimes[0].cuda_memset(out, 0, 4).unwrap();
    let args = ArgPack::new().ptr(secret_buf).ptr(out).finish();
    t.runtimes[0]
        .cuda_launch_kernel(
            "peek",
            LaunchConfig::linear(1, 1),
            &args,
            Default::default(),
        )
        .unwrap();
    t.runtimes[0].cuda_device_synchronize().unwrap();
    let stolen = t.runtimes[0].cuda_memcpy_d2h(out, 4).unwrap();
    assert_ne!(
        u32::from_le_bytes(stolen.try_into().unwrap()),
        0x5EC2E7,
        "fenced load must not return the victim's secret"
    );
    drop(t.runtimes);
    t.manager.unwrap().shutdown();
}

/// Full matrix: who survives the Figure 1 attack, per deployment.
#[test]
fn fault_isolation_matrix() {
    // (deployment, attacker survives, victim survives, victim data intact)
    let expectations = [
        (Deployment::GuardianNoProtection, true, true, false),
        (Deployment::Mps, false, false, true),
        (Deployment::Native, false, true, true),
        (Deployment::GuardianFencing, true, true, true),
        (Deployment::GuardianModulo, true, true, true),
        (Deployment::GuardianChecking, false, true, true),
    ];
    for (deployment, exp_attacker, exp_victim, exp_intact) in expectations {
        let device = share_device(Device::new(test_gpu()));
        let fb = evil_fatbin();
        let mut t = deploy(&device, deployment, 2, 4 << 20, &[&fb]).unwrap();
        let secret = 0xDEAD_BEEFu32;
        let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
        t.runtimes[1]
            .cuda_memcpy_h2d(victim_buf, &secret.to_le_bytes())
            .unwrap();
        let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
        let _ = t.runtimes[0].cuda_launch_kernel(
            "stomp",
            LaunchConfig::linear(1, 1),
            &args,
            Default::default(),
        );
        let attacker_alive = t.runtimes[0].cuda_device_synchronize().is_ok();
        let (victim_alive, intact) = match t.runtimes[1].cuda_memcpy_d2h(victim_buf, 4) {
            Ok(bytes) => (
                t.runtimes[1].cuda_device_synchronize().is_ok(),
                u32::from_le_bytes(bytes.try_into().unwrap()) == secret,
            ),
            Err(_) => (false, true /* unreadable, not corrupted */),
        };
        assert_eq!(attacker_alive, exp_attacker, "{deployment}: attacker");
        assert_eq!(victim_alive, exp_victim, "{deployment}: victim");
        assert_eq!(intact, exp_intact, "{deployment}: data");
        drop(t.runtimes);
        if let Some(m) = t.manager {
            m.shutdown();
        }
    }
}

/// Negative control: the same `stomp`/`peek` binaries **succeed** when no
/// isolation mechanism is present, proving this suite detects missing
/// isolation rather than vacuously passing.
///
/// The unprotected setting is the paper's Figure 1 native stream sharing:
/// tenants share the GPU through plain contexts with no per-access guard
/// (`NativeRuntime::new`, `MemGuard::None` — what `Deployment::Native`
/// degenerates to once apps share spatially without MPS/Guardian).
#[test]
fn attack_succeeds_without_isolation() {
    use cuda_rt::NativeRuntime;

    let device = share_device(Device::new(test_gpu()));
    let fb = evil_fatbin();
    let mut attacker = NativeRuntime::new(device.clone()).unwrap();
    let mut victim = NativeRuntime::new(device.clone()).unwrap();
    attacker.register_fatbin(&fb).unwrap();

    let secret = 0x5EC2E7u32;
    let victim_buf = victim.cuda_malloc(4096).unwrap();
    victim
        .cuda_memcpy_h2d(victim_buf, &secret.to_le_bytes())
        .unwrap();

    // peek: exfiltration of the victim's secret succeeds verbatim.
    let out = attacker.cuda_malloc(4096).unwrap();
    attacker.cuda_memset(out, 0, 4).unwrap();
    let args = ArgPack::new().ptr(victim_buf).ptr(out).finish();
    attacker
        .cuda_launch_kernel(
            "peek",
            LaunchConfig::linear(1, 1),
            &args,
            Default::default(),
        )
        .unwrap();
    attacker.cuda_device_synchronize().unwrap();
    let stolen = attacker.cuda_memcpy_d2h(out, 4).unwrap();
    assert_eq!(
        u32::from_le_bytes(stolen.try_into().unwrap()),
        secret,
        "without isolation, peek must read the victim's secret"
    );

    // stomp: the victim's data is silently corrupted and nobody faults.
    let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
    attacker
        .cuda_launch_kernel(
            "stomp",
            LaunchConfig::linear(1, 1),
            &args,
            Default::default(),
        )
        .unwrap();
    assert!(
        attacker.cuda_device_synchronize().is_ok(),
        "no fault raised"
    );
    let bytes = victim.cuda_memcpy_d2h(victim_buf, 4).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes.try_into().unwrap()),
        0x41414141,
        "without isolation, stomp must corrupt the victim's buffer"
    );
}

/// Negative control for MPS-style sharing: per-client memory protection
/// stops the write, but the fault escalates to the shared server and the
/// *victim* is killed too — the attack succeeds as denial of service
/// (§2.2 shared fate), which Guardian's fault isolation prevents.
#[test]
fn attack_kills_victim_under_mps() {
    let device = share_device(Device::new(test_gpu()));
    let fb = evil_fatbin();
    let mut t = deploy(&device, Deployment::Mps, 2, 4 << 20, &[&fb]).unwrap();
    let victim_buf = t.runtimes[1].cuda_malloc(4096).unwrap();
    t.runtimes[1]
        .cuda_memcpy_h2d(victim_buf, &1u32.to_le_bytes())
        .unwrap();
    let args = ArgPack::new().ptr(victim_buf).u32(0x41414141).finish();
    let _ = t.runtimes[0].cuda_launch_kernel(
        "stomp",
        LaunchConfig::linear(1, 1),
        &args,
        Default::default(),
    );
    assert!(
        t.runtimes[0].cuda_device_synchronize().is_err(),
        "the ASID guard must fault the attacker"
    );
    assert!(
        t.runtimes[1].cuda_device_synchronize().is_err(),
        "MPS shared fate must kill the innocent victim as well"
    );
}

/// A victim *training a network* is undisturbed by a concurrent attacker
/// under Guardian fencing (transparency + isolation together).
#[test]
fn training_survives_concurrent_attack() {
    let device = share_device(Device::new(test_gpu()));
    let fb = evil_fatbin();
    let t = deploy(&device, Deployment::GuardianFencing, 2, 8 << 20, &[&fb]).unwrap();
    let mut rts = t.runtimes;
    let mut attacker = rts.remove(0);
    let mut victim = rts.remove(0);

    let trainer = std::thread::spawn(move || {
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            batches_per_epoch: 2,
            lr: 0.1,
            seed: 5,
        };
        train(victim.as_mut(), Network::Lenet, &cfg).expect("victim trains")
    });
    let attacks = std::thread::spawn(move || {
        for i in 0..50u64 {
            let target = 0x7000_0000_0000u64 + i * 0x10_0000;
            let args = ArgPack::new().ptr(target).u32(0xFFFF_FFFF).finish();
            let _ = attacker.cuda_launch_kernel(
                "stomp",
                LaunchConfig::linear(1, 1),
                &args,
                Default::default(),
            );
        }
        let _ = attacker.cuda_device_synchronize();
    });
    let report = trainer.join().unwrap();
    attacks.join().unwrap();
    assert!(report.last_epoch_loss.is_finite());
    drop(rts);
    t.manager.unwrap().shutdown();
}
