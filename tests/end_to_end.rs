//! End-to-end transparency: the same training run produces *bit-identical*
//! results under the native runtime and under Guardian fencing, because
//! fencing is the identity for in-bounds addresses (§4.3) and Guardian is
//! call-for-call transparent (§4.1).

use cuda_rt::{share_device, NativeRuntime};
use frameworks::{train, Network, TrainConfig};
use gpu_sim::spec::test_gpu;
use gpu_sim::Device;
use guardian::backends::{deploy, Deployment};

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 4,
        batches_per_epoch: 2,
        lr: 0.15,
        seed: 31,
    }
}

#[test]
fn guardian_training_is_bit_identical_to_native() {
    // Native.
    let dev_native = share_device(Device::new(test_gpu()));
    let mut native = NativeRuntime::new(dev_native).unwrap();
    let r_native = train(&mut native, Network::Lenet, &cfg()).unwrap();

    // Guardian fencing.
    let dev_grd = share_device(Device::new(test_gpu()));
    let mut t = deploy(&dev_grd, Deployment::GuardianFencing, 1, 8 << 20, &[]).unwrap();
    let r_grd = train(t.runtimes[0].as_mut(), Network::Lenet, &cfg()).unwrap();
    drop(t.runtimes);
    t.manager.unwrap().shutdown();

    assert_eq!(
        r_native.last_epoch_loss, r_grd.last_epoch_loss,
        "fencing must not perturb in-bounds computation"
    );
    assert_eq!(r_native.final_accuracy, r_grd.final_accuracy);
}

#[test]
fn all_three_protection_modes_are_numerically_transparent() {
    let dev = share_device(Device::new(test_gpu()));
    let mut native = NativeRuntime::new(dev).unwrap();
    let reference = train(&mut native, Network::Cifar10, &cfg()).unwrap();

    for d in [
        Deployment::GuardianNoProtection,
        Deployment::GuardianFencing,
        Deployment::GuardianModulo,
        Deployment::GuardianChecking,
    ] {
        let dev = share_device(Device::new(test_gpu()));
        let mut t = deploy(&dev, d, 1, 8 << 20, &[]).unwrap();
        let r = train(t.runtimes[0].as_mut(), Network::Cifar10, &cfg()).unwrap();
        assert_eq!(
            r.last_epoch_loss, reference.last_epoch_loss,
            "{d}: protected run diverged numerically"
        );
        drop(t.runtimes);
        if let Some(m) = t.manager {
            m.shutdown();
        }
    }
}

#[test]
fn rodinia_apps_run_under_guardian() {
    for app in rodinia::App::ALL {
        let dev = share_device(Device::new(test_gpu()));
        let mut t = deploy(&dev, Deployment::GuardianFencing, 1, 8 << 20, &[]).unwrap();
        rodinia::run(t.runtimes[0].as_mut(), app, 1)
            .unwrap_or_else(|e| panic!("{app:?} under guardian: {e}"));
        drop(t.runtimes);
        t.manager.unwrap().shutdown();
    }
}
