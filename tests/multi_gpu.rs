//! Multi-GPU manager acceptance: one grdManager owning a **device set**,
//! exercised end to end in a single scenario family —
//!
//! * hint-pinned placement (strict hints land exactly where asked, or
//!   fail rather than spill),
//! * least-loaded default routing,
//! * one **live migration** with the tenant's data checksummed before
//!   and after the move, while other tenants keep launching,
//! * an OOB fault on GPU 0 killing only the offender while GPU 1's
//!   tenants make verified progress,
//! * and the control-plane rebalancer converging a skewed placement.

use cuda_rt::{share_device, ArgPack, CudaApi, CudaError};
use gpu_sim::spec::test_gpu;
use gpu_sim::LaunchConfig;
use guardian::{
    spawn_manager_multi, BoundTransport, GrdLib, ManagerConfig, PlacementHint, PlacementPolicy,
    Protection,
};
use ptx::fatbin::FatBin;

fn fatbin() -> Vec<u8> {
    let mut fb = FatBin::new();
    fb.push_ptx("app", guardian::fixtures::FILL);
    fb.push_ptx("attack", guardian::fixtures::STOMP);
    fb.to_bytes().to_vec()
}

fn two_gpu_manager(protection: Protection, pool: u64) -> guardian::ManagerHandle {
    let devices = gpu_sim::device_set(vec![test_gpu(), test_gpu()])
        .into_iter()
        .map(share_device)
        .collect();
    let fb = fatbin();
    spawn_manager_multi(
        devices,
        ManagerConfig {
            protection,
            pool_bytes: Some(pool),
            placement: PlacementPolicy::LeastLoaded,
            ..ManagerConfig::default()
        },
        &[&fb],
        BoundTransport::channel(),
    )
    .unwrap()
}

fn run_fill(lib: &mut GrdLib, n: u32) -> Vec<u8> {
    let buf = lib.cuda_malloc(4 * n as u64).unwrap();
    let args = ArgPack::new().ptr(buf).u32(n).finish();
    lib.cuda_launch_kernel(
        "fill",
        LaunchConfig::linear(n.div_ceil(32), 32),
        &args,
        Default::default(),
    )
    .unwrap();
    lib.cuda_device_synchronize().unwrap();
    let out = lib.cuda_memcpy_d2h(buf, 4 * n as u64).unwrap();
    for i in 0..n {
        let v = u32::from_le_bytes(out[i as usize * 4..][..4].try_into().unwrap());
        assert_eq!(v, i);
    }
    // Churn loops call this unboundedly; don't leak the partition heap.
    lib.cuda_free(buf).unwrap();
    out
}

/// The ISSUE's 4-tenant / 2-GPU scenario, in one test: pinning, default
/// routing, live migration with checksum, and cross-GPU fault isolation.
#[test]
fn four_tenants_two_gpus_end_to_end() {
    // Protection::Check so the OOB act is *detected* (fencing would wrap
    // it harmlessly) — the paper's detection/debugging mode.
    let mgr = two_gpu_manager(Protection::Check, 16 << 20);
    assert_eq!(mgr.device_count(), 2);

    // --- hint-pinned placement --------------------------------------
    let mut t0 = GrdLib::connect_hinted(&mgr, 4 << 20, Some(PlacementHint::pin(0))).unwrap();
    let mut t1 = GrdLib::connect_hinted(&mgr, 4 << 20, Some(PlacementHint::pin(1))).unwrap();
    assert_eq!(t0.device(), 0, "strict hint must land on device 0");
    assert_eq!(t1.device(), 1, "strict hint must land on device 1");

    // --- least-loaded default routing --------------------------------
    // Both devices carry one 4 MiB tenant; the next two un-hinted
    // connects must spread, one per device.
    let mut t2 = GrdLib::connect(&mgr, 4 << 20).unwrap();
    let t3 = GrdLib::connect(&mgr, 4 << 20).unwrap();
    assert_ne!(
        t2.device(),
        t3.device(),
        "least-loaded routing must spread equal tenants across devices"
    );
    let infos = mgr.device_infos().unwrap();
    assert_eq!(infos.len(), 2);
    for info in &infos {
        assert_eq!(info.tenants, 2, "two tenants per device: {infos:?}");
        assert_eq!(info.used_bytes, 8 << 20);
        assert_eq!(info.pool_bytes, 16 << 20);
    }

    // --- live migration with data intact ------------------------------
    // t2 seeds a recognizable pattern, checksums it, migrates to the
    // other GPU — while t0 and t1 hammer their own data planes from
    // other threads — and verifies the checksum at the new address.
    let payload: Vec<u8> = (0..8192u32).flat_map(|i| i.to_le_bytes()).collect();
    let before_buf = t2.cuda_malloc(payload.len() as u64).unwrap();
    t2.cuda_memcpy_h2d(before_buf, &payload).unwrap();
    let checksum = |bytes: &[u8]| -> u64 {
        bytes
            .iter()
            .fold(0u64, |h, &b| h.wrapping_mul(131).wrapping_add(b as u64))
    };
    let sum_before = checksum(
        &t2.cuda_memcpy_d2h(before_buf, payload.len() as u64)
            .unwrap(),
    );

    let src_device = t2.device();
    let dst_device = 1 - src_device;
    let (old_base, old_size) = t2.partition();

    // Other tenants' data planes must be undisturbed during the move.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0u32;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                run_fill(&mut t0, 64);
                run_fill(&mut t1, 64);
                n += 1;
            }
            (t0, t1, n)
        })
    };

    let delta = t2.migrate(dst_device).unwrap();
    assert_eq!(t2.device(), dst_device, "migration must rebind the device");
    let (new_base, new_size) = t2.partition();
    assert_eq!(new_size, old_size, "migration is a same-size move");
    assert_eq!(delta, new_base.wrapping_sub(old_base));

    let after_buf = before_buf.wrapping_add(delta);
    let sum_after = checksum(&t2.cuda_memcpy_d2h(after_buf, payload.len() as u64).unwrap());
    assert_eq!(sum_before, sum_after, "data corrupted by migration");
    // The migrated tenant's data plane works on the new device.
    run_fill(&mut t2, 128);

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let (t0, t1, churn_rounds) = churn.join().unwrap();
    assert!(churn_rounds > 0, "churn thread never ran");

    // Source pool bytes were reclaimed; destination gained them.
    let infos = mgr.device_infos().unwrap();
    assert_eq!(infos[src_device as usize].used_bytes, 4 << 20);
    assert_eq!(infos[dst_device as usize].used_bytes, 12 << 20);

    // --- OOB on GPU 0 kills only the offender -------------------------
    // t2 migrated off src_device; the tenant still on device 0 attacks.
    let (attacker, mut survivor) = if t0.device() == 0 { (t0, t1) } else { (t1, t0) };
    let mut attacker = attacker;
    let (base, size) = attacker.partition();
    let args = ArgPack::new().ptr(base + size).u32(0x4141_4141).finish();
    attacker
        .cuda_launch_kernel(
            "stomp",
            LaunchConfig::linear(1, 1),
            &args,
            Default::default(),
        )
        .unwrap();
    assert!(
        attacker.cuda_device_synchronize().is_err(),
        "checking mode must detect the OOB store"
    );
    assert!(
        matches!(attacker.cuda_malloc(16), Err(CudaError::Rejected(_))),
        "the kill must be sticky"
    );
    // GPU 1 tenants make verified progress after the fault on GPU 0.
    assert_eq!(survivor.device(), 1);
    run_fill(&mut survivor, 256);
    run_fill(&mut t2, 256);

    drop((attacker, survivor, t2, t3));
    mgr.shutdown();
}

/// Migration invalidates events recorded on the source device: their
/// timestamps are that device's cycle counts, incomparable with the
/// destination's clock — a stale handle must error, never produce a
/// garbage elapsed time.
#[test]
fn migration_invalidates_recorded_events() {
    let mgr = two_gpu_manager(Protection::FenceBitwise, 8 << 20);
    let mut t = GrdLib::connect_hinted(&mgr, 2 << 20, Some(PlacementHint::pin(0))).unwrap();
    let before = t.cuda_event_create_with_flags(0).unwrap();
    t.cuda_event_record(before, Default::default()).unwrap();
    t.cuda_device_synchronize().unwrap();
    t.migrate(1).unwrap();
    let after = t.cuda_event_create_with_flags(0).unwrap();
    t.cuda_event_record(after, Default::default()).unwrap();
    t.cuda_device_synchronize().unwrap();
    assert!(
        t.cuda_event_elapsed_ms(before, after).is_err(),
        "cross-device elapsed must be rejected"
    );
    // Fresh events on the destination work normally.
    let after2 = t.cuda_event_create_with_flags(0).unwrap();
    t.cuda_event_record(after2, Default::default()).unwrap();
    t.cuda_device_synchronize().unwrap();
    assert!(t.cuda_event_elapsed_ms(after, after2).is_ok());
    drop(t);
    mgr.shutdown();
}

/// A strict hint whose device cannot host the tenant fails instead of
/// spilling; a `prefer` hint spills to the policy's choice.
#[test]
fn strict_hints_fail_instead_of_spilling() {
    let mgr = two_gpu_manager(Protection::FenceBitwise, 8 << 20);
    // Fill device 0 completely.
    let _pin = GrdLib::connect_hinted(&mgr, 8 << 20, Some(PlacementHint::pin(0))).unwrap();
    // Strict: no capacity on 0 → OutOfMemory, even though 1 is empty.
    assert!(matches!(
        GrdLib::connect_hinted(&mgr, 1 << 20, Some(PlacementHint::pin(0))),
        Err(CudaError::OutOfMemory)
    ));
    // Prefer: spills onto device 1.
    let spilled = GrdLib::connect_hinted(&mgr, 1 << 20, Some(PlacementHint::prefer(0))).unwrap();
    assert_eq!(spilled.device(), 1);
    // Unknown device: rejected outright.
    assert!(matches!(
        GrdLib::connect_hinted(&mgr, 1 << 20, Some(PlacementHint::pin(9))),
        Err(CudaError::Rejected(_))
    ));
    drop(spilled);
    drop(_pin);
    mgr.shutdown();
}

/// The control-plane rebalancer narrows a skewed placement one migration
/// at a time, and reports balance once converged.
#[test]
fn rebalancer_converges_skewed_placement() {
    let mgr = two_gpu_manager(Protection::FenceBitwise, 16 << 20);
    // Pin four tenants onto device 0; device 1 idles.
    let mut tenants: Vec<GrdLib> = (0..4)
        .map(|_| GrdLib::connect_hinted(&mgr, 2 << 20, Some(PlacementHint::pin(0))).unwrap())
        .collect();
    // Seed each with a distinct pattern so moves are data-checked.
    let mut bufs = Vec::new();
    for (i, t) in tenants.iter_mut().enumerate() {
        let buf = t.cuda_malloc(1024).unwrap();
        t.cuda_memcpy_h2d(buf, &[i as u8 + 1; 1024]).unwrap();
        bufs.push(buf);
    }
    let mut moves = 0;
    while let Some((_client, src, dst)) = mgr.rebalance().unwrap() {
        assert_eq!((src, dst), (0, 1));
        moves += 1;
        assert!(moves <= 4, "rebalancer failed to converge");
    }
    // 8 MiB vs 0 → two moves lands at 4 MiB vs 4 MiB; a third would
    // only re-skew, so the rebalancer must stop at two.
    assert_eq!(moves, 2, "expected exactly two migrations to balance");
    let infos = mgr.device_infos().unwrap();
    assert_eq!(infos[0].used_bytes, infos[1].used_bytes);
    assert_eq!(infos[0].tenants, 2);
    assert_eq!(infos[1].tenants, 2);
    // Every tenant — moved or not — still sees its own pattern. Moved
    // tenants' cached pointers are stale until they `refresh()`; the
    // delta translates pre-move allocations to the new frame.
    // (delta may be 0 even for a moved tenant — the two devices' address
    // spaces are independent and can coincide numerically — so count
    // moves by device, not by delta.)
    let mut moved_tenants = 0;
    for (i, t) in tenants.iter_mut().enumerate() {
        let delta = t.refresh().unwrap();
        if t.device() == 1 {
            moved_tenants += 1;
        }
        let data = t
            .cuda_memcpy_d2h(bufs[i].wrapping_add(delta), 1024)
            .unwrap();
        assert_eq!(data, vec![i as u8 + 1; 1024], "tenant {i} data lost");
    }
    assert_eq!(moved_tenants, 2, "exactly two tenants now live on device 1");
    drop(tenants);
    mgr.shutdown();
}

/// Candidate choice is activity-aware: with an idle 8 MiB tenant and a
/// hot 2 MiB one crowding device 0, the rebalancer migrates the idle
/// tenant even though the hot one is smaller — moving it pauses nobody,
/// while moving the hot tenant would stall its launch stream behind the
/// copy barrier.
#[test]
fn rebalancer_prefers_idle_tenant_over_hot_smaller_one() {
    let mgr = two_gpu_manager(Protection::FenceBitwise, 16 << 20);
    let mut idle = GrdLib::connect_hinted(&mgr, 8 << 20, Some(PlacementHint::pin(0))).unwrap();
    let mut hot = GrdLib::connect_hinted(&mgr, 2 << 20, Some(PlacementHint::pin(0))).unwrap();
    // Make the small tenant unambiguously hot: a burst of launches the
    // idle tenant never matches.
    let buf = hot.cuda_malloc(4 * 64).unwrap();
    let args = ArgPack::new().ptr(buf).u32(64).finish();
    for _ in 0..16 {
        hot.cuda_launch_kernel(
            "fill",
            LaunchConfig::linear(2, 32),
            &args,
            Default::default(),
        )
        .unwrap();
    }
    hot.cuda_device_synchronize().unwrap();

    let (_client, src, dst) = mgr
        .rebalance()
        .unwrap()
        .expect("skewed placement must produce a migration");
    assert_eq!((src, dst), (0, 1));
    idle.refresh().unwrap();
    hot.refresh().unwrap();
    assert_eq!(idle.device(), 1, "the idle tenant is the one that moved");
    assert_eq!(hot.device(), 0, "the hot tenant stays put");
    drop((idle, hot));
    mgr.shutdown();
}

/// Default pool sizing targets half of the device's *total* memory: on
/// the 64 MiB test GPU the context's 1 MiB scratch must not demote the
/// pool to 16 MiB (sizing from free memory alone loses a whole
/// power-of-two doubling).
#[test]
fn default_pool_is_half_of_total_memory_despite_context_overhead() {
    let devices = vec![share_device(gpu_sim::Device::new(test_gpu()))];
    let fb = fatbin();
    let mgr = spawn_manager_multi(
        devices,
        ManagerConfig::default(), // pool_bytes: None — the sizing under test
        &[&fb],
        BoundTransport::channel(),
    )
    .unwrap();
    let infos = mgr.device_infos().unwrap();
    assert_eq!(
        infos[0].pool_bytes,
        32 << 20,
        "64 MiB device must yield a 32 MiB default pool"
    );
    mgr.shutdown();
}
